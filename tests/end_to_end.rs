//! Cross-crate integration tests: the full pipeline from synthetic design
//! to contest score, exercising every substrate together.

use mfaplace::core::dataset::{build_design_dataset, DatasetConfig};
use mfaplace::core::flow::{FlowConfig, MacroPlacementFlow};
use mfaplace::core::predictor::ModelPredictor;
use mfaplace::core::train::{TrainConfig, Trainer};
use mfaplace::fpga::design::DesignPreset;
use mfaplace::models::{OursConfig, OursModel};
use mfaplace::placer::flows::FlowConfig as PlacerFlowConfig;
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;

fn quick_flow_config() -> FlowConfig {
    let mut cfg = FlowConfig::default();
    cfg.placer.gp_stage1.iterations = 8;
    cfg.placer.gp_stage2.iterations = 4;
    cfg.placer.grid_w = 32;
    cfg.placer.grid_h = 32;
    cfg.router.grid_w = 32;
    cfg.router.grid_h = 32;
    cfg
}

#[test]
fn full_pipeline_design_to_score() {
    let design = DesignPreset::design_116()
        .with_scale(512, 64, 32)
        .generate(1);
    let flow = MacroPlacementFlow::new(quick_flow_config());
    let outcome = flow.run(&design, 1);
    // Placement is legal on macros.
    for m in design.netlist.macros() {
        let (x, y) = outcome.placement.placement.pos(m.0 as usize);
        assert_eq!(x.fract(), 0.0);
        assert_eq!(y.fract(), 0.0);
    }
    // Scores are in plausible contest ranges.
    assert!(outcome.score.s_ir() >= 1.0);
    assert!((5.0..=24.0).contains(&outcome.score.s_dr()));
    assert!(outcome.score.s_score() > 0.0);
    assert!(outcome.score.inputs().t_macro_min < 10.0);
}

#[test]
fn all_flow_presets_complete_on_all_constraint_kinds() {
    let design = DesignPreset::design_180()
        .with_scale(512, 64, 32)
        .generate(2);
    assert!(!design.cascades.is_empty());
    assert!(!design.regions.is_empty());
    for placer in [
        PlacerFlowConfig::utda_like(),
        PlacerFlowConfig::seu_like(),
        PlacerFlowConfig::mpku_like(),
        PlacerFlowConfig::model_driven(),
    ] {
        let mut cfg = quick_flow_config();
        let name = placer.name.clone();
        cfg.placer = placer;
        cfg.placer.gp_stage1.iterations = 8;
        cfg.placer.gp_stage2.iterations = 4;
        cfg.placer.grid_w = 32;
        cfg.placer.grid_h = 32;
        let flow = MacroPlacementFlow::new(cfg);
        let outcome = flow.run(&design, 3);
        assert!(
            outcome.score.s_r() >= 5.0,
            "flow {name} produced implausible S_R"
        );
    }
}

#[test]
fn trained_model_drives_flow_end_to_end() {
    let design = DesignPreset::design_136()
        .with_scale(512, 64, 32)
        .generate(3);
    let dataset = build_design_dataset(
        &design,
        &DatasetConfig {
            grid: 32,
            placements_per_design: 2,
            augment: false,
            placer_iterations: 4,
            ..DatasetConfig::default()
        },
        7,
    );
    let mut g = mfaplace::autograd::Graph::new();
    let mut rng = StdRng::seed_from_u64(4);
    let model = OursModel::new(
        &mut g,
        OursConfig {
            grid: 32,
            base_channels: 4,
            vit_layers: 1,
            vit_heads: 2,
            use_mfa: true,
            mfa_reduction: 4,
        },
        &mut rng,
    );
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&dataset);
    let (graph, model) = trainer.into_parts();
    let mut predictor = ModelPredictor::new(graph, model);
    let flow = MacroPlacementFlow::new(quick_flow_config());
    let outcome = flow.run_with(&design, &mut predictor, 5);
    assert!(outcome.score.s_score() > 0.0);
}

#[test]
fn deterministic_scores_across_runs() {
    let design = DesignPreset::design_227()
        .with_scale(512, 64, 32)
        .generate(4);
    let flow = MacroPlacementFlow::new(quick_flow_config());
    let a = flow.run(&design, 6);
    let b = flow.run(&design, 6);
    assert_eq!(a.score.s_ir(), b.score.s_ir());
    assert_eq!(a.score.s_dr(), b.score.s_dr());
    assert_eq!(a.wirelength, b.wirelength);
}

#[test]
fn dataset_features_and_labels_consistent_across_crates() {
    let design = DesignPreset::design_156()
        .with_scale(512, 64, 32)
        .generate(5);
    let ds = build_design_dataset(
        &design,
        &DatasetConfig {
            grid: 32,
            placements_per_design: 1,
            augment: true,
            placer_iterations: 3,
            ..DatasetConfig::default()
        },
        11,
    );
    assert_eq!(ds.len(), 4);
    // Rotation consistency: the macro-map channel of rotation k equals the
    // rotation of the base macro-map channel.
    let base = &ds.samples[0].features;
    let rot1 = &ds.samples[1].features;
    let hw = 32 * 32;
    let base_macro = &base.data()[..hw];
    let rot_macro = &rot1.data()[..hw];
    let gm = mfaplace::fpga::GridMap::from_vec(32, 32, base_macro.to_vec());
    assert_eq!(gm.rot90(1).data(), rot_macro);
    // Label ranges valid.
    for s in &ds.samples {
        assert!(s.labels.iter().all(|&l| l <= 7));
    }
}
