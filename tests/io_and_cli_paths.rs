//! Integration tests of the interchange format + flow path the CLI uses.

use mfaplace::fpga::design::DesignPreset;
use mfaplace::fpga::io;
use mfaplace::fpga::viz::{render_heatmap, render_placement};
use mfaplace::fpga::GridMap;
use mfaplace::placer::flows::{FlowConfig, PlacementFlow, RudyPredictor};

#[test]
fn design_survives_serialization_and_places_identically() {
    let original = DesignPreset::design_156()
        .with_scale(512, 64, 32)
        .generate(3);
    let text = io::write_design(&original);
    let reloaded = io::read_design(&text).expect("reparse");

    let mut cfg = FlowConfig::seu_like();
    cfg.gp_stage1.iterations = 8;
    cfg.gp_stage2.iterations = 4;
    cfg.grid_w = 32;
    cfg.grid_h = 32;
    let flow = PlacementFlow::new(cfg);
    let a = flow
        .run(&original, &mut RudyPredictor::default(), 7)
        .placement;
    let b = flow
        .run(&reloaded, &mut RudyPredictor::default(), 7)
        .placement;
    // Identical netlists and seeds must place identically.
    assert_eq!(a.hpwl(&original.netlist), b.hpwl(&reloaded.netlist));
    for i in 0..a.len() {
        assert_eq!(a.pos(i), b.pos(i));
    }
}

#[test]
fn placement_file_round_trips_through_flow() {
    let design = DesignPreset::design_227()
        .with_scale(512, 64, 32)
        .generate(5);
    let mut cfg = FlowConfig::utda_like();
    cfg.gp_stage1.iterations = 6;
    cfg.gp_stage2.iterations = 3;
    cfg.grid_w = 32;
    cfg.grid_h = 32;
    let placement = PlacementFlow::new(cfg)
        .run(&design, &mut RudyPredictor::default(), 2)
        .placement;
    let text = io::write_placement(&placement);
    let back = io::read_placement(&text).expect("reparse placement");
    assert_eq!(back.len(), placement.len());
    assert_eq!(back.hpwl(&design.netlist), placement.hpwl(&design.netlist));
}

#[test]
fn renderers_produce_valid_ppm() {
    let design = DesignPreset::design_116()
        .with_scale(512, 64, 32)
        .generate(1);
    let placement = design.random_placement(2);
    let img = render_placement(&design, &placement, 3);
    let ppm = img.to_ppm();
    assert!(ppm.starts_with("P3\n"));
    // numbers only after the header, all <= 255
    for tok in ppm.split_whitespace().skip(4) {
        let v: u32 = tok.parse().expect("ppm token numeric");
        assert!(v <= 255);
    }
    let map = GridMap::from_vec(4, 4, (0..16).map(|i| i as f32 / 2.0).collect());
    let heat = render_heatmap(&map, 7.0);
    assert_eq!(heat.width(), 4);
    assert!(heat.to_ppm().starts_with("P3\n4 4\n255\n"));
}
