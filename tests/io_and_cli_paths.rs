//! Integration tests of the interchange format + flow path the CLI uses.

use mfaplace::fpga::design::DesignPreset;
use mfaplace::fpga::io;
use mfaplace::fpga::viz::{render_heatmap, render_placement};
use mfaplace::fpga::GridMap;
use mfaplace::placer::flows::{FlowConfig, PlacementFlow, RudyPredictor};

#[test]
fn design_survives_serialization_and_places_identically() {
    let original = DesignPreset::design_156()
        .with_scale(512, 64, 32)
        .generate(3);
    let text = io::write_design(&original);
    let reloaded = io::read_design(&text).expect("reparse");

    let mut cfg = FlowConfig::seu_like();
    cfg.gp_stage1.iterations = 8;
    cfg.gp_stage2.iterations = 4;
    cfg.grid_w = 32;
    cfg.grid_h = 32;
    let flow = PlacementFlow::new(cfg);
    let a = flow
        .run(&original, &mut RudyPredictor::default(), 7)
        .placement;
    let b = flow
        .run(&reloaded, &mut RudyPredictor::default(), 7)
        .placement;
    // Identical netlists and seeds must place identically.
    assert_eq!(a.hpwl(&original.netlist), b.hpwl(&reloaded.netlist));
    for i in 0..a.len() {
        assert_eq!(a.pos(i), b.pos(i));
    }
}

#[test]
fn placement_file_round_trips_through_flow() {
    let design = DesignPreset::design_227()
        .with_scale(512, 64, 32)
        .generate(5);
    let mut cfg = FlowConfig::utda_like();
    cfg.gp_stage1.iterations = 6;
    cfg.gp_stage2.iterations = 3;
    cfg.grid_w = 32;
    cfg.grid_h = 32;
    let placement = PlacementFlow::new(cfg)
        .run(&design, &mut RudyPredictor::default(), 2)
        .placement;
    let text = io::write_placement(&placement);
    let back = io::read_placement(&text).expect("reparse placement");
    assert_eq!(back.len(), placement.len());
    assert_eq!(back.hpwl(&design.netlist), placement.hpwl(&design.netlist));
}

#[test]
fn renderers_produce_valid_ppm() {
    let design = DesignPreset::design_116()
        .with_scale(512, 64, 32)
        .generate(1);
    let placement = design.random_placement(2);
    let img = render_placement(&design, &placement, 3);
    let ppm = img.to_ppm();
    assert!(ppm.starts_with("P3\n"));
    // numbers only after the header, all <= 255
    for tok in ppm.split_whitespace().skip(4) {
        let v: u32 = tok.parse().expect("ppm token numeric");
        assert!(v <= 255);
    }
    let map = GridMap::from_vec(4, 4, (0..16).map(|i| i as f32 / 2.0).collect());
    let heat = render_heatmap(&map, 7.0);
    assert_eq!(heat.width(), 4);
    assert!(heat.to_ppm().starts_with("P3\n4 4\n255\n"));
}

/// The CLI `train` path: fit with a checkpoint configured, then reload the
/// saved v3 file with `load_predictor` (the `serve`/`place --model` path)
/// and check the reloaded model predicts **bitwise identically** to the
/// in-memory trained model — including batch-norm running statistics,
/// which are state, not parameters, and ride in the v3 training section.
#[test]
fn trained_v3_checkpoint_reloads_as_identical_predictor() {
    use mfaplace::autograd::Graph;
    use mfaplace::core::dataset::{Dataset, Sample};
    use mfaplace::core::loader::{load_predictor, LoadOptions};
    use mfaplace::core::predictor::ModelPredictor;
    use mfaplace::core::train::{TrainConfig, Trainer};
    use mfaplace::models::{Arch, ArchSpec};
    use mfaplace::tensor::Tensor;
    use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};

    let grid = 16;
    let mut rng = StdRng::seed_from_u64(31);
    let dataset = Dataset {
        samples: (0..4)
            .map(|_| Sample {
                features: Tensor::randn(vec![6, grid, grid], 1.0, &mut rng),
                labels: (0..grid * grid)
                    .map(|_| rng.gen_range(0..8u32) as u8)
                    .collect(),
            })
            .collect(),
        grid,
    };

    let dir = std::env::temp_dir().join("mfaplace_cli_paths");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("trained_v3.mfaw");
    let _ = std::fs::remove_file(&ckpt);

    let mut spec = ArchSpec::new(Arch::UNet, grid);
    spec.base_channels = 2;
    let mut g = Graph::new();
    let mut init_rng = StdRng::seed_from_u64(32);
    let model = spec.build(&mut g, &mut init_rng).unwrap();
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: 2,
            batch_size: 2,
            checkpoint: Some(ckpt.clone()),
            ..TrainConfig::default()
        },
    );
    trainer.set_checkpoint_meta(spec.to_meta());
    trainer.fit(&dataset);

    let x = dataset.samples[0].features.clone();
    let (graph, model) = trainer.into_parts();
    let mut in_memory = ModelPredictor::new(graph, model);
    let want = in_memory.predict_batch_tensors(std::slice::from_ref(&x));

    let (loaded_spec, mut reloaded) =
        load_predictor(ckpt.to_str().unwrap(), LoadOptions::default()).unwrap();
    assert_eq!(loaded_spec, spec, "spec must round-trip through the file");
    let got = reloaded.predict_batch_tensors(std::slice::from_ref(&x));
    assert_eq!(want.len(), got.len());
    for (a, b) in want[0].data().iter().zip(got[0].data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "reloaded prediction drifted");
    }
    let _ = std::fs::remove_file(&ckpt);
}

/// Checkpoints of both on-disk versions must load into the compiled-plan
/// engine and predict **bitwise identically** to the tape engine: a v2
/// file (parameters only, fresh init of the full `Ours` arch) and a v3
/// file (trained U-Net whose batch-norm running statistics ride in the
/// training section and feed the plan's inference-mode channel affines).
#[test]
fn v2_and_v3_checkpoints_run_bitwise_identically_on_the_plan_engine() {
    use mfaplace::autograd::Graph;
    use mfaplace::core::dataset::{Dataset, Sample};
    use mfaplace::core::loader::{init_checkpoint, load_predictor, LoadOptions};
    use mfaplace::core::predictor::Engine;
    use mfaplace::core::train::{TrainConfig, Trainer};
    use mfaplace::models::{Arch, ArchSpec};
    use mfaplace::tensor::Tensor;
    use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};

    let grid = 16;
    let dir = std::env::temp_dir().join("mfaplace_cli_paths");
    std::fs::create_dir_all(&dir).unwrap();

    // v2: parameters only, the paper's full architecture.
    let mut ours = ArchSpec::new(Arch::Ours, grid);
    ours.base_channels = 2;
    ours.vit_layers = 1;
    ours.vit_heads = 2;
    let v2 = dir.join("engine_v2.mfaw");
    let _ = std::fs::remove_file(&v2);
    init_checkpoint(&ours, 21, v2.to_str().unwrap()).unwrap();

    // v3: a briefly trained U-Net, so the running stats are non-trivial.
    let mut rng = StdRng::seed_from_u64(41);
    let dataset = Dataset {
        samples: (0..4)
            .map(|_| Sample {
                features: Tensor::randn(vec![6, grid, grid], 1.0, &mut rng),
                labels: (0..grid * grid)
                    .map(|_| rng.gen_range(0..8u32) as u8)
                    .collect(),
            })
            .collect(),
        grid,
    };
    let mut unet = ArchSpec::new(Arch::UNet, grid);
    unet.base_channels = 2;
    let v3 = dir.join("engine_v3.mfaw");
    let _ = std::fs::remove_file(&v3);
    let mut g = Graph::new();
    let mut init_rng = StdRng::seed_from_u64(42);
    let model = unet.build(&mut g, &mut init_rng).unwrap();
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: 1,
            batch_size: 2,
            checkpoint: Some(v3.clone()),
            ..TrainConfig::default()
        },
    );
    trainer.set_checkpoint_meta(unet.to_meta());
    trainer.fit(&dataset);

    for ckpt in [v2, v3] {
        let path = ckpt.to_str().unwrap();
        let (_, mut tape) = load_predictor(path, LoadOptions::default()).unwrap();
        tape.set_engine(Engine::Tape);
        let (_, mut plan) = load_predictor(path, LoadOptions::default()).unwrap();
        plan.set_engine(Engine::Plan);
        for seed in [0u64, 9] {
            let mut xr = StdRng::seed_from_u64(seed);
            let x = Tensor::randn(vec![6, grid, grid], 1.0, &mut xr);
            let want = tape.predict_batch_tensors(std::slice::from_ref(&x));
            let got = plan.predict_batch_tensors(std::slice::from_ref(&x));
            assert_eq!(want.len(), got.len());
            for (a, b) in want[0].data().iter().zip(got[0].data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{path}: plan drifted from tape");
            }
        }
        assert!(
            plan.plan_broken().is_none(),
            "{path}: plan compilation failed: {:?}",
            plan.plan_broken()
        );
        let _ = std::fs::remove_file(&ckpt);
    }
}
