//! Behavioural tests for the nn layers: shapes, training dynamics and
//! convergence of small end-to-end problems.

use mfaplace_autograd::Graph;
use mfaplace_nn::{
    Adam, BatchNorm2d, Conv2d, Dropout, LayerNorm, Linear, Module, MultiHeadSelfAttention, Sgd,
    TransformerBlock,
};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;
use mfaplace_tensor::Tensor;

#[test]
fn conv_output_shape() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let mut conv = Conv2d::new(&mut g, 3, 8, 3, 2, 1, true, &mut rng);
    let x = g.constant(Tensor::zeros(vec![2, 3, 16, 16]));
    let y = conv.forward(&mut g, x, true);
    assert_eq!(g.value(y).shape(), &[2, 8, 8, 8]);
    assert_eq!(conv.params().len(), 2);
}

#[test]
fn batchnorm_normalizes_in_train_mode() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut bn = BatchNorm2d::new(&mut g, 4);
    let x = g.constant(Tensor::randn(vec![8, 4, 6, 6], 3.0, &mut rng).map(|v| v + 10.0));
    let y = bn.forward(&mut g, x, true);
    let out = g.value(y);
    // Default gamma=1, beta=0 -> output should have ~zero mean, unit var.
    assert!(out.mean().abs() < 1e-3, "mean {}", out.mean());
    let var = out.sq_norm() / out.numel() as f32;
    assert!((var - 1.0).abs() < 1e-2, "var {var}");
    // Running stats moved toward batch stats.
    assert!(bn.running_mean()[0] > 0.5, "running mean should move");
}

#[test]
fn batchnorm_eval_uses_running_stats() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mut bn = BatchNorm2d::new(&mut g, 2);
    // Warm up running stats with many train passes over a fixed distribution.
    for _ in 0..100 {
        let mark = g.mark();
        let x = g.constant(Tensor::randn(vec![4, 2, 4, 4], 2.0, &mut rng).map(|v| v + 5.0));
        let _ = bn.forward(&mut g, x, true);
        g.truncate(mark);
    }
    let x = g.constant(Tensor::randn(vec![4, 2, 4, 4], 2.0, &mut rng).map(|v| v + 5.0));
    let y = bn.forward(&mut g, x, false);
    let out = g.value(y);
    assert!(out.mean().abs() < 0.2, "eval mean {}", out.mean());
}

#[test]
fn layernorm_rows_standardized() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(3);
    let mut ln = LayerNorm::new(&mut g, 16);
    let x = g.constant(Tensor::randn(vec![5, 16], 4.0, &mut rng).map(|v| v - 3.0));
    let y = ln.forward(&mut g, x, true);
    for r in 0..5 {
        let row = &g.value(y).data()[r * 16..(r + 1) * 16];
        let mean: f32 = row.iter().sum::<f32>() / 16.0;
        assert!(mean.abs() < 1e-4, "row mean {mean}");
    }
}

#[test]
fn linear_applies_to_last_axis() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(4);
    let mut lin = Linear::new(&mut g, 6, 3, true, &mut rng);
    let x = g.constant(Tensor::zeros(vec![2, 5, 6]));
    let y = lin.forward(&mut g, x, true);
    assert_eq!(g.value(y).shape(), &[2, 5, 3]);
}

#[test]
fn attention_preserves_shape_and_mixes_tokens() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut attn = MultiHeadSelfAttention::new(&mut g, 8, 2, &mut rng);
    let x = g.constant(Tensor::randn(vec![2, 6, 8], 1.0, &mut rng));
    let y = attn.forward(&mut g, x, true);
    assert_eq!(g.value(y).shape(), &[2, 6, 8]);
}

#[test]
fn transformer_block_shape_and_grads() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(6);
    let mut block = TransformerBlock::new(&mut g, 8, 2, 2, 0.0, &mut rng);
    let x = g.constant(Tensor::randn(vec![1, 4, 8], 1.0, &mut rng));
    let y = block.forward(&mut g, x, true);
    assert_eq!(g.value(y).shape(), &[1, 4, 8]);
    let loss = g.mean(y);
    g.backward(loss);
    let with_grads = block
        .params()
        .iter()
        .filter(|&&p| g.grad(p).is_some())
        .count();
    assert_eq!(with_grads, block.params().len(), "all params receive grads");
}

#[test]
fn dropout_train_vs_eval() {
    let mut g = Graph::new();
    let mut drop = Dropout::new(0.5, 42);
    let x = g.constant(Tensor::ones(vec![1000]));
    let y_eval = drop.forward(&mut g, x, false);
    assert_eq!(y_eval, x, "eval dropout is identity");
    let y_train = drop.forward(&mut g, x, true);
    let kept = g.value(y_train).data().iter().filter(|&&v| v > 0.0).count();
    assert!(kept > 350 && kept < 650, "kept {kept} of 1000");
    // Inverted scaling keeps the expectation.
    let mean = g.value(y_train).mean();
    assert!((mean - 1.0).abs() < 0.2, "mean {mean}");
}

#[test]
fn adam_trains_linear_regression() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut lin = Linear::new(&mut g, 3, 1, true, &mut rng);
    let mut opt = Adam::new(0.05);
    let mark = g.mark();
    // Target function y = 2*x0 - x1 + 0.5*x2 + 1
    let mut final_loss = f32::MAX;
    for _ in 0..300 {
        let xs = Tensor::randn(vec![16, 3], 1.0, &mut rng);
        let ys = Tensor::from_fn(vec![16, 1], |i| {
            let r = &xs.data()[i * 3..(i + 1) * 3];
            2.0 * r[0] - r[1] + 0.5 * r[2] + 1.0
        });
        let x = g.constant(xs.clone());
        let pred = lin.forward(&mut g, x, true);
        let loss = g.mse_loss(pred, &ys);
        final_loss = g.value(loss).item();
        g.zero_grads();
        g.backward(loss);
        opt.step(&mut g, &lin.params());
        g.truncate(mark);
    }
    assert!(final_loss < 1e-3, "adam failed to converge: {final_loss}");
}

#[test]
fn sgd_with_momentum_trains() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(8);
    let mut lin = Linear::new(&mut g, 2, 1, true, &mut rng);
    let mut opt = Sgd::new(0.05, 0.9);
    let mark = g.mark();
    let mut final_loss = f32::MAX;
    for _ in 0..200 {
        let xs = Tensor::randn(vec![8, 2], 1.0, &mut rng);
        let ys = Tensor::from_fn(vec![8, 1], |i| {
            let r = &xs.data()[i * 2..(i + 1) * 2];
            r[0] - 3.0 * r[1]
        });
        let x = g.constant(xs.clone());
        let pred = lin.forward(&mut g, x, true);
        let loss = g.mse_loss(pred, &ys);
        final_loss = g.value(loss).item();
        g.zero_grads();
        g.backward(loss);
        opt.step(&mut g, &lin.params());
        g.truncate(mark);
    }
    assert!(final_loss < 1e-2, "sgd failed to converge: {final_loss}");
}

#[test]
fn tiny_cnn_overfits_segmentation_batch() {
    // A 2-layer CNN must overfit a fixed 4-class segmentation toy batch:
    // validates conv/bn/softmax-CE end to end.
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(9);
    let mut c1 = Conv2d::new(&mut g, 2, 8, 3, 1, 1, true, &mut rng);
    let mut bn1 = BatchNorm2d::new(&mut g, 8);
    let mut c2 = Conv2d::new(&mut g, 8, 4, 3, 1, 1, true, &mut rng);
    let mut params = c1.params();
    params.extend(bn1.params());
    params.extend(c2.params());
    let mut opt = Adam::new(0.01);
    let mark = g.mark();

    let x = Tensor::randn(vec![2, 2, 8, 8], 1.0, &mut rng);
    // Label = quadrant index, a deterministic function of position.
    let labels: Vec<u8> = (0..2 * 8 * 8)
        .map(|i| {
            let p = i % 64;
            let (r, c) = (p / 8, p % 8);
            ((r / 4) * 2 + c / 4) as u8
        })
        .collect();

    let mut last = f32::MAX;
    for _ in 0..150 {
        let xv = g.constant(x.clone());
        let h = c1.forward(&mut g, xv, true);
        let h = bn1.forward(&mut g, h, true);
        let h = g.relu(h);
        let logits = c2.forward(&mut g, h, true);
        let loss = g.cross_entropy2d(logits, &labels, None);
        last = g.value(loss).item();
        g.zero_grads();
        g.backward(loss);
        opt.step(&mut g, &params);
        g.truncate(mark);
    }
    assert!(last < 0.2, "cnn failed to overfit toy batch: {last}");
}
