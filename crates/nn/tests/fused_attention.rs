//! Fused-vs-composed equivalence at the module level: toggling the
//! process-wide composed-attention fallback must not change a single bit
//! of `MultiHeadSelfAttention`'s output or gradients.
//!
//! The toggle is global process state, so every test here serializes on
//! one mutex (cargo runs a binary's tests on parallel threads).

use std::sync::Mutex;

use mfaplace_autograd::Graph;
use mfaplace_nn::{set_composed_attention, Module, MultiHeadSelfAttention};
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Runs one MHSA forward+backward from a fixed seed and returns
/// `(output, input grad, per-param grads)`.
fn run_mhsa(
    dim: usize,
    heads: usize,
    tokens: usize,
    composed: bool,
) -> (Tensor, Tensor, Vec<Tensor>) {
    set_composed_attention(composed);
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut mhsa = MultiHeadSelfAttention::new(&mut g, dim, heads, &mut rng);
    let x = g.param(Tensor::randn(vec![2, tokens, dim], 1.0, &mut rng));
    let y = mhsa.forward(&mut g, x, true);
    let y2 = g.mul(y, y);
    let loss = g.mean(y2);
    g.backward(loss);
    let out = g.value(y).clone();
    let dx = g.grad(x).cloned().expect("input grad");
    let dparams = mhsa
        .params()
        .iter()
        .map(|&p| g.grad(p).cloned().unwrap_or_else(|| Tensor::zeros(vec![1])))
        .collect();
    set_composed_attention(false);
    (out, dx, dparams)
}

fn assert_bitwise(label: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn mhsa_fused_matches_composed_bitwise() {
    let _guard = FLAG_LOCK.lock().unwrap();
    // Odd token counts (not multiples of the attention tile) and several
    // head layouts, including single-head.
    for &(dim, heads, tokens) in &[(8, 2, 5), (6, 3, 9), (4, 1, 33), (8, 4, 7)] {
        let (y_fused, dx_fused, dp_fused) = run_mhsa(dim, heads, tokens, false);
        let (y_comp, dx_comp, dp_comp) = run_mhsa(dim, heads, tokens, true);
        let label = format!("mhsa d{dim} h{heads} t{tokens}");
        assert_bitwise(&format!("{label} value"), &y_fused, &y_comp);
        assert_bitwise(&format!("{label} dx"), &dx_fused, &dx_comp);
        assert_eq!(dp_fused.len(), dp_comp.len());
        for (i, (a, b)) in dp_fused.iter().zip(&dp_comp).enumerate() {
            assert_bitwise(&format!("{label} dparam{i}"), a, b);
        }
    }
}

#[test]
#[should_panic(expected = "attention dim must be divisible by heads")]
fn mhsa_rejects_heads_not_dividing_dim() {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let _ = MultiHeadSelfAttention::new(&mut g, 10, 3, &mut rng);
}
