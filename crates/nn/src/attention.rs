use std::sync::atomic::{AtomicBool, Ordering};

use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::rng::Rng;

use crate::{Linear, Module};

/// When set, attention modules (MHSA here, PAM/CAM in `mfaplace-models`)
/// record the original composed op chain
/// (`permute → bmm → scale → softmax → bmm`) instead of the fused streamed
/// attention op. The fused path is bitwise identical to the composed one
/// (values and gradients), so this exists only as the reference for
/// equivalence tests and before/after benchmarks.
static COMPOSED_ATTENTION: AtomicBool = AtomicBool::new(false);

/// Selects the composed (reference) attention path process-wide.
pub fn set_composed_attention(enabled: bool) {
    COMPOSED_ATTENTION.store(enabled, Ordering::SeqCst);
}

/// Whether the composed (reference) attention path is selected.
pub fn composed_attention() -> bool {
    COMPOSED_ATTENTION.load(Ordering::SeqCst)
}

/// Multi-head scaled-dot-product self-attention (Eq. 9 of the paper).
///
/// Operates on token sequences of shape `[B, L, D]`. `D` must be divisible
/// by the number of heads.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// Creates the four projection matrices.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(g: &mut Graph, dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(dim % heads, 0, "attention dim must be divisible by heads");
        MultiHeadSelfAttention {
            wq: Linear::new(g, dim, dim, true, rng),
            wk: Linear::new(g, dim, dim, true, rng),
            wv: Linear::new(g, dim, dim, true, rng),
            wo: Linear::new(g, dim, dim, true, rng),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn split_heads(&self, g: &mut Graph, x: Var, b: usize, l: usize) -> Var {
        let dh = self.dim / self.heads;
        let x = g.reshape(x, vec![b, l, self.heads, dh]);
        let x = g.permute(x, &[0, 2, 1, 3]); // [B, H, L, dh]
        g.reshape(x, vec![b * self.heads, l, dh])
    }
}

impl Module for MultiHeadSelfAttention {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let shape = g.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "attention input must be [B, L, D]");
        let (b, l, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.dim, "attention dim mismatch");
        let dh = self.dim / self.heads;

        let q = self.wq.forward(g, x, train);
        let k = self.wk.forward(g, x, train);
        let v = self.wv.forward(g, x, train);
        let q = self.split_heads(g, q, b, l); // [B*H, L, dh]
        let k = self.split_heads(g, k, b, l);
        let v = self.split_heads(g, v, b, l);

        let ctx = if composed_attention() {
            let kt = g.permute(k, &[0, 2, 1]); // [B*H, dh, L]
            let scores = g.bmm(q, kt); // [B*H, L, L]
            let scaled = g.scale(scores, 1.0 / (dh as f32).sqrt());
            let attn = g.softmax_last(scaled);
            g.bmm(attn, v) // [B*H, L, dh]
        } else {
            // Fused streamed kernel: no [L, L] score/softmax tensors on the
            // tape, bitwise identical to the composed chain above.
            g.attention(q, k, v, 1.0 / (dh as f32).sqrt())
        };

        let ctx = g.reshape(ctx, vec![b, self.heads, l, dh]);
        let ctx = g.permute(ctx, &[0, 2, 1, 3]); // [B, L, H, dh]
        let ctx = g.reshape(ctx, vec![b, l, self.dim]);
        self.wo.forward(g, ctx, train)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }
}
