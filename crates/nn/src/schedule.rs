//! Learning-rate schedules.

/// A learning-rate schedule: maps a 0-based step index to a rate.
pub trait LrSchedule {
    /// The learning rate to use at `step`.
    fn lr_at(&self, step: usize) -> f32;
}

/// Constant learning rate (the paper's setting: Adam at `1e-3`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _step: usize) -> f32 {
        self.0
    }
}

/// Step decay: multiply by `gamma` every `period` steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f32,
    /// Steps between decays.
    pub period: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, step: usize) -> f32 {
        self.base * self.gamma.powi((step / self.period.max(1)) as i32)
    }
}

/// Cosine annealing from `base` to `floor` over `total` steps, with an
/// optional linear warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineLr {
    /// Peak rate after warmup.
    pub base: f32,
    /// Final rate.
    pub floor: f32,
    /// Total annealing steps.
    pub total: usize,
    /// Linear warmup steps from 0 to `base`.
    pub warmup: usize,
}

impl LrSchedule for CosineLr {
    fn lr_at(&self, step: usize) -> f32 {
        if step < self.warmup {
            return self.base * (step + 1) as f32 / self.warmup.max(1) as f32;
        }
        let t =
            (step - self.warmup) as f32 / (self.total.saturating_sub(self.warmup)).max(1) as f32;
        let t = t.min(1.0);
        self.floor + 0.5 * (self.base - self.floor) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(1e-3);
        assert_eq!(s.lr_at(0), 1e-3);
        assert_eq!(s.lr_at(10_000), 1e-3);
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay {
            base: 1.0,
            period: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn cosine_warms_up_then_anneals() {
        let s = CosineLr {
            base: 1.0,
            floor: 0.1,
            total: 100,
            warmup: 10,
        };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 0.11);
        assert!((s.lr_at(10) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(50) < 1.0);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-5);
        assert!((s.lr_at(1000) - 0.1).abs() < 1e-5, "clamps past total");
    }

    #[test]
    fn cosine_monotone_after_warmup() {
        let s = CosineLr {
            base: 2.0,
            floor: 0.0,
            total: 50,
            warmup: 0,
        };
        for step in 0..49 {
            assert!(s.lr_at(step) >= s.lr_at(step + 1));
        }
    }
}
