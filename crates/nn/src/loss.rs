//! Loss helpers for congestion-level classification.

/// Square-root inverse-frequency class weights for pixel-wise cross
/// entropy.
///
/// Congestion-level maps are heavily imbalanced (a few levels dominate), so
/// the trainer weights each class by `sqrt(total / (classes * count_c))`,
/// clamped to `[0.5, 3]`. The square root tempers the re-balancing: rare
/// levels still matter, but the model is not pushed to ignore the dominant
/// level (which carries most of the map's structure). Classes absent from
/// `labels` get the maximum weight.
///
/// ```
/// let labels = vec![0u8, 0, 0, 1];
/// let w = mfaplace_nn::class_weights_from_labels(&labels, 2);
/// assert!(w[1] > w[0]);
/// ```
pub fn class_weights_from_labels(labels: &[u8], classes: usize) -> Vec<f32> {
    let mut counts = vec![0usize; classes];
    for &l in labels {
        if (l as usize) < classes {
            counts[l as usize] += 1;
        }
    }
    let total = labels.len().max(1) as f32;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                3.0
            } else {
                (total / (classes as f32 * c as f32)).sqrt().clamp(0.5, 3.0)
            }
        })
        .collect()
}

/// One-hot encodes integer level labels into a `[K, N]`-shaped flat vector
/// (class-major), for regression-style baselines.
///
/// # Panics
///
/// Panics if a label is `>= classes`.
pub fn one_hot_levels(labels: &[u8], classes: usize) -> Vec<f32> {
    let n = labels.len();
    let mut out = vec![0.0f32; classes * n];
    for (i, &l) in labels.iter().enumerate() {
        assert!((l as usize) < classes, "label out of range");
        out[l as usize * n + i] = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_inverse_to_frequency() {
        let labels = vec![0u8; 90]
            .into_iter()
            .chain(vec![1u8; 10])
            .collect::<Vec<_>>();
        let w = class_weights_from_labels(&labels, 3);
        assert!(w[0] < w[1], "rare class should weigh more");
        assert_eq!(w[2], 3.0, "absent class gets max weight");
    }

    #[test]
    fn one_hot_layout() {
        let oh = one_hot_levels(&[1, 0], 2);
        // class-major [K, N]: class0 -> [0, 1], class1 -> [1, 0]
        assert_eq!(oh, vec![0.0, 1.0, 1.0, 0.0]);
    }
}
