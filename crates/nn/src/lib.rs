//! Neural-network building blocks on top of [`mfaplace_autograd`].
//!
//! Provides the layers needed by the congestion-prediction models of the
//! paper (convolution, batch/layer normalization, linear projections,
//! multi-head self-attention, transformer encoder blocks), plus optimizers
//! (Adam, SGD) and loss helpers.
//!
//! Layers implement [`Module`]: they own their parameter `Var`s inside a
//! shared `Graph` and build the forward computation on demand.
//!
//! # Example: one training step of a tiny conv net
//!
//! ```
//! use mfaplace_autograd::Graph;
//! use mfaplace_nn::{Conv2d, Module, Adam};
//! use mfaplace_tensor::Tensor;
//! use mfaplace_rt::rng::{SeedableRng, StdRng};
//!
//! let mut g = Graph::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut conv = Conv2d::new(&mut g, 3, 8, 3, 1, 1, true, &mut rng);
//! let mut opt = Adam::new(1e-3);
//! let mark = g.mark();
//!
//! let x = g.constant(Tensor::randn(vec![2, 3, 8, 8], 1.0, &mut rng));
//! let y = conv.forward(&mut g, x, true);
//! let target = Tensor::zeros(vec![2, 8, 8, 8]);
//! let loss = g.mse_loss(y, &target);
//! g.zero_grads();
//! g.backward(loss);
//! opt.step(&mut g, &conv.params());
//! g.truncate(mark);
//! ```

mod attention;
pub mod checkpoint;
mod conv;
mod dropout;
mod linear;
mod loss;
mod module;
mod norm;
mod optim;
mod schedule;
mod transformer;

pub use attention::{composed_attention, set_composed_attention, MultiHeadSelfAttention};
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use loss::{class_weights_from_labels, one_hot_levels};
pub use module::Module;
pub use norm::{BatchNorm2d, LayerNorm};
pub use optim::{Adam, Sgd};
pub use schedule::{ConstantLr, CosineLr, LrSchedule, StepDecay};
pub use transformer::{Mlp, TransformerBlock};
