//! Weight checkpointing: save/load all parameters of a model to a simple
//! self-describing binary format, so trained predictors can be reused
//! across harness runs (e.g. `table1` trains, `table2` loads) and served
//! by `mfaplace-serve` without out-of-band architecture knowledge.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "MFAW"            4 bytes
//! version u32              (1 or 2)
//! -- version 2 only: metadata section --
//! model_len u32, model utf-8 bytes      model/architecture name
//! n_entries u32
//! per entry:
//!   key_len u32, key utf-8 bytes, value u32
//! -- both versions --
//! count  u32               number of tensors
//! per tensor:
//!   rank u32, dims u32*rank, data f32*numel
//! ```
//!
//! Version 1 files (no metadata) remain readable; [`save_params`] still
//! writes them for tools that do not care about metadata, while
//! [`save_checkpoint`] writes version 2 with a [`CheckpointMeta`] that
//! records the model name and its integer config knobs. Truncated or
//! corrupted files are rejected with a [`CheckpointError`] before any
//! parameter is modified — a load either fully succeeds or changes
//! nothing.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use mfaplace_autograd::{Graph, Var};
use mfaplace_tensor::Tensor;

const MAGIC: &[u8; 4] = b"MFAW";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
/// Upper bounds used to reject garbage before allocating.
const MAX_NAME_LEN: usize = 256;
const MAX_META_ENTRIES: usize = 64;
const MAX_KEY_LEN: usize = 64;

/// Error for checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint, is truncated, or the version is
    /// unsupported.
    Format(String),
    /// Parameter count/shape mismatch between file and model.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        // EOF mid-parse means a truncated file, which is a format problem
        // (the file is damaged), not an environment problem.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Format("truncated file (unexpected end of data)".into())
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// Self-description stored in a version-2 checkpoint: the model name plus
/// the integer config knobs needed to rebuild the architecture before
/// loading weights into it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Model/architecture name (e.g. `"Ours"`, `"UNet"`).
    pub model: String,
    entries: Vec<(String, u32)>,
}

impl CheckpointMeta {
    /// Creates metadata for `model` with no config entries.
    pub fn new(model: impl Into<String>) -> Self {
        CheckpointMeta {
            model: model.into(),
            entries: Vec::new(),
        }
    }

    /// Adds (or overwrites) the config entry `key = value`.
    pub fn set(&mut self, key: &str, value: u32) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            self.entries.push((key.to_owned(), value));
        }
    }

    /// Builder-style [`CheckpointMeta::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: u32) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up the config entry `key`.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// All config entries in insertion order.
    pub fn entries(&self) -> &[(String, u32)] {
        &self.entries
    }
}

/// A fully parsed checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Metadata section; `None` for version-1 files.
    pub meta: Option<CheckpointMeta>,
    /// All weight tensors in save order.
    pub tensors: Vec<Tensor>,
}

/// Saves the values of `params` (in order) to `path` as a version-1 file
/// (no metadata). Prefer [`save_checkpoint`] for new files.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save_params(
    g: &Graph,
    params: &[Var],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    write_tensors(&mut w, g, params)?;
    w.flush()?;
    Ok(())
}

/// Saves `params` plus self-describing `meta` to `path` as a version-2
/// file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures and
/// [`CheckpointError::Format`] if `meta` exceeds the format's name/entry
/// limits.
pub fn save_checkpoint(
    g: &Graph,
    params: &[Var],
    meta: &CheckpointMeta,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    if meta.model.len() > MAX_NAME_LEN {
        return Err(CheckpointError::Format("model name too long".into()));
    }
    if meta.entries.len() > MAX_META_ENTRIES {
        return Err(CheckpointError::Format("too many meta entries".into()));
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    w.write_all(&(meta.model.len() as u32).to_le_bytes())?;
    w.write_all(meta.model.as_bytes())?;
    w.write_all(&(meta.entries.len() as u32).to_le_bytes())?;
    for (key, value) in &meta.entries {
        if key.len() > MAX_KEY_LEN {
            return Err(CheckpointError::Format(format!(
                "meta key {key:?} too long"
            )));
        }
        w.write_all(&(key.len() as u32).to_le_bytes())?;
        w.write_all(key.as_bytes())?;
        w.write_all(&value.to_le_bytes())?;
    }
    write_tensors(&mut w, g, params)?;
    w.flush()?;
    Ok(())
}

fn write_tensors(w: &mut impl Write, g: &Graph, params: &[Var]) -> Result<(), CheckpointError> {
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for &p in params {
        let t = g.value(p);
        w.write_all(&(t.rank() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads tensors from `path` into `params` (in order), validating shapes.
/// Accepts both version-1 and version-2 files (metadata is ignored here;
/// use [`read_checkpoint`] to also recover it).
///
/// # Errors
///
/// Returns an error if the file is malformed or any shape disagrees with
/// the corresponding parameter; `params` are untouched on error.
pub fn load_params(
    g: &mut Graph,
    params: &[Var],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let tensors = read_tensors(path)?;
    assign_params(g, params, tensors)
}

/// Writes `tensors` into `params` (in order), validating count and shapes
/// before any assignment, so a mismatch leaves the model untouched.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] on any count/shape disagreement.
pub fn assign_params(
    g: &mut Graph,
    params: &[Var],
    tensors: Vec<Tensor>,
) -> Result<(), CheckpointError> {
    if tensors.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {} tensors, model has {} parameters",
            tensors.len(),
            params.len()
        )));
    }
    for (&p, t) in params.iter().zip(&tensors) {
        if g.value(p).shape() != t.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "shape {:?} in file vs {:?} in model",
                t.shape(),
                g.value(p).shape()
            )));
        }
    }
    for (&p, t) in params.iter().zip(tensors) {
        *g.value_mut(p) = t;
    }
    Ok(())
}

/// Reads the raw tensors of a checkpoint (either version).
///
/// # Errors
///
/// Returns an error if the file is malformed.
pub fn read_tensors(path: impl AsRef<Path>) -> Result<Vec<Tensor>, CheckpointError> {
    Ok(read_checkpoint(path)?.tensors)
}

/// Reads only the metadata of a checkpoint; `None` for version-1 files.
///
/// # Errors
///
/// Returns an error if the header is malformed. Tensor data past the
/// header is not parsed (and so not validated) by this function.
pub fn read_meta(path: impl AsRef<Path>) -> Result<Option<CheckpointMeta>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    read_header(&mut r)
}

/// Parses a full checkpoint file (metadata + tensors).
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for bad magic, unsupported
/// versions, implausible section sizes, or truncation, and
/// [`CheckpointError::Io`] for filesystem failures.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let meta = read_header(&mut r)?;
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Format("implausible tensor count".into()));
    }
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Format(format!(
                "implausible rank for tensor {i}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let numel: usize = shape.iter().product();
        if numel > 256 << 20 {
            return Err(CheckpointError::Format(format!(
                "implausible size for tensor {i}"
            )));
        }
        let mut data = vec![0.0f32; numel];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        tensors.push(
            Tensor::from_vec(shape, data).map_err(|e| CheckpointError::Format(e.to_string()))?,
        );
    }
    // Trailing garbage means the writer and reader disagree on the layout;
    // reject rather than silently ignore.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(Checkpoint { meta, tensors }),
        _ => Err(CheckpointError::Format(
            "trailing bytes after last tensor".into(),
        )),
    }
}

/// Parses magic, version and (for v2) the metadata section.
fn read_header(r: &mut impl Read) -> Result<Option<CheckpointMeta>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    match read_u32(r)? {
        VERSION_V1 => Ok(None),
        VERSION_V2 => {
            let model = read_string(r, MAX_NAME_LEN, "model name")?;
            let n_entries = read_u32(r)? as usize;
            if n_entries > MAX_META_ENTRIES {
                return Err(CheckpointError::Format(
                    "implausible meta entry count".into(),
                ));
            }
            let mut meta = CheckpointMeta::new(model);
            for _ in 0..n_entries {
                let key = read_string(r, MAX_KEY_LEN, "meta key")?;
                let value = read_u32(r)?;
                meta.entries.push((key, value));
            }
            Ok(Some(meta))
        }
        v => Err(CheckpointError::Format(format!("unsupported version {v}"))),
    }
}

fn read_string(r: &mut impl Read, max_len: usize, what: &str) -> Result<String, CheckpointError> {
    let len = read_u32(r)? as usize;
    if len > max_len {
        return Err(CheckpointError::Format(format!(
            "implausible {what} length"
        )));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| CheckpointError::Format(format!("{what} is not utf-8")))
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mfaplace_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_values() {
        let path = temp_path("roundtrip.mfaw");

        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let a = g.param(Tensor::randn(vec![3, 4], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![7], 1.0, &mut rng));
        let before_a = g.value(a).clone();
        let before_b = g.value(b).clone();
        save_params(&g, &[a, b], &path).unwrap();

        // perturb, then restore
        g.value_mut(a).fill(0.0);
        g.value_mut(b).fill(0.0);
        load_params(&mut g, &[a, b], &path).unwrap();
        assert_eq!(g.value(a), &before_a);
        assert_eq!(g.value(b), &before_b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_round_trip_preserves_values_and_meta() {
        let path = temp_path("roundtrip_v2.mfaw");

        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let a = g.param(Tensor::randn(vec![2, 3], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![5], 1.0, &mut rng));
        let before_a = g.value(a).clone();
        let before_b = g.value(b).clone();
        let meta = CheckpointMeta::new("Ours")
            .with("grid", 32)
            .with("base_channels", 4)
            .with("vit_layers", 1);
        save_checkpoint(&g, &[a, b], &meta, &path).unwrap();

        let ckpt = read_checkpoint(&path).unwrap();
        let got = ckpt.meta.expect("v2 file has meta");
        assert_eq!(got, meta);
        assert_eq!(got.get("grid"), Some(32));
        assert_eq!(got.get("missing"), None);
        assert_eq!(read_meta(&path).unwrap().unwrap().model, "Ours");

        g.value_mut(a).fill(0.0);
        g.value_mut(b).fill(0.0);
        load_params(&mut g, &[a, b], &path).unwrap();
        assert_eq!(g.value(a), &before_a);
        assert_eq!(g.value(b), &before_b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn meta_set_overwrites() {
        let meta = CheckpointMeta::new("m").with("k", 1).with("k", 9);
        assert_eq!(meta.get("k"), Some(9));
        assert_eq!(meta.entries().len(), 1);
    }

    #[test]
    fn shape_mismatch_rejected_and_params_untouched() {
        let path = temp_path("mismatch.mfaw");

        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2, 2]));
        save_params(&g, &[a], &path).unwrap();
        let b = g.param(Tensor::full(vec![3, 3], 5.0));
        let err = load_params(&mut g, &[b], &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        assert_eq!(g.value(b), &Tensor::full(vec![3, 3], 5.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = temp_path("garbage.mfaw");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(matches!(
            read_tensors(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_at_every_byte_rejected() {
        // Any strict prefix of a valid file — which in particular covers
        // every section boundary (inside magic/version, mid-meta, between
        // tensors, mid-tensor-data) — must fail with a clear Format error,
        // never succeed partially.
        let path = temp_path("trunc_src.mfaw");
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(7);
        let a = g.param(Tensor::randn(vec![2, 2], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![3], 1.0, &mut rng));
        let meta = CheckpointMeta::new("UNet").with("base_channels", 4);
        save_checkpoint(&g, &[a, b], &meta, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let trunc = temp_path("trunc.mfaw");
        for len in 0..bytes.len() {
            std::fs::write(&trunc, &bytes[..len]).unwrap();
            let err = read_checkpoint(&trunc)
                .map(|_| ())
                .expect_err(&format!("prefix of {len} bytes must be rejected"));
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "prefix of {len} bytes: expected Format error, got {err:?}"
            );
        }
        std::fs::remove_file(&trunc).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let path = temp_path("trailing.mfaw");
        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2]));
        save_params(&g, &[a], &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAB);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unsupported_version_rejected() {
        let path = temp_path("future.mfaw");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported version 99"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
