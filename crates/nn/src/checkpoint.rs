//! Weight checkpointing: save/load all parameters of a model to a simple
//! self-describing binary format, so trained predictors can be reused
//! across harness runs (e.g. `table1` trains, `table2` loads).
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "MFAW"            4 bytes
//! version u32              (currently 1)
//! count  u32               number of tensors
//! per tensor:
//!   rank u32, dims u32*rank, data f32*numel
//! ```

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use mfaplace_autograd::{Graph, Var};
use mfaplace_tensor::Tensor;

const MAGIC: &[u8; 4] = b"MFAW";
const VERSION: u32 = 1;

/// Error for checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint or the version is unsupported.
    Format(String),
    /// Parameter count/shape mismatch between file and model.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Saves the values of `params` (in order) to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save_params(
    g: &Graph,
    params: &[Var],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for &p in params {
        let t = g.value(p);
        w.write_all(&(t.rank() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads tensors from `path` into `params` (in order), validating shapes.
///
/// # Errors
///
/// Returns an error if the file is malformed or any shape disagrees with
/// the corresponding parameter.
pub fn load_params(
    g: &mut Graph,
    params: &[Var],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let tensors = read_tensors(path)?;
    if tensors.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {} tensors, model has {} parameters",
            tensors.len(),
            params.len()
        )));
    }
    for (&p, t) in params.iter().zip(&tensors) {
        if g.value(p).shape() != t.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "shape {:?} in file vs {:?} in model",
                t.shape(),
                g.value(p).shape()
            )));
        }
    }
    for (&p, t) in params.iter().zip(tensors) {
        *g.value_mut(p) = t;
    }
    Ok(())
}

/// Reads the raw tensors of a checkpoint.
///
/// # Errors
///
/// Returns an error if the file is malformed.
pub fn read_tensors(path: impl AsRef<Path>) -> Result<Vec<Tensor>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Format("implausible tensor count".into()));
    }
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Format("implausible rank".into()));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let numel: usize = shape.iter().product();
        if numel > 256 << 20 {
            return Err(CheckpointError::Format("implausible tensor size".into()));
        }
        let mut data = vec![0.0f32; numel];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        tensors.push(
            Tensor::from_vec(shape, data).map_err(|e| CheckpointError::Format(e.to_string()))?,
        );
    }
    Ok(tensors)
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn round_trip_preserves_values() {
        let dir = std::env::temp_dir().join("mfaplace_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mfaw");

        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let a = g.param(Tensor::randn(vec![3, 4], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![7], 1.0, &mut rng));
        let before_a = g.value(a).clone();
        let before_b = g.value(b).clone();
        save_params(&g, &[a, b], &path).unwrap();

        // perturb, then restore
        g.value_mut(a).fill(0.0);
        g.value_mut(b).fill(0.0);
        load_params(&mut g, &[a, b], &path).unwrap();
        assert_eq!(g.value(a), &before_a);
        assert_eq!(g.value(b), &before_b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dir = std::env::temp_dir().join("mfaplace_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.mfaw");

        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2, 2]));
        save_params(&g, &[a], &path).unwrap();
        let b = g.param(Tensor::zeros(vec![3, 3]));
        let err = load_params(&mut g, &[b], &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let dir = std::env::temp_dir().join("mfaplace_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.mfaw");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(matches!(
            read_tensors(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
