//! Weight checkpointing: save/load all parameters of a model to a simple
//! self-describing binary format, so trained predictors can be reused
//! across harness runs (e.g. `table1` trains, `table2` loads) and served
//! by `mfaplace-serve` without out-of-band architecture knowledge.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "MFAW"            4 bytes
//! version u32              (1, 2 or 3)
//! -- versions 2/3 only: metadata section --
//! model_len u32, model utf-8 bytes      model/architecture name
//! n_entries u32
//! per entry:
//!   key_len u32, key utf-8 bytes, value u32
//! -- all versions --
//! count  u32               number of tensors
//! per tensor:
//!   rank u32, dims u32*rank, data f32*numel
//! -- version 3 only: training-state section --
//! tag "TRN1"               4 bytes
//! steps u64, epoch u64, batch_in_epoch u64
//! rng_state u64*4          shuffle RNG at the start of `epoch`
//! adam_t u64
//! n_moments u32; per parameter: m tensor, v tensor (layout as above)
//! n_epoch_losses u32, f32 each
//! partial_loss f64         running loss sum of the unfinished epoch
//! n_bn u32; per layer: channels u32, mean f32*ch, var f32*ch
//! ```
//!
//! Version 1 files (no metadata) remain readable; [`save_params`] still
//! writes them for tools that do not care about metadata, while
//! [`save_checkpoint`] writes version 2 with a [`CheckpointMeta`] that
//! records the model name and its integer config knobs.
//! [`save_train_checkpoint`] writes version 3, which appends the mid-run
//! optimizer/scheduler/RNG state a trainer needs to resume bit-exactly;
//! it writes to a temporary sibling file and renames into place so a kill
//! mid-save never corrupts the previous checkpoint. Truncated or
//! corrupted files are rejected with a [`CheckpointError`] before any
//! parameter is modified — a load either fully succeeds or changes
//! nothing.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use mfaplace_autograd::{Graph, Var};
use mfaplace_tensor::Tensor;

const MAGIC: &[u8; 4] = b"MFAW";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
const VERSION_V3: u32 = 3;
const TRAIN_TAG: &[u8; 4] = b"TRN1";
/// Upper bounds used to reject garbage before allocating.
const MAX_NAME_LEN: usize = 256;
const MAX_META_ENTRIES: usize = 64;
const MAX_KEY_LEN: usize = 64;

/// Error for checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint, is truncated, or the version is
    /// unsupported.
    Format(String),
    /// Parameter count/shape mismatch between file and model.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        // EOF mid-parse means a truncated file, which is a format problem
        // (the file is damaged), not an environment problem.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Format("truncated file (unexpected end of data)".into())
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// Self-description stored in a version-2 checkpoint: the model name plus
/// the integer config knobs needed to rebuild the architecture before
/// loading weights into it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Model/architecture name (e.g. `"Ours"`, `"UNet"`).
    pub model: String,
    entries: Vec<(String, u32)>,
}

impl CheckpointMeta {
    /// Creates metadata for `model` with no config entries.
    pub fn new(model: impl Into<String>) -> Self {
        CheckpointMeta {
            model: model.into(),
            entries: Vec::new(),
        }
    }

    /// Adds (or overwrites) the config entry `key = value`.
    pub fn set(&mut self, key: &str, value: u32) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            self.entries.push((key.to_owned(), value));
        }
    }

    /// Builder-style [`CheckpointMeta::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: u32) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up the config entry `key`.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// All config entries in insertion order.
    pub fn entries(&self) -> &[(String, u32)] {
        &self.entries
    }
}

/// Mid-run training state stored in a version-3 checkpoint — everything a
/// trainer needs (beyond the weights) to resume and reach bitwise the same
/// final parameters as an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainState {
    /// Optimizer steps completed so far (drives the LR schedule).
    pub steps: u64,
    /// Epoch the run was in when saved (0-based).
    pub epoch: u64,
    /// Batches completed within that epoch.
    pub batch_in_epoch: u64,
    /// Shuffle-RNG state captured at the **start** of `epoch`; resuming
    /// re-shuffles from it to recover both the epoch's sample order and the
    /// post-shuffle generator state.
    pub rng_state: [u64; 4],
    /// Adam's step counter `t` (bias correction).
    pub adam_t: u64,
    /// Adam `(m, v)` moments per parameter, in parameter order.
    pub moments: Vec<(Tensor, Tensor)>,
    /// Mean loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Loss sum accumulated over the `batch_in_epoch` batches of the
    /// unfinished epoch (f64 to keep the resumed accumulation bit-exact).
    pub partial_loss: f64,
    /// Batch-norm running `(mean, var)` per layer, in the model's
    /// `batch_norms()` order.
    pub bn_stats: Vec<(Vec<f32>, Vec<f32>)>,
}

/// A fully parsed checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Metadata section; `None` for version-1 files.
    pub meta: Option<CheckpointMeta>,
    /// All weight tensors in save order.
    pub tensors: Vec<Tensor>,
    /// Training-state section; `None` for version-1/2 files.
    pub train: Option<TrainState>,
}

/// Saves the values of `params` (in order) to `path` as a version-1 file
/// (no metadata). Prefer [`save_checkpoint`] for new files.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save_params(
    g: &Graph,
    params: &[Var],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    write_tensors(&mut w, g, params)?;
    w.flush()?;
    Ok(())
}

/// Saves `params` plus self-describing `meta` to `path` as a version-2
/// file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures and
/// [`CheckpointError::Format`] if `meta` exceeds the format's name/entry
/// limits.
pub fn save_checkpoint(
    g: &Graph,
    params: &[Var],
    meta: &CheckpointMeta,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    if meta.model.len() > MAX_NAME_LEN {
        return Err(CheckpointError::Format("model name too long".into()));
    }
    if meta.entries.len() > MAX_META_ENTRIES {
        return Err(CheckpointError::Format("too many meta entries".into()));
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    write_meta(&mut w, meta)?;
    write_tensors(&mut w, g, params)?;
    w.flush()?;
    Ok(())
}

/// Saves weights, `meta` and mid-run `train` state to `path` as a
/// version-3 file.
///
/// The write is atomic with respect to kills: the bytes go to a `.tmp`
/// sibling first and are renamed over `path` only once fully flushed, so
/// an interrupted save leaves the previous checkpoint intact.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures and
/// [`CheckpointError::Format`] if `meta` exceeds the format's limits.
pub fn save_train_checkpoint(
    g: &Graph,
    params: &[Var],
    meta: &CheckpointMeta,
    train: &TrainState,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION_V3.to_le_bytes())?;
        write_meta(&mut w, meta)?;
        write_tensors(&mut w, g, params)?;
        write_train_state(&mut w, train)?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn write_meta(w: &mut impl Write, meta: &CheckpointMeta) -> Result<(), CheckpointError> {
    if meta.model.len() > MAX_NAME_LEN {
        return Err(CheckpointError::Format("model name too long".into()));
    }
    if meta.entries.len() > MAX_META_ENTRIES {
        return Err(CheckpointError::Format("too many meta entries".into()));
    }
    w.write_all(&(meta.model.len() as u32).to_le_bytes())?;
    w.write_all(meta.model.as_bytes())?;
    w.write_all(&(meta.entries.len() as u32).to_le_bytes())?;
    for (key, value) in &meta.entries {
        if key.len() > MAX_KEY_LEN {
            return Err(CheckpointError::Format(format!(
                "meta key {key:?} too long"
            )));
        }
        w.write_all(&(key.len() as u32).to_le_bytes())?;
        w.write_all(key.as_bytes())?;
        w.write_all(&value.to_le_bytes())?;
    }
    Ok(())
}

fn write_tensors(w: &mut impl Write, g: &Graph, params: &[Var]) -> Result<(), CheckpointError> {
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for &p in params {
        write_tensor(w, g.value(p))?;
    }
    Ok(())
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> Result<(), CheckpointError> {
    w.write_all(&(t.rank() as u32).to_le_bytes())?;
    for &d in t.shape() {
        w.write_all(&(d as u32).to_le_bytes())?;
    }
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn write_train_state(w: &mut impl Write, train: &TrainState) -> Result<(), CheckpointError> {
    w.write_all(TRAIN_TAG)?;
    w.write_all(&train.steps.to_le_bytes())?;
    w.write_all(&train.epoch.to_le_bytes())?;
    w.write_all(&train.batch_in_epoch.to_le_bytes())?;
    for s in train.rng_state {
        w.write_all(&s.to_le_bytes())?;
    }
    w.write_all(&train.adam_t.to_le_bytes())?;
    w.write_all(&(train.moments.len() as u32).to_le_bytes())?;
    for (m, v) in &train.moments {
        write_tensor(w, m)?;
        write_tensor(w, v)?;
    }
    w.write_all(&(train.epoch_losses.len() as u32).to_le_bytes())?;
    for &l in &train.epoch_losses {
        w.write_all(&l.to_le_bytes())?;
    }
    w.write_all(&train.partial_loss.to_le_bytes())?;
    w.write_all(&(train.bn_stats.len() as u32).to_le_bytes())?;
    for (mean, var) in &train.bn_stats {
        if mean.len() != var.len() {
            return Err(CheckpointError::Format(
                "batch-norm mean/var length mismatch".into(),
            ));
        }
        w.write_all(&(mean.len() as u32).to_le_bytes())?;
        for &x in mean {
            w.write_all(&x.to_le_bytes())?;
        }
        for &x in var {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads tensors from `path` into `params` (in order), validating shapes.
/// Accepts both version-1 and version-2 files (metadata is ignored here;
/// use [`read_checkpoint`] to also recover it).
///
/// # Errors
///
/// Returns an error if the file is malformed or any shape disagrees with
/// the corresponding parameter; `params` are untouched on error.
pub fn load_params(
    g: &mut Graph,
    params: &[Var],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let tensors = read_tensors(path)?;
    assign_params(g, params, tensors)
}

/// Writes `tensors` into `params` (in order), validating count and shapes
/// before any assignment, so a mismatch leaves the model untouched.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] on any count/shape disagreement.
pub fn assign_params(
    g: &mut Graph,
    params: &[Var],
    tensors: Vec<Tensor>,
) -> Result<(), CheckpointError> {
    if tensors.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {} tensors, model has {} parameters",
            tensors.len(),
            params.len()
        )));
    }
    for (&p, t) in params.iter().zip(&tensors) {
        if g.value(p).shape() != t.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "shape {:?} in file vs {:?} in model",
                t.shape(),
                g.value(p).shape()
            )));
        }
    }
    for (&p, t) in params.iter().zip(tensors) {
        *g.value_mut(p) = t;
    }
    Ok(())
}

/// Reads the raw tensors of a checkpoint (either version).
///
/// # Errors
///
/// Returns an error if the file is malformed.
pub fn read_tensors(path: impl AsRef<Path>) -> Result<Vec<Tensor>, CheckpointError> {
    Ok(read_checkpoint(path)?.tensors)
}

/// Reads only the metadata of a checkpoint; `None` for version-1 files.
///
/// # Errors
///
/// Returns an error if the header is malformed. Tensor data past the
/// header is not parsed (and so not validated) by this function.
pub fn read_meta(path: impl AsRef<Path>) -> Result<Option<CheckpointMeta>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    Ok(read_header(&mut r)?.1)
}

/// Parses a full checkpoint file (metadata + tensors).
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for bad magic, unsupported
/// versions, implausible section sizes, or truncation, and
/// [`CheckpointError::Io`] for filesystem failures.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    read_checkpoint_stream(&mut r)
}

/// Parses a checkpoint from an in-memory byte buffer — e.g. one embedded
/// in a quantized serving artifact. Same validation as
/// [`read_checkpoint`].
///
/// # Errors
///
/// Same failure modes as [`read_checkpoint`] (minus filesystem I/O).
pub fn read_checkpoint_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let mut r = std::io::Cursor::new(bytes);
    read_checkpoint_stream(&mut r)
}

fn read_checkpoint_stream(mut r: impl Read) -> Result<Checkpoint, CheckpointError> {
    let (version, meta) = read_header(&mut r)?;
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Format("implausible tensor count".into()));
    }
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        tensors.push(read_tensor(&mut r, i)?);
    }
    let train = if version == VERSION_V3 {
        Some(read_train_state(&mut r)?)
    } else {
        None
    };
    // Trailing garbage means the writer and reader disagree on the layout;
    // reject rather than silently ignore.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(Checkpoint {
            meta,
            tensors,
            train,
        }),
        _ => Err(CheckpointError::Format(
            "trailing bytes after last section".into(),
        )),
    }
}

fn read_tensor(r: &mut impl Read, i: usize) -> Result<Tensor, CheckpointError> {
    let rank = read_u32(r)? as usize;
    if rank > 8 {
        return Err(CheckpointError::Format(format!(
            "implausible rank for tensor {i}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(read_u32(r)? as usize);
    }
    let numel: usize = shape.iter().product();
    if numel > 256 << 20 {
        return Err(CheckpointError::Format(format!(
            "implausible size for tensor {i}"
        )));
    }
    let mut data = vec![0.0f32; numel];
    for v in &mut data {
        *v = read_f32(r)?;
    }
    Tensor::from_vec(shape, data).map_err(|e| CheckpointError::Format(e.to_string()))
}

fn read_train_state(r: &mut impl Read) -> Result<TrainState, CheckpointError> {
    let mut tag = [0u8; 4];
    r.read_exact(&mut tag)?;
    if &tag != TRAIN_TAG {
        return Err(CheckpointError::Format(
            "bad training-state section tag".into(),
        ));
    }
    let steps = read_u64(r)?;
    let epoch = read_u64(r)?;
    let batch_in_epoch = read_u64(r)?;
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = read_u64(r)?;
    }
    let adam_t = read_u64(r)?;
    let n_moments = read_u32(r)? as usize;
    if n_moments > 1_000_000 {
        return Err(CheckpointError::Format("implausible moment count".into()));
    }
    let mut moments = Vec::with_capacity(n_moments);
    for i in 0..n_moments {
        let m = read_tensor(r, i)?;
        let v = read_tensor(r, i)?;
        if m.shape() != v.shape() {
            return Err(CheckpointError::Format(format!(
                "moment pair {i} shape mismatch"
            )));
        }
        moments.push((m, v));
    }
    let n_losses = read_u32(r)? as usize;
    if n_losses > 1_000_000 {
        return Err(CheckpointError::Format(
            "implausible epoch-loss count".into(),
        ));
    }
    let mut epoch_losses = Vec::with_capacity(n_losses);
    for _ in 0..n_losses {
        epoch_losses.push(read_f32(r)?);
    }
    let partial_loss = f64::from_bits(read_u64(r)?);
    let n_bn = read_u32(r)? as usize;
    if n_bn > 100_000 {
        return Err(CheckpointError::Format(
            "implausible batch-norm count".into(),
        ));
    }
    let mut bn_stats = Vec::with_capacity(n_bn);
    for _ in 0..n_bn {
        let channels = read_u32(r)? as usize;
        if channels > 1 << 20 {
            return Err(CheckpointError::Format(
                "implausible batch-norm width".into(),
            ));
        }
        let mut mean = Vec::with_capacity(channels);
        for _ in 0..channels {
            mean.push(read_f32(r)?);
        }
        let mut var = Vec::with_capacity(channels);
        for _ in 0..channels {
            var.push(read_f32(r)?);
        }
        bn_stats.push((mean, var));
    }
    Ok(TrainState {
        steps,
        epoch,
        batch_in_epoch,
        rng_state,
        adam_t,
        moments,
        epoch_losses,
        partial_loss,
        bn_stats,
    })
}

/// Parses magic, version and (for v2/v3) the metadata section.
fn read_header(r: &mut impl Read) -> Result<(u32, Option<CheckpointMeta>), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    match read_u32(r)? {
        VERSION_V1 => Ok((VERSION_V1, None)),
        v @ (VERSION_V2 | VERSION_V3) => {
            let model = read_string(r, MAX_NAME_LEN, "model name")?;
            let n_entries = read_u32(r)? as usize;
            if n_entries > MAX_META_ENTRIES {
                return Err(CheckpointError::Format(
                    "implausible meta entry count".into(),
                ));
            }
            let mut meta = CheckpointMeta::new(model);
            for _ in 0..n_entries {
                let key = read_string(r, MAX_KEY_LEN, "meta key")?;
                let value = read_u32(r)?;
                meta.entries.push((key, value));
            }
            Ok((v, Some(meta)))
        }
        v => Err(CheckpointError::Format(format!("unsupported version {v}"))),
    }
}

fn read_string(r: &mut impl Read, max_len: usize, what: &str) -> Result<String, CheckpointError> {
    let len = read_u32(r)? as usize;
    if len > max_len {
        return Err(CheckpointError::Format(format!(
            "implausible {what} length"
        )));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| CheckpointError::Format(format!("{what} is not utf-8")))
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> Result<f32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mfaplace_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_values() {
        let path = temp_path("roundtrip.mfaw");

        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let a = g.param(Tensor::randn(vec![3, 4], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![7], 1.0, &mut rng));
        let before_a = g.value(a).clone();
        let before_b = g.value(b).clone();
        save_params(&g, &[a, b], &path).unwrap();

        // perturb, then restore
        g.value_mut(a).fill(0.0);
        g.value_mut(b).fill(0.0);
        load_params(&mut g, &[a, b], &path).unwrap();
        assert_eq!(g.value(a), &before_a);
        assert_eq!(g.value(b), &before_b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_round_trip_preserves_values_and_meta() {
        let path = temp_path("roundtrip_v2.mfaw");

        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(3);
        let a = g.param(Tensor::randn(vec![2, 3], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![5], 1.0, &mut rng));
        let before_a = g.value(a).clone();
        let before_b = g.value(b).clone();
        let meta = CheckpointMeta::new("Ours")
            .with("grid", 32)
            .with("base_channels", 4)
            .with("vit_layers", 1);
        save_checkpoint(&g, &[a, b], &meta, &path).unwrap();

        let ckpt = read_checkpoint(&path).unwrap();
        let got = ckpt.meta.expect("v2 file has meta");
        assert_eq!(got, meta);
        assert_eq!(got.get("grid"), Some(32));
        assert_eq!(got.get("missing"), None);
        assert_eq!(read_meta(&path).unwrap().unwrap().model, "Ours");

        g.value_mut(a).fill(0.0);
        g.value_mut(b).fill(0.0);
        load_params(&mut g, &[a, b], &path).unwrap();
        assert_eq!(g.value(a), &before_a);
        assert_eq!(g.value(b), &before_b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn meta_set_overwrites() {
        let meta = CheckpointMeta::new("m").with("k", 1).with("k", 9);
        assert_eq!(meta.get("k"), Some(9));
        assert_eq!(meta.entries().len(), 1);
    }

    #[test]
    fn shape_mismatch_rejected_and_params_untouched() {
        let path = temp_path("mismatch.mfaw");

        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2, 2]));
        save_params(&g, &[a], &path).unwrap();
        let b = g.param(Tensor::full(vec![3, 3], 5.0));
        let err = load_params(&mut g, &[b], &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        assert_eq!(g.value(b), &Tensor::full(vec![3, 3], 5.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = temp_path("garbage.mfaw");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(matches!(
            read_tensors(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_at_every_byte_rejected() {
        // Any strict prefix of a valid file — which in particular covers
        // every section boundary (inside magic/version, mid-meta, between
        // tensors, mid-tensor-data) — must fail with a clear Format error,
        // never succeed partially.
        let path = temp_path("trunc_src.mfaw");
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(7);
        let a = g.param(Tensor::randn(vec![2, 2], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![3], 1.0, &mut rng));
        let meta = CheckpointMeta::new("UNet").with("base_channels", 4);
        save_checkpoint(&g, &[a, b], &meta, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let trunc = temp_path("trunc.mfaw");
        for len in 0..bytes.len() {
            std::fs::write(&trunc, &bytes[..len]).unwrap();
            let err = read_checkpoint(&trunc)
                .map(|_| ())
                .expect_err(&format!("prefix of {len} bytes must be rejected"));
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "prefix of {len} bytes: expected Format error, got {err:?}"
            );
        }
        std::fs::remove_file(&trunc).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let path = temp_path("trailing.mfaw");
        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2]));
        save_params(&g, &[a], &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAB);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        std::fs::remove_file(path).ok();
    }

    fn sample_train_state(g: &Graph, params: &[Var]) -> TrainState {
        TrainState {
            steps: 17,
            epoch: 2,
            batch_in_epoch: 3,
            rng_state: [1, 2, 3, 4],
            adam_t: 17,
            moments: params
                .iter()
                .map(|&p| {
                    let shape = g.value(p).shape().to_vec();
                    (Tensor::full(shape.clone(), 0.5), Tensor::full(shape, 0.25))
                })
                .collect(),
            epoch_losses: vec![1.5, 1.25],
            partial_loss: 3.75,
            bn_stats: vec![(vec![0.1, 0.2], vec![0.9, 1.1])],
        }
    }

    #[test]
    fn v3_round_trip_preserves_train_state() {
        let path = temp_path("roundtrip_v3.mfaw");
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(5);
        let a = g.param(Tensor::randn(vec![2, 3], 1.0, &mut rng));
        let b = g.param(Tensor::randn(vec![4], 1.0, &mut rng));
        let meta = CheckpointMeta::new("Ours").with("grid", 32);
        let train = sample_train_state(&g, &[a, b]);
        save_train_checkpoint(&g, &[a, b], &meta, &train, &path).unwrap();

        let ckpt = read_checkpoint(&path).unwrap();
        assert_eq!(ckpt.meta.unwrap(), meta);
        assert_eq!(ckpt.tensors.len(), 2);
        assert_eq!(ckpt.train.unwrap(), train);
        // v2 loaders of the weights section still work through load_params.
        g.value_mut(a).fill(0.0);
        load_params(&mut g, &[a, b], &path).unwrap();
        assert_ne!(g.value(a).data()[0], 0.0);
        // No stray .tmp left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v3_truncation_at_every_byte_rejected() {
        let path = temp_path("trunc_v3_src.mfaw");
        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2]));
        let meta = CheckpointMeta::new("UNet");
        let train = sample_train_state(&g, &[a]);
        save_train_checkpoint(&g, &[a], &meta, &train, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let trunc = temp_path("trunc_v3.mfaw");
        for len in 0..bytes.len() {
            std::fs::write(&trunc, &bytes[..len]).unwrap();
            let err = read_checkpoint(&trunc)
                .map(|_| ())
                .expect_err(&format!("prefix of {len} bytes must be rejected"));
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "prefix of {len} bytes: expected Format error, got {err:?}"
            );
        }
        std::fs::remove_file(&trunc).ok();
    }

    #[test]
    fn v2_file_has_no_train_state() {
        let path = temp_path("v2_no_train.mfaw");
        let mut g = Graph::new();
        let a = g.param(Tensor::zeros(vec![2]));
        save_checkpoint(&g, &[a], &CheckpointMeta::new("Ours"), &path).unwrap();
        assert!(read_checkpoint(&path).unwrap().train.is_none());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unsupported_version_rejected() {
        let path = temp_path("future.mfaw");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported version 99"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
