use std::collections::HashMap;

use mfaplace_autograd::{Graph, Var};
use mfaplace_tensor::Tensor;

/// Adam optimizer (Kingma & Ba) — the optimizer used by the paper
/// (learning rate `1e-3`).
///
/// Moment state is keyed by parameter tape index and allocated lazily, so a
/// single optimizer instance can drive any parameter set of one graph.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    state: HashMap<usize, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates an Adam optimizer with default betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Sets decoupled weight decay (AdamW style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken so far (the `t` of the bias correction).
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Exports `(t, per-parameter (m, v) moments)` in `params` order for
    /// checkpointing. Parameters that never received a gradient export
    /// zero moments, which is exactly the state lazy allocation would give
    /// them on their first step.
    pub fn export_moments(&self, g: &Graph, params: &[Var]) -> (u64, Vec<(Tensor, Tensor)>) {
        let moments = params
            .iter()
            .map(|p| {
                self.state.get(&p.index()).cloned().unwrap_or_else(|| {
                    let shape = g.value(*p).shape().to_vec();
                    (Tensor::zeros(shape.clone()), Tensor::zeros(shape))
                })
            })
            .collect();
        (self.t, moments)
    }

    /// Restores state exported by [`Adam::export_moments`], keyed to
    /// `params` in order.
    ///
    /// # Panics
    ///
    /// Panics if the moment count disagrees with `params`.
    pub fn import_moments(&mut self, params: &[Var], t: u64, moments: Vec<(Tensor, Tensor)>) {
        assert_eq!(params.len(), moments.len(), "moment count mismatch");
        self.t = t;
        self.state.clear();
        for (p, mv) in params.iter().zip(moments) {
            self.state.insert(p.index(), mv);
        }
    }

    /// Applies one update step to `params` using the gradients accumulated
    /// on `g`. Parameters without a gradient are skipped.
    pub fn step(&mut self, g: &mut Graph, params: &[Var]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for &p in params {
            let Some(grad) = g.grad(p).cloned() else {
                continue;
            };
            let (m, v) = self.state.entry(p.index()).or_insert_with(|| {
                (
                    Tensor::zeros(grad.shape().to_vec()),
                    Tensor::zeros(grad.shape().to_vec()),
                )
            });
            let value = g.value_mut(p);
            for i in 0..grad.numel() {
                let mut gi = grad.data()[i];
                if self.weight_decay > 0.0 {
                    gi += self.weight_decay * value.data()[i];
                }
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to `params` using accumulated gradients.
    pub fn step(&mut self, g: &mut Graph, params: &[Var]) {
        for &p in params {
            let Some(grad) = g.grad(p).cloned() else {
                continue;
            };
            if self.momentum > 0.0 {
                let vel = self
                    .velocity
                    .entry(p.index())
                    .or_insert_with(|| Tensor::zeros(grad.shape().to_vec()));
                for i in 0..grad.numel() {
                    let v = self.momentum * vel.data()[i] + grad.data()[i];
                    vel.data_mut()[i] = v;
                    g.value_mut(p).data_mut()[i] -= self.lr * v;
                }
            } else {
                g.value_mut(p).add_scaled_assign(&grad, -self.lr);
            }
        }
    }
}
