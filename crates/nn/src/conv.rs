use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::kaiming_normal;
use mfaplace_tensor::Tensor;

use crate::Module;

/// 2-D convolution layer with optional bias.
///
/// Weight shape is `[out_channels, in_channels, k, k]`, initialized with
/// Kaiming-normal for ReLU networks.
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: Var,
    b: Option<Var>,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a convolution layer, registering its parameters on `g`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        g: &mut Graph,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let w = g.param(kaiming_normal(
            vec![out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let b = bias.then(|| g.param(Tensor::zeros(vec![out_channels])));
        Conv2d { w, b, stride, pad }
    }

    /// Creates a convolution layer whose weights (and bias) start at zero —
    /// used as the last layer of residual branches so the branch begins as
    /// the identity and grows during training (ResNet/ReZero-style).
    #[allow(clippy::too_many_arguments)]
    pub fn new_zeroed(
        g: &mut Graph,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
    ) -> Self {
        let w = g.param(Tensor::zeros(vec![
            out_channels,
            in_channels,
            kernel,
            kernel,
        ]));
        let b = bias.then(|| g.param(Tensor::zeros(vec![out_channels])));
        Conv2d { w, b, stride, pad }
    }

    /// The stride of the convolution.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The zero padding of the convolution.
    pub fn pad(&self) -> usize {
        self.pad
    }
}

impl Module for Conv2d {
    fn forward(&mut self, g: &mut Graph, x: Var, _train: bool) -> Var {
        let y = g.conv2d(x, self.w, self.stride, self.pad);
        match self.b {
            Some(b) => g.add_bias_channel(y, b),
            None => y,
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.w];
        p.extend(self.b);
        p
    }
}
