use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::{xavier_uniform, Tensor};

use crate::Module;

/// Fully-connected layer applied to the last axis of its input.
///
/// For an input of shape `[..., in_dim]` the output is `[..., out_dim]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Var,
    b: Option<Var>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a linear layer, registering its parameters on `g`.
    pub fn new(
        g: &mut Graph,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = g.param(xavier_uniform(vec![in_dim, out_dim], in_dim, out_dim, rng));
        let b = bias.then(|| g.param(Tensor::zeros(vec![out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for Linear {
    fn forward(&mut self, g: &mut Graph, x: Var, _train: bool) -> Var {
        let shape = g.value(x).shape().to_vec();
        let d = *shape.last().expect("linear input needs rank >= 1");
        assert_eq!(d, self.in_dim, "linear input dim mismatch");
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let flat = g.reshape(x, vec![rows, d]);
        let mut y = g.matmul(flat, self.w);
        if let Some(b) = self.b {
            y = g.add_bias_row(y, b);
        }
        let mut out_shape = shape;
        *out_shape.last_mut().expect("non-empty shape") = self.out_dim;
        g.reshape(y, out_shape)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.w];
        p.extend(self.b);
        p
    }
}
