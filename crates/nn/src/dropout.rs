use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::rng::StdRng;
use mfaplace_rt::rng::{Rng, SeedableRng};
use mfaplace_tensor::Tensor;

use crate::Module;

/// Inverted dropout: zeroes each element with probability `p` during
/// training and rescales survivors by `1/(1-p)`; identity at evaluation.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        if !train || self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        let shape = g.value(x).shape().to_vec();
        let mask = Tensor::from_fn(shape, |_| {
            if self.rng.gen_f32() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let m = g.constant(mask);
        g.mul(x, m)
    }

    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}
