use mfaplace_autograd::{Graph, Var};
use mfaplace_tensor::Tensor;

use crate::Module;

/// Batch normalization over `(B, H, W)` per channel.
///
/// Training mode uses batch statistics (differentiable) and updates running
/// statistics with exponential smoothing; evaluation mode folds the running
/// statistics into a constant per-channel affine transform.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    /// Batch statistics of the most recent train-mode forward, for
    /// data-parallel replay: worker replicas capture these per shard and
    /// the primary re-applies them in sample order via
    /// [`BatchNorm2d::ema_update`], keeping running statistics independent
    /// of the worker count.
    last_batch: Option<(Vec<f32>, Vec<f32>)>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(g: &mut Graph, channels: usize) -> Self {
        BatchNorm2d {
            gamma: g.param(Tensor::ones(vec![channels])),
            beta: g.param(Tensor::zeros(vec![channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            last_batch: None,
        }
    }

    /// Creates a batch-norm layer whose `gamma` starts at zero — placed at
    /// the end of a residual branch this makes the block start as the
    /// identity (the "zero-init residual" trick), which markedly speeds up
    /// training of deep residual stacks.
    pub fn new_zero_gamma(g: &mut Graph, channels: usize) -> Self {
        BatchNorm2d {
            gamma: g.param(Tensor::zeros(vec![channels])),
            beta: g.param(Tensor::zeros(vec![channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            last_batch: None,
        }
    }

    /// The tracked running mean per channel.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The tracked running variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Takes the batch `(mean, var)` captured by the most recent
    /// train-mode forward, clearing the capture slot.
    pub fn take_batch_stats(&mut self) -> Option<(Vec<f32>, Vec<f32>)> {
        self.last_batch.take()
    }

    /// Applies one exponential-moving-average update of the running
    /// statistics from explicit batch statistics — the primary model's
    /// side of the data-parallel replay (see `last_batch`). Statistics must
    /// be replayed in sample order to be worker-count invariant.
    pub fn ema_update(&mut self, mean: &[f32], var: &[f32]) {
        for c in 0..self.running_mean.len() {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }
    }

    /// Overwrites the running statistics (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the channel count.
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.running_mean.len(), "running mean length");
        assert_eq!(var.len(), self.running_var.len(), "running var length");
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        if train {
            let (y, mean, var) = g.batch_norm2d(x, self.gamma, self.beta, self.eps);
            self.ema_update(&mean, &var);
            self.last_batch = Some((mean, var));
            y
        } else {
            let gamma = g.value(self.gamma).data().to_vec();
            let beta = g.value(self.beta).data().to_vec();
            let scale: Vec<f32> = gamma
                .iter()
                .zip(&self.running_var)
                .map(|(&gm, &rv)| gm / (rv + self.eps).sqrt())
                .collect();
            let shift: Vec<f32> = beta
                .iter()
                .zip(&scale)
                .zip(&self.running_mean)
                .map(|((&b, &s), &rm)| b - s * rm)
                .collect();
            g.channel_affine(x, scale, shift)
        }
    }

    fn params(&self) -> Vec<Var> {
        vec![self.gamma, self.beta]
    }
}

/// Layer normalization over the last axis with learnable affine.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer-norm over a last axis of size `dim`.
    pub fn new(g: &mut Graph, dim: usize) -> Self {
        LayerNorm {
            gamma: g.param(Tensor::ones(vec![dim])),
            beta: g.param(Tensor::zeros(vec![dim])),
            eps: 1e-5,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&mut self, g: &mut Graph, x: Var, _train: bool) -> Var {
        g.layer_norm(x, self.gamma, self.beta, self.eps)
    }

    fn params(&self) -> Vec<Var> {
        vec![self.gamma, self.beta]
    }
}
