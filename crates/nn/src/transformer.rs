use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::rng::Rng;

use crate::{Dropout, LayerNorm, Linear, Module, MultiHeadSelfAttention};

/// Two-layer perceptron with GELU, the feed-forward half of a transformer
/// block.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    drop: Dropout,
}

impl Mlp {
    /// Creates an MLP `dim -> hidden -> dim`.
    pub fn new(g: &mut Graph, dim: usize, hidden: usize, dropout: f32, rng: &mut impl Rng) -> Self {
        Mlp {
            fc1: Linear::new(g, dim, hidden, true, rng),
            fc2: Linear::new(g, hidden, dim, true, rng),
            drop: Dropout::new(dropout, rng.gen_u64()),
        }
    }
}

impl Module for Mlp {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var {
        let h = self.fc1.forward(g, x, train);
        let h = g.gelu(h);
        let h = self.drop.forward(g, h, train);
        self.fc2.forward(g, h, train)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.fc1.params();
        p.extend(self.fc2.params());
        p
    }
}

/// One pre-norm vision-transformer encoder layer (Fig. 4, Eqs. 8–10):
///
/// ```text
/// a = MSA(LN(z)) + z
/// z' = MLP(LN(a)) + a
/// ```
///
/// The paper's Eq. (10) writes `MSA` for the second sub-layer; per Fig. 4 and
/// the ViT reference \[12\] the second sub-layer is the MLP — we follow the
/// figure.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a transformer block with the given token dimension, head
    /// count and MLP expansion ratio.
    pub fn new(
        g: &mut Graph,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(g, dim),
            attn: MultiHeadSelfAttention::new(g, dim, heads, rng),
            ln2: LayerNorm::new(g, dim),
            mlp: Mlp::new(g, dim, dim * mlp_ratio, dropout, rng),
        }
    }
}

impl Module for TransformerBlock {
    fn forward(&mut self, g: &mut Graph, z: Var, train: bool) -> Var {
        let n = self.ln1.forward(g, z, train);
        let a = self.attn.forward(g, n, train);
        let a = g.add(a, z);
        let n2 = self.ln2.forward(g, a, train);
        let m = self.mlp.forward(g, n2, train);
        g.add(m, a)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.ln1.params();
        p.extend(self.attn.params());
        p.extend(self.ln2.params());
        p.extend(self.mlp.params());
        p
    }
}
