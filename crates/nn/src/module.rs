use mfaplace_autograd::{Graph, Var};

/// A neural-network layer that owns parameters inside a shared [`Graph`].
///
/// `forward` takes `&mut self` because some layers (batch normalization)
/// update internal running statistics during a training-mode pass.
pub trait Module {
    /// Builds the forward computation for `x` on the graph.
    ///
    /// `train` selects training behaviour (batch statistics, dropout).
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool) -> Var;

    /// All trainable parameter handles of this layer (and its children).
    fn params(&self) -> Vec<Var>;

    /// Total number of trainable scalar parameters.
    fn param_count(&self, g: &Graph) -> usize {
        self.params().iter().map(|&p| g.value(p).numel()).sum()
    }
}
