//! Shared harness code for the experiment binaries (`table1`, `table2`,
//! `fig1`, `fig5`, `ablation`).
//!
//! The binaries regenerate every table and figure of the paper's
//! evaluation; this library holds the common machinery: the experiment
//! scale (env `MFA_SCALE=quick|full`, default a laptop-scale middle
//! ground), suite dataset construction, the model zoo, and per-design
//! evaluation.

use mfaplace_autograd::Graph;
use mfaplace_core::dataset::{build_design_dataset, Dataset, DatasetConfig};
use mfaplace_core::metrics::PredictionMetrics;
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_fpga::design::{Design, DesignPreset};
use mfaplace_models::{CongestionModel, OursConfig, OursModel, PgnnModel, Pros2Model, UNetModel};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;

/// Experiment scale knobs resolved from the `MFA_SCALE` environment
/// variable: `quick` (CI smoke), default (laptop minutes) or `full`
/// (closer to the paper's resolution; tens of minutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Feature/label grid side.
    pub grid: usize,
    /// Design scaling divisors `(cells, dsp, bram)`.
    pub design_divisors: (usize, usize, usize),
    /// Placements per design in the dataset sweep.
    pub placements: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Model base channels.
    pub base_channels: usize,
    /// Transformer depth for the paper's model.
    pub vit_layers: usize,
    /// Placer iterations for flows.
    pub flow_iterations: usize,
}

impl Scale {
    /// Resolves the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("MFA_SCALE").as_deref() {
            Ok("quick") => Scale {
                grid: 32,
                design_divisors: (512, 64, 32),
                placements: 3,
                epochs: 12,
                base_channels: 4,
                vit_layers: 1,
                flow_iterations: 10,
            },
            Ok("full") => Scale {
                grid: 64,
                design_divisors: (64, 16, 8),
                placements: 8,
                epochs: 30,
                base_channels: 8,
                vit_layers: 3,
                flow_iterations: 60,
            },
            _ => Scale {
                grid: 48,
                design_divisors: (128, 24, 12),
                placements: 6,
                epochs: 24,
                base_channels: 8,
                vit_layers: 2,
                flow_iterations: 30,
            },
        }
    }

    /// The ten Table-I designs generated at this scale.
    pub fn prediction_designs(&self, seed: u64) -> Vec<Design> {
        DesignPreset::prediction_suite()
            .into_iter()
            .map(|p| {
                let (c, d, b) = self.design_divisors;
                p.with_scale(c, d, b).generate(seed)
            })
            .collect()
    }

    /// The ten Table-II designs generated at this scale.
    pub fn contest_designs(&self, seed: u64) -> Vec<Design> {
        DesignPreset::contest_suite()
            .into_iter()
            .map(|p| {
                let (c, d, b) = self.design_divisors;
                p.with_scale(c, d, b).generate(seed)
            })
            .collect()
    }

    /// Dataset configuration at this scale.
    pub fn dataset_config(&self) -> DatasetConfig {
        let mut cfg = DatasetConfig {
            grid: self.grid,
            placements_per_design: self.placements,
            placer_iterations: (self.flow_iterations / 2).max(4),
            ..DatasetConfig::default()
        };
        cfg.router.grid_w = self.grid;
        cfg.router.grid_h = self.grid;
        cfg
    }

    /// Model configuration for the paper's model at this scale.
    pub fn ours_config(&self) -> OursConfig {
        OursConfig {
            grid: self.grid,
            base_channels: self.base_channels,
            vit_layers: self.vit_layers,
            vit_heads: 4,
            use_mfa: true,
            mfa_reduction: 4,
        }
    }
}

/// Grid side must be divisible by 16 for the U-shaped models.
pub fn validate_scale(scale: &Scale) {
    assert_eq!(scale.grid % 16, 0, "grid must be divisible by 16");
}

/// Per-design datasets plus the pooled training set.
pub struct SuiteData {
    /// `(design name, per-design test split)`.
    pub per_design_test: Vec<(String, Dataset)>,
    /// Pooled training set across all designs.
    pub train: Dataset,
}

/// Builds train/test data for a design suite: each design's samples are
/// split 75/25; training pools all designs (as in the paper, which trains
/// on the whole augmented corpus).
pub fn build_suite_data(designs: &[Design], cfg: &DatasetConfig, seed: u64) -> SuiteData {
    let mut train = Dataset {
        samples: Vec::new(),
        grid: cfg.grid,
    };
    let mut per_design_test = Vec::new();
    for (i, design) in designs.iter().enumerate() {
        let ds = build_design_dataset(design, cfg, seed.wrapping_add(i as u64 * 131));
        let (tr, te) = ds.split(0.25, seed.wrapping_add(i as u64));
        train.samples.extend(tr.samples);
        per_design_test.push((design.name.clone(), te));
    }
    SuiteData {
        per_design_test,
        train,
    }
}

/// The four Table-I models, constructed on fresh graphs.
// The variants intentionally hold the models inline: a handful of zoo
// entries exist per run, so the size skew does not matter.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum ZooModel {
    /// U-Net baseline \[6\].
    UNet(UNetModel),
    /// PGNN baseline \[7\].
    Pgnn(PgnnModel),
    /// PROS 2.0 baseline \[8\].
    Pros2(Pros2Model),
    /// The paper's model.
    Ours(OursModel),
}

impl CongestionModel for ZooModel {
    fn forward(
        &mut self,
        g: &mut Graph,
        x: mfaplace_autograd::Var,
        train: bool,
    ) -> mfaplace_autograd::Var {
        match self {
            ZooModel::UNet(m) => m.forward(g, x, train),
            ZooModel::Pgnn(m) => m.forward(g, x, train),
            ZooModel::Pros2(m) => m.forward(g, x, train),
            ZooModel::Ours(m) => m.forward(g, x, train),
        }
    }

    fn params(&self) -> Vec<mfaplace_autograd::Var> {
        match self {
            ZooModel::UNet(m) => m.params(),
            ZooModel::Pgnn(m) => m.params(),
            ZooModel::Pros2(m) => m.params(),
            ZooModel::Ours(m) => m.params(),
        }
    }

    fn name(&self) -> &str {
        match self {
            ZooModel::UNet(m) => m.name(),
            ZooModel::Pgnn(m) => m.name(),
            ZooModel::Pros2(m) => m.name(),
            ZooModel::Ours(m) => m.name(),
        }
    }

    fn batch_norms(&mut self) -> Vec<&mut mfaplace_nn::BatchNorm2d> {
        match self {
            ZooModel::UNet(m) => m.batch_norms(),
            ZooModel::Pgnn(m) => m.batch_norms(),
            ZooModel::Pros2(m) => m.batch_norms(),
            ZooModel::Ours(m) => m.batch_norms(),
        }
    }
}

/// Builds the Table-I model zoo in paper order.
pub fn model_zoo(scale: &Scale, seed: u64) -> Vec<(Graph, ZooModel)> {
    let c = scale.base_channels;
    let mut zoo = Vec::new();
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = UNetModel::new(&mut g, c, &mut rng);
        zoo.push((g, ZooModel::UNet(m)));
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let m = PgnnModel::new(&mut g, c, &mut rng);
        zoo.push((g, ZooModel::Pgnn(m)));
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let m = Pros2Model::new(&mut g, c, &mut rng);
        zoo.push((g, ZooModel::Pros2(m)));
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let m = OursModel::new(&mut g, scale.ours_config(), &mut rng);
        zoo.push((g, ZooModel::Ours(m)));
    }
    zoo
}

/// Trains one model on the pooled set and evaluates it per design.
pub fn train_and_evaluate(
    graph: Graph,
    model: ZooModel,
    suite: &SuiteData,
    epochs: usize,
) -> (String, Vec<PredictionMetrics>, Trainer<ZooModel>) {
    let name = model.name().to_string();
    let mut trainer = Trainer::new(
        graph,
        model,
        TrainConfig {
            epochs,
            batch_size: 2,
            lr: 1e-3,
            class_weighting: true,
            cosine_schedule: true,
            seed: 11,
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&suite.train);
    eprintln!(
        "  [{name}] {} steps, loss {:.3} -> {:.3}",
        report.steps,
        report.epoch_losses.first().copied().unwrap_or(0.0),
        report.epoch_losses.last().copied().unwrap_or(0.0)
    );
    let metrics = suite
        .per_design_test
        .iter()
        .map(|(_, test)| trainer.evaluate(test))
        .collect();
    (name, metrics, trainer)
}

/// Writes a report string to `results/<name>` (best effort) and stdout.
pub fn emit_report(name: &str, content: &str) {
    println!("{content}");
    let path = std::path::Path::new("results").join(name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scale() -> Scale {
        Scale {
            grid: 32,
            design_divisors: (512, 64, 32),
            placements: 1,
            epochs: 1,
            base_channels: 4,
            vit_layers: 1,
            flow_iterations: 4,
        }
    }

    #[test]
    fn suites_have_ten_designs_with_table_names() {
        let scale = quick_scale();
        let pred = scale.prediction_designs(1);
        let contest = scale.contest_designs(1);
        assert_eq!(pred.len(), 10);
        assert_eq!(contest.len(), 10);
        assert_eq!(pred[0].name, "Design_116");
        assert_eq!(pred[9].name, "Design_237");
        assert_eq!(contest[9].name, "Design_230");
    }

    #[test]
    fn suite_data_pools_training_and_splits_tests() {
        let scale = quick_scale();
        let designs: Vec<_> = scale.prediction_designs(1).into_iter().take(2).collect();
        let suite = build_suite_data(&designs, &scale.dataset_config(), 3);
        assert_eq!(suite.per_design_test.len(), 2);
        let total_test: usize = suite.per_design_test.iter().map(|(_, d)| d.len()).sum();
        // 2 designs x 1 placement x 4 rotations = 8 samples, split 75/25.
        assert_eq!(suite.train.len() + total_test, 8);
        assert!(total_test >= 2);
    }

    #[test]
    fn model_zoo_order_matches_table1_columns() {
        let scale = quick_scale();
        let zoo = model_zoo(&scale, 1);
        let names: Vec<&str> = zoo.iter().map(|(_, m)| m.name()).collect();
        assert_eq!(names, vec!["U-net", "PGNN", "PROS2.0", "Ours"]);
    }

    #[test]
    fn zoo_models_share_input_output_contract() {
        use mfaplace_tensor::Tensor;
        let scale = quick_scale();
        for (mut g, mut m) in model_zoo(&scale, 2) {
            let x = g.constant(Tensor::zeros(vec![1, 6, 32, 32]));
            let y = m.forward(&mut g, x, false);
            assert_eq!(g.value(y).shape(), &[1, 8, 32, 32], "{}", m.name());
        }
    }
}
