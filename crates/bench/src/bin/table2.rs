//! Regenerates **Table II**: routability-driven placement comparison on the
//! ten MLCAD 2023 benchmarks — the UTDA-like, SEU-like and
//! MPKU-Improve-like RUDY-analytical flows against the paper's model-driven
//! flow ("Ours"), reporting `S_score`, `S_R`, `T_P&R`, `S_IR`, `S_DR`
//! per design plus Average and Ratio rows.
//!
//! The "Ours" flow first trains the MFA+transformer model on a placement
//! sweep of the same suite (as in the paper), then uses it as the inflation
//! predictor. Scale via `MFA_SCALE=quick|full`. Output goes to stdout and
//! `results/table2.txt`.

use mfaplace_autograd::Graph;
use mfaplace_bench::{build_suite_data, emit_report, validate_scale, Scale};
use mfaplace_core::flow::{FlowConfig, FlowOutcome, MacroPlacementFlow};
use mfaplace_core::predictor::ModelPredictor;
use mfaplace_core::report::{fmt, Table};
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_models::OursModel;
use mfaplace_placer::flows::{FlowConfig as PlacerFlowConfig, RudyPredictor};

use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;

fn scaled_placer_cfg(mut cfg: PlacerFlowConfig, scale: &Scale) -> PlacerFlowConfig {
    // Proportional scaling preserves the flows' relative effort profiles.
    cfg.gp_stage1.iterations = (cfg.gp_stage1.iterations * scale.flow_iterations / 60).max(4);
    cfg.gp_stage2.iterations = (cfg.gp_stage2.iterations * scale.flow_iterations / 50).max(2);
    cfg.grid_w = scale.grid;
    cfg.grid_h = scale.grid;
    cfg
}

fn main() {
    let scale = Scale::from_env();
    validate_scale(&scale);
    eprintln!("Table II harness at scale {scale:?}");
    let designs = scale.contest_designs(1);

    // ---- train the paper's model on a placement sweep of the suite ----
    eprintln!("training the congestion model for the 'Ours' flow...");
    // The flow predictor must be trained on labels produced under the SAME
    // capacity calibration its deployment router uses (0.95); looser
    // calibration floods high-level labels and makes Eq. 11 inflate the
    // whole design.
    let mut ds_cfg = scale.dataset_config();
    ds_cfg.target_util = 0.95;
    let suite = build_suite_data(&designs, &ds_cfg, 42);
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let model = OursModel::new(&mut g, scale.ours_config(), &mut rng);
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: scale.epochs,
            batch_size: 2,
            lr: 1e-3,
            class_weighting: true,
            cosine_schedule: true,
            seed: 3,
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&suite.train);
    eprintln!(
        "  trained: {} steps, loss {:.3} -> {:.3}",
        report.steps,
        report.epoch_losses.first().copied().unwrap_or(0.0),
        report.epoch_losses.last().copied().unwrap_or(0.0)
    );
    let (graph, model) = trainer.into_parts();
    let mut ours_predictor = ModelPredictor::new(graph, model);

    // ---- run the four flows on every design ---------------------------
    let flows: Vec<(&str, PlacerFlowConfig)> = vec![
        (
            "UTDA",
            scaled_placer_cfg(PlacerFlowConfig::utda_like(), &scale),
        ),
        (
            "SEU",
            scaled_placer_cfg(PlacerFlowConfig::seu_like(), &scale),
        ),
        (
            "MPKU-Improve",
            scaled_placer_cfg(PlacerFlowConfig::mpku_like(), &scale),
        ),
        (
            "Ours",
            scaled_placer_cfg(PlacerFlowConfig::model_driven(), &scale),
        ),
    ];

    let mut outcomes: Vec<Vec<FlowOutcome>> = vec![Vec::new(); flows.len()];
    for design in &designs {
        eprintln!("placing {}...", design.name);
        // One calibrated scoring router per design, shared by all flows.
        let router = mfaplace_core::flow::calibrated_router_for(design, scale.grid, 0.95, 99);
        for (fi, (fname, placer_cfg)) in flows.iter().enumerate() {
            let flow = MacroPlacementFlow::new(FlowConfig {
                placer: placer_cfg.clone(),
                router: router.clone(),
            });
            let outcome = if *fname == "Ours" {
                flow.run_with(design, &mut ours_predictor, 5)
            } else {
                flow.run_with(design, &mut RudyPredictor::default(), 5)
            };
            eprintln!(
                "  {fname:<13} S_IR={:.0} S_DR={:.0} S_R={:.0} T_PR={:.2}h",
                outcome.score.s_ir(),
                outcome.score.s_dr(),
                outcome.score.s_r(),
                outcome.score.inputs().t_pr_hours
            );
            outcomes[fi].push(outcome);
        }
    }

    // ---- render --------------------------------------------------------
    let mut header = vec!["Design".to_string()];
    for (fname, _) in &flows {
        for metric in ["S_score", "S_R", "T_P&R", "S_IR", "S_DR"] {
            header.push(format!("{fname} {metric}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for (di, design) in designs.iter().enumerate() {
        let mut row = vec![design.name.clone()];
        for flow_outcomes in &outcomes {
            let o = &flow_outcomes[di];
            row.push(fmt(o.score.s_score(), 2));
            row.push(fmt(o.score.s_r(), 0));
            row.push(fmt(o.score.inputs().t_pr_hours, 2));
            row.push(fmt(o.score.s_ir(), 0));
            row.push(fmt(o.score.s_dr(), 0));
        }
        table.add_row(row);
    }
    // Average + Ratio rows.
    let n = designs.len() as f64;
    let mut averages: Vec<[f64; 5]> = Vec::new();
    for flow_outcomes in &outcomes {
        let mut acc = [0.0f64; 5];
        for o in flow_outcomes {
            acc[0] += o.score.s_score();
            acc[1] += o.score.s_r();
            acc[2] += o.score.inputs().t_pr_hours;
            acc[3] += o.score.s_ir();
            acc[4] += o.score.s_dr();
        }
        for v in &mut acc {
            *v /= n;
        }
        averages.push(acc);
    }
    let mut avg_row = vec!["Average".to_string()];
    for a in &averages {
        for &v in a.iter() {
            avg_row.push(fmt(v, 2));
        }
    }
    table.add_row(avg_row);
    let ours_avg = *averages.last().expect("flows non-empty");
    let mut ratio_row = vec!["Ratio".to_string()];
    for a in &averages {
        for i in 0..5 {
            ratio_row.push(fmt(a[i] / ours_avg[i].max(1e-9), 2));
        }
    }
    table.add_row(ratio_row);

    let mut out = String::new();
    out.push_str("TABLE II: ROUTABILITY-DRIVEN PLACEMENT COMPARISON\n");
    out.push_str(&format!(
        "(simulated substrate; grid {}x{}; flows: RUDY-analytical baselines vs model-driven)\n\n",
        scale.grid, scale.grid
    ));
    out.push_str(&table.render());
    emit_report("table2.txt", &out);
}
