//! Regenerates **Fig. 1**: an example interconnect-tile congestion grid.
//!
//! Routes one contest design under an intentionally congested placement,
//! then renders the per-tile congestion levels as an ASCII heat map (darker
//! glyph = higher level, mirroring the paper's color coding) and as a PPM
//! image at `results/fig1.ppm`.

use mfaplace_bench::{emit_report, Scale};
use mfaplace_router::labels::congestion_labels;
use mfaplace_router::RouterConfig;

const GLYPHS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];

fn main() {
    let scale = Scale::from_env();
    let design = &scale.contest_designs(1)[5]; // Design_180, the hottest
                                               // A deliberately clustered placement shows the level structure.
    let mut placement = design.random_placement(3);
    for (id, inst) in design.netlist.instances() {
        if inst.movable {
            let (x, y) = placement.pos(id.0 as usize);
            placement.set_pos(
                id.0 as usize,
                design.arch.width() * 0.35 + x * 0.3,
                design.arch.height() * 0.35 + y * 0.3,
            );
        }
    }
    // Calibrated capacities (as in Table II scoring), so the level
    // structure is meaningful rather than saturated.
    let cfg = RouterConfig {
        ..mfaplace_core::flow::calibrated_router_for(design, scale.grid, 0.95, 99)
    };
    let labels = congestion_labels(design, &placement, &cfg);

    // ---- ASCII rendering -------------------------------------------
    let mut out = String::new();
    out.push_str(&format!(
        "FIG. 1: interconnect tile congestion levels for {} ({}x{} grid)\n",
        design.name, cfg.grid_w, cfg.grid_h
    ));
    out.push_str("legend: ");
    for (l, g) in GLYPHS.iter().enumerate() {
        out.push_str(&format!("{l}='{g}' "));
    }
    out.push_str("\n\n");
    for y in (0..cfg.grid_h).rev() {
        for x in 0..cfg.grid_w {
            let l = labels.levels[y * cfg.grid_w + x] as usize;
            out.push(GLYPHS[l.min(7)]);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\nshort levels (E,S,W,N): {:?}\nglobal levels (E,S,W,N): {:?}\nmax level: {}\n",
        labels.analysis.short_levels(),
        labels.analysis.global_levels(),
        labels.analysis.max_level()
    ));
    emit_report("fig1.txt", &out);

    // ---- PPM rendering (yellow heat like the paper's figure) --------
    let mut ppm = format!("P3\n{} {}\n255\n", cfg.grid_w, cfg.grid_h);
    for y in (0..cfg.grid_h).rev() {
        for x in 0..cfg.grid_w {
            let l = f32::from(labels.levels[y * cfg.grid_w + x]) / 7.0;
            // white -> yellow -> dark orange
            let r = 255;
            let g = (255.0 * (1.0 - 0.65 * l)) as u8;
            let b = (235.0 * (1.0 - l)) as u8;
            ppm.push_str(&format!("{r} {g} {b} "));
        }
        ppm.push('\n');
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/fig1.ppm", ppm).expect("write fig1.ppm");
    eprintln!("wrote results/fig1.ppm");
}
