//! Regenerates **Table I**: prediction comparison of U-Net, PGNN, PROS 2.0
//! and the paper's MFA+transformer model on the ten most-congested MLCAD
//! 2023 benchmarks (ACC / R^2 / NRMS per design, plus Average and Ratio
//! rows).
//!
//! Scale via `MFA_SCALE=quick|full` (default: laptop-scale). Output goes to
//! stdout and `results/table1.txt`.

use mfaplace_bench::{
    build_suite_data, emit_report, model_zoo, train_and_evaluate, validate_scale, Scale,
};
use mfaplace_core::metrics::PredictionMetrics;
use mfaplace_core::report::{fmt, Table};
use mfaplace_fpga::design::DesignPreset;

fn main() {
    let scale = Scale::from_env();
    validate_scale(&scale);
    eprintln!("Table I harness at scale {scale:?}");

    let designs = scale.prediction_designs(1);
    eprintln!("building dataset for {} designs...", designs.len());
    let suite = build_suite_data(&designs, &scale.dataset_config(), 42);
    eprintln!(
        "dataset: {} train samples, {} designs x test splits",
        suite.train.len(),
        suite.per_design_test.len()
    );

    let mut results: Vec<(String, Vec<PredictionMetrics>)> = Vec::new();
    for (graph, model) in model_zoo(&scale, 99) {
        let (name, metrics, _trainer) = train_and_evaluate(graph, model, &suite, scale.epochs);
        results.push((name, metrics));
    }

    // ---- render -----------------------------------------------------
    let mut header = vec![
        "Design".to_string(),
        "#LUT".to_string(),
        "#FF".to_string(),
        "#DSP".to_string(),
        "#BRAM".to_string(),
    ];
    for (name, _) in &results {
        header.push(format!("{name} ACC^"));
        header.push(format!("{name} R2^"));
        header.push(format!("{name} NRMSv"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let presets = DesignPreset::prediction_suite();
    let n = suite.per_design_test.len();
    for (di, (dname, _)) in suite.per_design_test.iter().enumerate() {
        let (luts, ffs, dsps, brams) = presets[di].paper_stats();
        let mut row = vec![
            dname.clone(),
            format!("{}K", luts / 1000),
            format!("{}K", ffs / 1000),
            dsps.to_string(),
            brams.to_string(),
        ];
        for (_, metrics) in &results {
            row.push(fmt(metrics[di].acc, 3));
            row.push(fmt(metrics[di].r2, 3));
            row.push(fmt(metrics[di].nrms, 3));
        }
        table.add_row(row);
    }
    // Average row
    let avg = |ms: &[PredictionMetrics], f: fn(&PredictionMetrics) -> f64| {
        ms.iter().map(f).sum::<f64>() / ms.len() as f64
    };
    let mut avg_row = vec![
        "Average".to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ];
    let mut averages = Vec::new();
    for (_, metrics) in &results {
        let a = avg(metrics, |m| m.acc);
        let r = avg(metrics, |m| m.r2);
        let nr = avg(metrics, |m| m.nrms);
        averages.push((a, r, nr));
        avg_row.push(fmt(a, 3));
        avg_row.push(fmt(r, 3));
        avg_row.push(fmt(nr, 3));
    }
    table.add_row(avg_row);
    // Ratio row (relative to Ours = last column group, as in the paper)
    let (oa, or, onr) = *averages.last().expect("at least one model");
    let mut ratio_row = vec![
        "Ratio".to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ];
    for &(a, r, nr) in &averages {
        ratio_row.push(fmt(a / oa, 3));
        ratio_row.push(fmt(r / or, 3));
        ratio_row.push(fmt(nr / onr, 3));
    }
    table.add_row(ratio_row);

    let mut out = String::new();
    out.push_str("TABLE I: PREDICTION COMPARISON OF DIFFERENT ML-BASED METHODS\n");
    out.push_str(&format!(
        "(simulated substrate; grid {}x{}, {} designs, {} train samples)\n\n",
        suite.train.grid,
        suite.train.grid,
        n,
        suite.train.len()
    ));
    out.push_str(&table.render());
    emit_report("table1.txt", &out);
}
