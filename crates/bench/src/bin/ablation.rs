//! Ablation study of the paper's two design claims (Sec. III): the MFA
//! blocks on the skip connections and the transformer stage at the
//! bottleneck. Trains four variants at equal budget — full model, no MFA,
//! no ViT, and the bare U-shaped ResNet backbone — and reports ACC / R^2 /
//! NRMS averaged over the suite's test splits.

use mfaplace_autograd::Graph;
use mfaplace_bench::{build_suite_data, emit_report, validate_scale, Scale};
use mfaplace_core::metrics::PredictionMetrics;
use mfaplace_core::report::{fmt, Table};
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_models::{OursConfig, OursModel};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;

fn main() {
    let scale = Scale::from_env();
    validate_scale(&scale);
    eprintln!("Ablation harness at scale {scale:?}");
    // A smaller suite keeps the ablation affordable: first four designs.
    let designs: Vec<_> = scale.prediction_designs(1).into_iter().take(4).collect();
    let suite = build_suite_data(&designs, &scale.dataset_config(), 21);
    eprintln!("dataset: {} train samples", suite.train.len());

    let base = scale.ours_config();
    let variants: Vec<(&str, OursConfig)> = vec![
        ("Ours (full)", base),
        (
            "no MFA",
            OursConfig {
                use_mfa: false,
                ..base
            },
        ),
        (
            "no ViT",
            OursConfig {
                vit_layers: 0,
                ..base
            },
        ),
        (
            "backbone only",
            OursConfig {
                use_mfa: false,
                vit_layers: 0,
                ..base
            },
        ),
    ];

    let mut table = Table::new(&["Variant", "ACC^", "R2^", "NRMSv", "params"]);
    let mut rendered = String::new();
    rendered.push_str("ABLATION: MFA blocks and transformer stage (Sec. III design claims)\n\n");
    for (name, cfg) in variants {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(5);
        let model = OursModel::new(&mut g, cfg, &mut rng);
        let n_params: usize = {
            use mfaplace_models::CongestionModel;
            model.params().iter().map(|&p| g.value(p).numel()).sum()
        };
        let mut trainer = Trainer::new(
            g,
            model,
            TrainConfig {
                epochs: scale.epochs,
                batch_size: 2,
                lr: 1e-3,
                class_weighting: true,
                cosine_schedule: true,
                seed: 13,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&suite.train);
        let mut acc = PredictionMetrics::default();
        for (_, test) in &suite.per_design_test {
            let m = trainer.evaluate(test);
            acc.acc += m.acc;
            acc.r2 += m.r2;
            acc.nrms += m.nrms;
        }
        let n = suite.per_design_test.len() as f64;
        eprintln!("  {name}: acc {:.3}", acc.acc / n);
        table.add_row(vec![
            name.to_string(),
            fmt(acc.acc / n, 3),
            fmt(acc.r2 / n, 3),
            fmt(acc.nrms / n, 3),
            n_params.to_string(),
        ]);
    }
    rendered.push_str(&table.render());
    emit_report("ablation.txt", &rendered);
}
