//! Regenerates **Figs. 2/5**: the model architecture and per-stage output
//! sizes. Prints the stage table at the paper's full scale (256x256 grid,
//! 12 transformer layers) and at the experiment scale, plus the parameter
//! count of the instantiated experiment-scale model.

use mfaplace_autograd::Graph;
use mfaplace_bench::{emit_report, Scale};
use mfaplace_models::summary::{ours_stage_shapes, render_stage_table};
use mfaplace_models::{CongestionModel, OursConfig, OursModel};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;

fn main() {
    let scale = Scale::from_env();
    let mut out = String::new();

    out.push_str("FIG. 5: model architecture (paper scale: H=W=256, C=16, L=12)\n\n");
    let paper_cfg = OursConfig {
        grid: 256,
        base_channels: 16,
        vit_layers: 12,
        vit_heads: 4,
        use_mfa: true,
        mfa_reduction: 16,
    };
    out.push_str(&render_stage_table(&ours_stage_shapes(&paper_cfg)));

    out.push_str(&format!(
        "\nExperiment scale (H=W={}, C={}, L={}):\n\n",
        scale.grid, scale.base_channels, scale.vit_layers
    ));
    let cfg = scale.ours_config();
    out.push_str(&render_stage_table(&ours_stage_shapes(&cfg)));

    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = OursModel::new(&mut g, cfg, &mut rng);
    let total: usize = model.params().iter().map(|&p| g.value(p).numel()).sum();
    out.push_str(&format!(
        "\nInstantiated experiment-scale model: {} parameter tensors, {} scalars\n",
        model.params().len(),
        total
    ));
    emit_report("fig5.txt", &out);
}
