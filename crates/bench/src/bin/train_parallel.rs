//! Data-parallel training throughput: wall-clock per epoch for worker
//! counts K = 1, 2, 4 on the paper's model, plus a bitwise cross-check
//! that every K produced identical final parameters.
//!
//! Emits `results/train_parallel.json`. Scale via `MFA_SCALE=quick|full`.
//! Note that speedup is bounded by the host's core count
//! ([`mfaplace_rt::pool::max_threads`] is reported alongside the numbers):
//! on a single-core container all K time the same and the bench only
//! demonstrates the determinism contract.

use mfaplace_autograd::Graph;
use mfaplace_bench::{emit_report, Scale};
use mfaplace_core::dataset::{Dataset, Sample};
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_models::{CongestionModel, OursModel};
use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const EPOCHS: usize = 2;
const SAMPLES: usize = 8;
const BATCH: usize = 4;

/// Synthetic dataset so the bench times training, not the placement
/// pipeline that normally produces the data.
fn synth_dataset(grid: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(17);
    let samples = (0..SAMPLES)
        .map(|_| Sample {
            features: Tensor::randn(vec![6, grid, grid], 1.0, &mut rng),
            labels: (0..grid * grid)
                .map(|_| rng.gen_range(0..8u32) as u8)
                .collect(),
        })
        .collect();
    Dataset { samples, grid }
}

fn run(k: usize, scale: &Scale, ds: &Dataset) -> (f64, usize, Option<u64>, Vec<u32>) {
    // Attribute the peak-RSS watermark to this worker count's run rather
    // than whatever ran before it in the process.
    let rss_supported = mfaplace_rt::bench::reset_peak_rss();
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(23);
    let model = OursModel::new(&mut g, scale.ours_config(), &mut rng);
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: EPOCHS,
            batch_size: BATCH,
            workers: Some(k),
            ..TrainConfig::default()
        },
    );
    let t0 = std::time::Instant::now();
    let report = trainer.fit(ds);
    let secs = t0.elapsed().as_secs_f64();
    let peak_rss = if rss_supported {
        mfaplace_rt::bench::peak_rss_bytes()
    } else {
        None
    };
    let (g, model) = trainer.into_parts();
    let bits = model
        .params()
        .iter()
        .flat_map(|&p| {
            g.value(p)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect();
    (secs / EPOCHS as f64, report.steps, peak_rss, bits)
}

fn main() {
    let scale = Scale::from_env();
    let ds = synth_dataset(scale.grid);
    eprintln!(
        "train_parallel: grid {}, base_channels {}, {} samples x {} epochs, {} host threads",
        scale.grid,
        scale.base_channels,
        SAMPLES,
        EPOCHS,
        mfaplace_rt::pool::max_threads()
    );

    let mut rows = Vec::new();
    let mut baseline_epoch_secs = 0.0f64;
    let mut baseline_bits: Vec<u32> = Vec::new();
    let mut bitwise_identical = true;
    for k in [1usize, 2, 4] {
        let (epoch_secs, steps, peak_rss, bits) = run(k, &scale, &ds);
        if k == 1 {
            baseline_epoch_secs = epoch_secs;
            baseline_bits = bits;
        } else if bits != baseline_bits {
            bitwise_identical = false;
        }
        let speedup = baseline_epoch_secs / epoch_secs;
        let rss_json = peak_rss.map_or_else(|| "null".to_owned(), |b| b.to_string());
        eprintln!("  K={k}: {epoch_secs:.3} s/epoch ({steps} steps, speedup {speedup:.2}x)");
        rows.push(format!(
            "    {{\"workers\": {k}, \"epoch_seconds\": {epoch_secs:.6}, \"steps\": {steps}, \"speedup_vs_1\": {speedup:.4}, \"peak_rss_bytes\": {rss_json}}}"
        ));
    }

    let json = format!
        (
        "{{\n  \"bench\": \"train_parallel\",\n  \"grid\": {},\n  \"base_channels\": {},\n  \"samples\": {},\n  \"epochs\": {},\n  \"host_threads\": {},\n  \"bitwise_identical_across_workers\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        scale.grid,
        scale.base_channels,
        SAMPLES,
        EPOCHS,
        mfaplace_rt::pool::max_threads(),
        bitwise_identical,
        rows.join(",\n")
    );
    emit_report("train_parallel.json", &json);
    assert!(
        bitwise_identical,
        "worker counts diverged — determinism contract broken"
    );
}
