//! Convergence study: U-Net vs the MFA+transformer model at equal budget.
//!
//! Trains both models on the full ten-design suite and prints test metrics
//! every ten epochs. Referenced by `EXPERIMENTS.md`: at CPU scale the
//! shallow U-Net converges fastest and holds a small lead; the attention
//! model's training loss keeps improving but does not cross within this
//! budget — the paper's separation requires its full-scale training regime.
//!
//! ```sh
//! MFA_SCALE=quick cargo run --release -p mfaplace-bench --example convergence_study
//! ```

use mfaplace_autograd::Graph;
use mfaplace_bench::{build_suite_data, Scale};
use mfaplace_core::metrics::PredictionMetrics;
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_models::{OursModel, UNetModel};
use mfaplace_rt::rng::{SeedableRng, StdRng};

fn main() {
    let scale = Scale::from_env();
    let designs = scale.prediction_designs(1);
    let suite = build_suite_data(&designs, &scale.dataset_config(), 42);
    eprintln!("train {} samples", suite.train.len());
    let cfgt = |ep| TrainConfig {
        epochs: ep,
        cosine_schedule: false,
        ..TrainConfig::default()
    };
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let m = UNetModel::new(&mut g, scale.base_channels, &mut rng);
    let mut t_unet = Trainer::new(g, m, cfgt(10));
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let m = OursModel::new(&mut g, scale.ours_config(), &mut rng);
    let mut t_ours = Trainer::new(g, m, cfgt(10));
    macro_rules! eval {
        ($t:expr) => {{
            let mut acc = PredictionMetrics::default();
            for (_, te) in &suite.per_design_test {
                let m = $t.evaluate(te);
                acc.acc += m.acc;
                acc.r2 += m.r2;
                acc.nrms += m.nrms;
            }
            let n = suite.per_design_test.len() as f64;
            PredictionMetrics {
                acc: acc.acc / n,
                r2: acc.r2 / n,
                nrms: acc.nrms / n,
            }
        }};
    }
    for round in 0..8 {
        let ru = t_unet.fit(&suite.train);
        let ro = t_ours.fit(&suite.train);
        let eu = eval!(t_unet);
        let eo = eval!(t_ours);
        eprintln!("ep {:>3}: unet loss {:.3} acc {:.3} r2 {:.3} nrms {:.3} | ours loss {:.3} acc {:.3} r2 {:.3} nrms {:.3}",
            (round+1)*10, ru.epoch_losses.last().unwrap(), eu.acc, eu.r2, eu.nrms,
            ro.epoch_losses.last().unwrap(), eo.acc, eo.r2, eo.nrms);
    }
}
