//! Before/after benchmark for the fused attention path: the full `ours`
//! model forward with the fused `attention`/`attention_fm` graph ops
//! versus the composed `permute → bmm → softmax → bmm` chains they
//! replaced, at grids 32/64 (forward + train step) and at the
//! paper-fidelity grid 256 (fused forward only: at grid 256 the PAM
//! spatial length is L = 65536, so one composed score tensor alone is
//! L² ≈ 17 GiB and a single composed forward runs for many minutes —
//! there is no composed baseline to measure, which is itself the
//! result: only the tiled fused kernel reaches paper-fidelity
//! resolution at all). Writes `results/attention_fused.json`.
//!
//! Every (grid, variant) combination runs in its **own child process**:
//! peak RSS is sampled from the kernel's `VmHWM` watermark, and a
//! watermark observed after another variant already ran in the same
//! process would inherit that variant's retained heap. One process per
//! variant makes the peak attributable. The parent re-execs itself with
//! `MFA_ATTN_CHILD=<grid>:<variant>` and merges the children's JSON.

use mfaplace_autograd::Graph;
use mfaplace_models::{CongestionModel, OursConfig, OursModel};
use mfaplace_nn::set_composed_attention;
use mfaplace_rt::bench::Suite;
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const CHILD_ENV: &str = "MFA_ATTN_CHILD";
const GRIDS: [usize; 3] = [32, 64, 256];
const VARIANTS: [&str; 2] = ["composed", "fused"];
/// Largest grid benchmarked beyond a fused-only forward: the composed
/// baseline and the training tape are quadratic in the PAM spatial
/// length and stop being measurable above this (see module docs).
const MAX_FULL_GRID: usize = 64;

fn model(g: &mut Graph, grid: usize) -> OursModel {
    let mut rng = StdRng::seed_from_u64(0);
    OursModel::new(
        g,
        OursConfig {
            grid,
            base_channels: 4,
            vit_layers: 1,
            vit_heads: 2,
            use_mfa: true,
            mfa_reduction: 4,
        },
        &mut rng,
    )
}

/// Child mode: benchmark one (grid, variant) and print the suite JSON on
/// stdout (the table goes to stderr).
fn run_child(spec: &str) {
    let (grid, variant) = spec
        .split_once(':')
        .expect("MFA_ATTN_CHILD=<grid>:<variant>");
    let grid: usize = grid.parse().expect("grid");
    set_composed_attention(variant == "composed");

    let mut g = Graph::new();
    let mut m = model(&mut g, grid);
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::randn(vec![1, 6, grid, grid], 1.0, &mut rng);

    let mut suite = Suite::new("attention_fused").with_config(2, 7);

    // Inference hot path: the predictor records forwards with gradients off.
    g.set_grad_enabled(false);
    let mark = g.mark();
    suite.run(&format!("attention/{variant}/grid{grid}/forward"), |b| {
        b.iter(|| {
            let x = g.constant(input.clone());
            let y = m.forward(&mut g, x, false);
            let out = g.value(y).sum();
            g.truncate(mark);
            std::hint::black_box(out)
        })
    });

    // Training step (forward + backward over the same tape).
    if grid > MAX_FULL_GRID {
        print!("{}", suite.to_json());
        return;
    }
    g.set_grad_enabled(true);
    let mark = g.mark();
    suite.run(&format!("attention/{variant}/grid{grid}/train_step"), |b| {
        b.iter(|| {
            let x = g.constant(input.clone());
            let y = m.forward(&mut g, x, true);
            let loss = g.mean(y);
            g.backward(loss);
            let out = g.value(loss).item();
            g.zero_grads();
            g.truncate(mark);
            std::hint::black_box(out)
        })
    });

    print!("{}", suite.to_json());
}

/// Extracts the contents of the top-level `"benchmarks":[...]` array.
fn benchmarks_fragment(json: &str) -> &str {
    let start = json.find("\"benchmarks\":[").expect("benchmarks array") + "\"benchmarks\":[".len();
    let end = json.rfind("]}").expect("array close");
    &json[start..end]
}

fn median_of(json: &str, name: &str) -> Option<f64> {
    let entry = json.split("{\"name\":\"").find(|s| s.starts_with(name))?;
    let field = entry.split("\"median_ns\":").nth(1)?;
    field
        .split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn peak_rss_of(json: &str, name: &str) -> Option<u64> {
    let entry = json.split("{\"name\":\"").find(|s| s.starts_with(name))?;
    let field = entry.split("\"peak_rss_bytes\":").nth(1)?;
    field
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    if let Ok(spec) = std::env::var(CHILD_ENV) {
        run_child(&spec);
        return;
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut fragments = Vec::new();
    for grid in GRIDS {
        for variant in VARIANTS {
            if grid > MAX_FULL_GRID && variant == "composed" {
                continue;
            }
            let out = std::process::Command::new(&exe)
                .env(CHILD_ENV, format!("{grid}:{variant}"))
                .stderr(std::process::Stdio::inherit())
                .output()
                .expect("spawn bench child");
            assert!(out.status.success(), "child {grid}:{variant} failed");
            let json = String::from_utf8(out.stdout).expect("child json");
            fragments.push(benchmarks_fragment(&json).to_owned());
        }
    }
    let merged = format!(
        "{{\"suite\":\"attention_fused\",\"benchmarks\":[{}]}}",
        fragments.join(",")
    );

    for grid in GRIDS {
        for stage in ["forward", "train_step"] {
            let composed = median_of(&merged, &format!("attention/composed/grid{grid}/{stage}"));
            let fused = median_of(&merged, &format!("attention/fused/grid{grid}/{stage}"));
            let rss_c = peak_rss_of(&merged, &format!("attention/composed/grid{grid}/{stage}"));
            let rss_f = peak_rss_of(&merged, &format!("attention/fused/grid{grid}/{stage}"));
            if let (Some(c), Some(f)) = (composed, fused) {
                let rss = match (rss_c, rss_f) {
                    (Some(c), Some(f)) => format!(
                        "peak rss {:.1} -> {:.1} MiB",
                        c as f64 / (1024.0 * 1024.0),
                        f as f64 / (1024.0 * 1024.0)
                    ),
                    _ => "peak rss n/a".to_owned(),
                };
                println!(
                    "grid {grid} {stage:<10} composed {:>12.1} ns  fused {:>12.1} ns  speedup {:.2}x  {rss}",
                    c,
                    f,
                    c / f
                );
            } else if let Some(f) = fused {
                let rss = match rss_f {
                    Some(f) => format!("peak rss {:.1} MiB", f as f64 / (1024.0 * 1024.0)),
                    None => "peak rss n/a".to_owned(),
                };
                println!(
                    "grid {grid} {stage:<10} composed   (not measurable)  fused {f:>12.1} ns  {rss}"
                );
            }
        }
    }

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/attention_fused.json"
    );
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(out, merged).expect("write attention_fused.json");
}
