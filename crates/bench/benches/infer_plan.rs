//! Before/after benchmark for the compiled inference plan: the full
//! `ours` model forward through `ModelPredictor` on the tape engine
//! versus the plan engine, at grids 32/64 with batches 1/8 plus a
//! batch-1 run at grid 256 (the placement-scale stress case; batch 8
//! there would push a single sample past ten seconds for no extra
//! signal). The batch-1 grid-64/grid-256 points additionally run a
//! `plan-par` variant — the plan engine with the level scheduler at
//! four workers — against the serial `plan` baseline (workers = 1,
//! scheduler effectively off). Writes `results/infer_plan.json`.
//!
//! Every (grid, batch, engine) combination runs in its **own child
//! process**: peak RSS is sampled from the kernel's `VmHWM` watermark,
//! and a watermark observed after another engine already ran in the same
//! process would inherit that engine's retained heap (the tape's graph
//! pool, the plan's arena). One process per combination makes the peak
//! attributable. The parent re-execs itself with
//! `MFA_PLAN_CHILD=<grid>:<batch>:<engine>` and merges the JSON.

use mfaplace_autograd::Graph;
use mfaplace_core::predictor::{Engine, ModelPredictor};
use mfaplace_core::{Precision, QuantOptions};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_rt::bench::Suite;
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const CHILD_ENV: &str = "MFA_PLAN_CHILD";
const CONFIGS: [(usize, usize); 5] = [(32, 1), (32, 8), (64, 1), (64, 8), (256, 1)];
const ENGINES: [&str; 2] = ["tape", "plan"];
/// Level-scheduler worker count for the `plan-par` variant.
const PAR_WORKERS: usize = 4;

/// Engine variants for one (grid, batch) point: tape and serial plan
/// everywhere; the parallel scheduler only where it can pay off (batch-1
/// latency at placement-relevant grids — batched forwards already
/// parallelize across the batch dimension inside the kernels). The
/// quantized variants (int8 arena with int8 GEMMs, f16 arena) run at
/// the grids where arena size matters (64 and the placement-scale 256).
fn variants(grid: usize, batch: usize) -> &'static [&'static str] {
    if batch == 1 && grid >= 64 {
        &["tape", "plan", "plan-par", "plan-int8", "plan-f16"]
    } else if grid >= 64 {
        &["tape", "plan", "plan-int8", "plan-f16"]
    } else {
        &ENGINES
    }
}

fn spec(grid: usize) -> ArchSpec {
    let mut spec = ArchSpec::new(Arch::Ours, grid);
    spec.base_channels = 4;
    spec.vit_layers = 1;
    spec.vit_heads = 2;
    spec
}

/// Child mode: benchmark one (grid, batch, engine) and print the suite
/// JSON on stdout (the table goes to stderr).
fn run_child(child: &str) {
    let mut parts = child.split(':');
    let grid: usize = parts.next().and_then(|s| s.parse().ok()).expect("grid");
    let batch: usize = parts.next().and_then(|s| s.parse().ok()).expect("batch");
    let variant = parts.next().expect("engine");
    let engine = match variant {
        "plan-par" => Engine::Plan,
        "plan-int8" | "plan-f16" => Engine::Quant,
        other => Engine::parse(other).expect("engine"),
    };

    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = spec(grid).build(&mut g, &mut rng).expect("build model");
    let mut predictor = ModelPredictor::new(g, model);
    predictor.set_engine(engine);
    predictor.set_plan_workers(if variant == "plan-par" {
        PAR_WORKERS
    } else {
        1
    });
    if engine == Engine::Quant {
        // Offline calibration happens outside the sampled region, like
        // the plan compilation warm-up below.
        let precision = if variant == "plan-f16" {
            Precision::F16
        } else {
            Precision::Int8
        };
        let mut c_rng = StdRng::seed_from_u64(2);
        let calib: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(vec![6, grid, grid], 1.0, &mut c_rng))
            .collect();
        predictor
            .calibrate(&calib, QuantOptions { precision })
            .expect("calibrate");
    }

    let mut in_rng = StdRng::seed_from_u64(1);
    let inputs: Vec<Tensor> = (0..batch)
        .map(|_| Tensor::randn(vec![6, grid, grid], 1.0, &mut in_rng))
        .collect();

    // Warm up outside the sampled region: the plan engine compiles its
    // shape-specialized plan here, the tape engine populates its buffer
    // pool. After this, the plan path runs with zero heap allocations.
    let warm = predictor.predict_batch_tensors(&inputs);
    std::hint::black_box(warm);
    if engine == Engine::Plan {
        assert!(
            predictor.plan_broken().is_none(),
            "plan compilation failed: {:?}",
            predictor.plan_broken()
        );
    }
    if engine == Engine::Quant {
        assert!(
            predictor.quant_broken().is_none(),
            "quant plan compilation failed: {:?}",
            predictor.quant_broken()
        );
    }

    let mut suite = Suite::new("infer_plan").with_config(2, 7);
    suite.run(
        &format!("infer/{variant}/grid{grid}/batch{batch}/forward"),
        |b| b.iter(|| std::hint::black_box(predictor.predict_batch_tensors(&inputs))),
    );
    print!("{}", suite.to_json());
}

/// Extracts the contents of the top-level `"benchmarks":[...]` array.
fn benchmarks_fragment(json: &str) -> &str {
    let start = json.find("\"benchmarks\":[").expect("benchmarks array") + "\"benchmarks\":[".len();
    let end = json.rfind("]}").expect("array close");
    &json[start..end]
}

fn median_of(json: &str, name: &str) -> Option<f64> {
    let entry = json.split("{\"name\":\"").find(|s| s.starts_with(name))?;
    let field = entry.split("\"median_ns\":").nth(1)?;
    field
        .split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn peak_rss_of(json: &str, name: &str) -> Option<u64> {
    let entry = json.split("{\"name\":\"").find(|s| s.starts_with(name))?;
    let field = entry.split("\"peak_rss_bytes\":").nth(1)?;
    field
        .split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    if let Ok(child) = std::env::var(CHILD_ENV) {
        run_child(&child);
        return;
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut fragments = Vec::new();
    for (grid, batch) in CONFIGS {
        for engine in variants(grid, batch) {
            let out = std::process::Command::new(&exe)
                .env(CHILD_ENV, format!("{grid}:{batch}:{engine}"))
                .stderr(std::process::Stdio::inherit())
                .output()
                .expect("spawn bench child");
            assert!(out.status.success(), "child {grid}:{batch}:{engine} failed");
            let json = String::from_utf8(out.stdout).expect("child json");
            fragments.push(benchmarks_fragment(&json).to_owned());
        }
    }
    let merged = format!(
        "{{\"suite\":\"infer_plan\",\"benchmarks\":[{}]}}",
        fragments.join(",")
    );

    for (grid, batch) in CONFIGS {
        let tape = median_of(
            &merged,
            &format!("infer/tape/grid{grid}/batch{batch}/forward"),
        );
        let plan = median_of(
            &merged,
            &format!("infer/plan/grid{grid}/batch{batch}/forward"),
        );
        let rss_t = peak_rss_of(
            &merged,
            &format!("infer/tape/grid{grid}/batch{batch}/forward"),
        );
        let rss_p = peak_rss_of(
            &merged,
            &format!("infer/plan/grid{grid}/batch{batch}/forward"),
        );
        if let (Some(t), Some(p)) = (tape, plan) {
            let rss = match (rss_t, rss_p) {
                (Some(t), Some(p)) => format!(
                    "peak rss {:.1} -> {:.1} MiB",
                    t as f64 / (1024.0 * 1024.0),
                    p as f64 / (1024.0 * 1024.0)
                ),
                _ => "peak rss n/a".to_owned(),
            };
            println!(
                "grid {grid} batch {batch}  tape {:>12.1} ns  plan {:>12.1} ns  speedup {:.2}x  {rss}",
                t,
                p,
                t / p
            );
            let par = median_of(
                &merged,
                &format!("infer/plan-par/grid{grid}/batch{batch}/forward"),
            );
            if let Some(pp) = par {
                println!(
                    "grid {grid} batch {batch}  plan {:>12.1} ns  plan-par({PAR_WORKERS}w) {:>12.1} ns  scheduler speedup {:.2}x",
                    p,
                    pp,
                    p / pp
                );
            }
            for q in ["plan-int8", "plan-f16"] {
                let name = format!("infer/{q}/grid{grid}/batch{batch}/forward");
                if let Some(qn) = median_of(&merged, &name) {
                    let rss_q = peak_rss_of(&merged, &name)
                        .map(|r| format!("peak rss {:.1} MiB", r as f64 / (1024.0 * 1024.0)))
                        .unwrap_or_else(|| "peak rss n/a".to_owned());
                    println!(
                        "grid {grid} batch {batch}  plan {:>12.1} ns  {q} {:>12.1} ns  speedup {:.2}x  {rss_q}",
                        p,
                        qn,
                        p / qn
                    );
                }
            }
        }
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/infer_plan.json");
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(out, merged).expect("write infer_plan.json");
}
