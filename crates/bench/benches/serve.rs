//! Benchmarks of the serve subsystem: does micro-batching actually beat
//! sequential single-request inference on the same checkpoint?
//!
//! Two levels are measured and both land in `results/serve_batch.json`:
//!
//! - **forward** — the library-level cost of one `[8, C, H, W]` forward
//!   versus eight `[1, C, H, W]` forwards through the same
//!   `ModelPredictor` (no HTTP, no queueing). This isolates what batching
//!   saves inside the model: per-forward fixed costs (graph construction,
//!   kernel dispatch, the transformer's per-layer setup) amortize over
//!   the batch.
//! - **service** — end-to-end HTTP throughput of a real server on a
//!   loopback socket: one closed-loop client issuing requests one at a
//!   time (each request pays the full batch window alone) versus eight
//!   concurrent clients whose requests the micro-batcher coalesces.
//!
//! Responses are bitwise identical either way (asserted in
//! `mfaplace-core` and `mfaplace-serve` tests); batching only changes
//! throughput, which is exactly what this bench quantifies.

use std::sync::Arc;
use std::time::Instant;

use mfaplace_core::loader::{init_checkpoint, load_predictor, LoadOptions};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_rt::bench::Suite;
use mfaplace_serve::batcher::BatchConfig;
use mfaplace_serve::{client, serve, Metrics, ModelSlot, ServeConfig};
use mfaplace_tensor::Tensor;

const BATCH: usize = 8;
/// Requests per service-level measurement (divisible by BATCH).
const SERVICE_REQUESTS: usize = 48;

struct ForwardNumbers {
    label: String,
    batched_ns: f64,
    sequential_ns: f64,
}

/// Times one batch-8 forward vs eight batch-1 forwards on `spec`'s
/// freshly initialized checkpoint. Returns per-8-request times.
fn bench_forward(suite: &mut Suite, label: &str, spec: &ArchSpec) -> ForwardNumbers {
    let path = std::env::temp_dir()
        .join(format!("serve_bench_{label}.mfaw"))
        .to_string_lossy()
        .into_owned();
    init_checkpoint(spec, 1, &path).expect("init checkpoint");
    let (_, mut predictor) = load_predictor(&path, LoadOptions::default()).expect("load");
    let inputs: Vec<Tensor> = (0..BATCH)
        .map(|i| {
            Tensor::from_fn(vec![6, spec.grid, spec.grid], |j| {
                ((j as f32) * 0.013 + i as f32).sin()
            })
        })
        .collect();

    let batched = suite
        .run(&format!("serve/forward_batch8/{label}"), |b| {
            b.iter(|| std::hint::black_box(predictor.predict_batch_tensors(&inputs)))
        })
        .median_ns;
    let sequential = suite
        .run(&format!("serve/forward_8x1/{label}"), |b| {
            b.iter(|| {
                for x in &inputs {
                    std::hint::black_box(predictor.predict_batch_tensors(std::slice::from_ref(x)));
                }
            })
        })
        .median_ns;
    std::fs::remove_file(&path).ok();
    ForwardNumbers {
        label: label.to_owned(),
        batched_ns: batched,
        sequential_ns: sequential,
    }
}

struct ServiceNumbers {
    label: String,
    sequential_rps: f64,
    concurrent_rps: f64,
    mean_batch_size: f64,
}

/// Measures end-to-end HTTP throughput against a live server: closed-loop
/// single client vs `BATCH` concurrent clients, `SERVICE_REQUESTS` total
/// requests each.
fn bench_service(label: &str, spec: &ArchSpec, batch: BatchConfig) -> ServiceNumbers {
    let path = std::env::temp_dir()
        .join(format!("serve_bench_svc_{label}.mfaw"))
        .to_string_lossy()
        .into_owned();
    init_checkpoint(spec, 1, &path).expect("init checkpoint");
    let metrics = Arc::new(Metrics::new());
    let slot = ModelSlot::load(&path, LoadOptions::default(), metrics.clone()).expect("load");
    let server = serve(
        slot,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let input = Tensor::from_fn(vec![6, spec.grid, spec.grid], |j| (j as f32 * 0.013).sin());

    // Warmup.
    for _ in 0..2 {
        client::predict_features(&addr, &input).expect("warmup");
    }

    // Sequential: one request in flight at a time.
    let start = Instant::now();
    for _ in 0..SERVICE_REQUESTS {
        client::predict_features(&addr, &input).expect("sequential request");
    }
    let sequential_rps = SERVICE_REQUESTS as f64 / start.elapsed().as_secs_f64();

    // Concurrent: BATCH closed-loop clients, the batcher coalesces.
    let per_client = SERVICE_REQUESTS / BATCH;
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..BATCH {
            let addr = addr.clone();
            let input = input.clone();
            s.spawn(move || {
                for _ in 0..per_client {
                    client::predict_features(&addr, &input).expect("concurrent request");
                }
            });
        }
    });
    let concurrent_rps = SERVICE_REQUESTS as f64 / start.elapsed().as_secs_f64();

    // Mean realized batch size over the whole run, from the live metrics.
    let scrape = client::request(&addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    let field = |name: &str| -> f64 {
        scrape
            .lines()
            .find_map(|l| {
                l.strip_prefix(name)
                    .map(|v| v.trim().parse().unwrap_or(0.0))
            })
            .unwrap_or(0.0)
    };
    let mean_batch_size = field("mfaplace_batch_size_sum") / field("mfaplace_batch_size_count");

    server.join();
    std::fs::remove_file(&path).ok();
    eprintln!(
        "bench serve/service/{label}: sequential {sequential_rps:.1} req/s, \
         concurrent({BATCH}) {concurrent_rps:.1} req/s ({:.2}x), mean batch {mean_batch_size:.2}",
        concurrent_rps / sequential_rps
    );
    ServiceNumbers {
        label: label.to_owned(),
        sequential_rps,
        concurrent_rps,
        mean_batch_size,
    }
}

fn main() {
    let mut suite = Suite::new("serve").with_config(2, 7);

    // The paper's model at its serving grid, and a larger-grid variant for
    // scale context. Forward-level: one [8,C,H,W] pass vs eight [1,C,H,W].
    let ours16 = ArchSpec::new(Arch::Ours, 16);
    let ours32 = ArchSpec::new(Arch::Ours, 32);
    let forwards = [
        bench_forward(&mut suite, "ours_g16", &ours16),
        bench_forward(&mut suite, "ours_g32", &ours32),
    ];

    // Service-level: default batching knobs (2 ms window, max batch 8).
    let services = [bench_service("ours_g16", &ours16, BatchConfig::default())];

    print!("{}", suite.table());

    // Custom JSON: the headline ratios next to the raw medians.
    let mut json = String::from("{\"suite\":\"serve_batch\",\"batch\":8,\"forward\":[");
    for (i, f) in forwards.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let ratio = f.sequential_ns / f.batched_ns;
        json.push_str(&format!(
            "{{\"checkpoint\":\"{}\",\"batched8_ns\":{:.1},\"sequential_8x1_ns\":{:.1},\
             \"throughput_ratio\":{ratio:.3}}}",
            f.label, f.batched_ns, f.sequential_ns
        ));
    }
    json.push_str("],\"service\":[");
    for (i, s) in services.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let ratio = s.concurrent_rps / s.sequential_rps;
        json.push_str(&format!(
            "{{\"checkpoint\":\"{}\",\"requests\":{SERVICE_REQUESTS},\
             \"sequential_rps\":{:.1},\"concurrent_rps\":{:.1},\
             \"mean_batch_size\":{:.2},\"throughput_ratio\":{ratio:.3}}}",
            s.label, s.sequential_rps, s.concurrent_rps, s.mean_batch_size
        ));
    }
    json.push_str("]}");

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/serve_batch.json"
    );
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(out, &json).expect("write serve_batch.json");
    eprintln!("wrote {out}");

    let best = forwards
        .iter()
        .map(|f| f.sequential_ns / f.batched_ns)
        .fold(0.0f64, f64::max)
        .max(
            services
                .iter()
                .map(|s| s.concurrent_rps / s.sequential_rps)
                .fold(0.0f64, f64::max),
        );
    assert!(
        best >= 2.0,
        "batched throughput must be >= 2x sequential at batch {BATCH} (best {best:.2}x)"
    );
}
