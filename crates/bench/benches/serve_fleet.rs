//! Benchmark of the multi-tenant model fleet: how does end-to-end HTTP
//! throughput scale as one checkpoint file is served from 1, 2 and 4
//! named slots over a single shared plan cache?
//!
//! Every fleet size serves the same byte-identical checkpoint, so the
//! content-hash keyed cache compiles each input shape exactly once no
//! matter how many slots route to it — the scrape's
//! `mfaplace_plan_cache_entries` gauge stays flat while slots multiply,
//! which is the memory story this bench records next to the throughput.
//! One closed-loop client per slot drives the measurement; on a 1-core
//! host the slot workers time-share, so the point is the flat cache
//! footprint and graceful scaling, not linear speedup (no hard
//! throughput assertion here, unlike `serve.rs`).
//!
//! Results land in `results/serve_fleet.json`.

use std::sync::Arc;
use std::time::Instant;

use mfaplace_core::loader::{init_checkpoint, LoadOptions};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::{
    client, serve_fleet, BatchConfig, Metrics, ModelFleet, ServeConfig, SlotLimits,
};
use mfaplace_tensor::Tensor;

/// Requests per slot per measurement.
const REQUESTS_PER_SLOT: usize = 24;

struct FleetNumbers {
    slots: usize,
    total_rps: f64,
    per_slot_rps: f64,
    plan_cache_entries: u64,
    plan_cache_bytes: u64,
    plan_cache_hits: u64,
}

fn bench_fleet(ckpt: &str, spec: &ArchSpec, slots: usize) -> FleetNumbers {
    let metrics = Arc::new(Metrics::new());
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), BatchConfig::default()));
    let names: Vec<String> = (0..slots).map(|i| format!("slot{i}")).collect();
    for name in &names {
        fleet
            .add_slot(name, ckpt, LoadOptions::default(), SlotLimits::default())
            .expect("add slot");
    }
    let server = serve_fleet(
        fleet,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let input = Tensor::from_fn(vec![6, spec.grid, spec.grid], |j| (j as f32 * 0.013).sin());

    // Warmup compiles the plan once; every later slot resolves it from the
    // shared cache.
    for name in &names {
        client::predict_features_slot(&addr, Some(name), &input).expect("warmup");
    }

    // One closed-loop client per slot, all slots loaded concurrently.
    let start = Instant::now();
    std::thread::scope(|s| {
        for name in &names {
            let addr = addr.clone();
            let input = input.clone();
            s.spawn(move || {
                for _ in 0..REQUESTS_PER_SLOT {
                    client::predict_features_slot(&addr, Some(name), &input)
                        .expect("bench request");
                }
            });
        }
    });
    let total = (slots * REQUESTS_PER_SLOT) as f64;
    let total_rps = total / start.elapsed().as_secs_f64();

    let scrape = client::request(&addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    let gauge = |name: &str| -> u64 {
        scrape
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("missing gauge {name} in scrape:\n{scrape}"))
    };
    let numbers = FleetNumbers {
        slots,
        total_rps,
        per_slot_rps: total_rps / slots as f64,
        plan_cache_entries: gauge("mfaplace_plan_cache_entries "),
        plan_cache_bytes: gauge("mfaplace_plan_cache_bytes "),
        plan_cache_hits: gauge("mfaplace_plan_cache_hits_total "),
    };
    server.join();

    // The sharing contract, enforced: N slots, one file, one compiled plan.
    assert_eq!(
        numbers.plan_cache_entries, 1,
        "{slots} slots serving one file must share one plan entry"
    );
    eprintln!(
        "bench serve_fleet/slots{slots}: {:.1} req/s total ({:.1}/slot), \
         plan cache {} entries / {} bytes / {} hits",
        numbers.total_rps,
        numbers.per_slot_rps,
        numbers.plan_cache_entries,
        numbers.plan_cache_bytes,
        numbers.plan_cache_hits
    );
    numbers
}

fn main() {
    let spec = {
        let mut s = ArchSpec::new(Arch::Ours, 16);
        s.base_channels = 4;
        s
    };
    let ckpt = std::env::temp_dir()
        .join("serve_fleet_bench.mfaw")
        .to_string_lossy()
        .into_owned();
    init_checkpoint(&spec, 1, &ckpt).expect("init checkpoint");

    let runs: Vec<FleetNumbers> = [1usize, 2, 4]
        .iter()
        .map(|&k| bench_fleet(&ckpt, &spec, k))
        .collect();
    std::fs::remove_file(&ckpt).ok();

    let mut json = String::from(
        "{\"suite\":\"serve_fleet\",\"checkpoint\":\"ours_g16\",\
         \"requests_per_slot\":24,\"fleets\":[",
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"slots\":{},\"total_rps\":{:.1},\"per_slot_rps\":{:.1},\
             \"plan_cache_entries\":{},\"plan_cache_bytes\":{},\
             \"plan_cache_hits\":{}}}",
            r.slots,
            r.total_rps,
            r.per_slot_rps,
            r.plan_cache_entries,
            r.plan_cache_bytes,
            r.plan_cache_hits
        ));
    }
    json.push_str("]}");

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/serve_fleet.json"
    );
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(out, &json).expect("write serve_fleet.json");
    eprintln!("wrote {out}");
}
