//! Microbenchmarks of model inference — supports the paper's claim that
//! prediction is fast enough to sit inside the placement loop
//! (`T_macro` < 10 min including congestion prediction).
//!
//! Runs on the self-contained `mfaplace_rt::bench` harness (warmup +
//! median-of-N over `std::time::Instant`) and writes
//! `results/bench_inference.json` alongside the paper-table artifacts.

use mfaplace_autograd::Graph;
use mfaplace_models::{CongestionModel, OursConfig, OursModel, PgnnModel, Pros2Model, UNetModel};
use mfaplace_rt::bench::Suite;
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const GRID: usize = 32;
const C: usize = 4;

fn bench_model<M: CongestionModel>(suite: &mut Suite, label: &str, mut graph: Graph, mut model: M) {
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::randn(vec![1, 6, GRID, GRID], 1.0, &mut rng);
    let mark = graph.mark();
    suite.run(label, |b| {
        b.iter(|| {
            let x = graph.constant(input.clone());
            let y = model.forward(&mut graph, x, false);
            let out = graph.value(y).sum();
            graph.truncate(mark);
            std::hint::black_box(out)
        })
    });
}

fn main() {
    let mut suite = Suite::new("inference").with_config(3, 10);
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = UNetModel::new(&mut g, C, &mut rng);
        bench_model(&mut suite, "inference/unet", g, m);
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = PgnnModel::new(&mut g, C, &mut rng);
        bench_model(&mut suite, "inference/pgnn", g, m);
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = Pros2Model::new(&mut g, C, &mut rng);
        bench_model(&mut suite, "inference/pros2", g, m);
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = OursModel::new(
            &mut g,
            OursConfig {
                grid: GRID,
                base_channels: C,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        bench_model(&mut suite, "inference/ours", g, m);
    }
    print!("{}", suite.table());
    // Anchor on the manifest dir: `cargo bench` sets cwd to the package,
    // but results/ lives at the workspace root.
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/bench_inference.json"
    );
    suite.write_json(out).expect("write bench_inference.json");
}
