//! Criterion microbenchmarks of model inference — supports the paper's
//! claim that prediction is fast enough to sit inside the placement loop
//! (`T_macro` < 10 min including congestion prediction).

use criterion::{criterion_group, criterion_main, Criterion};
use mfaplace_autograd::Graph;
use mfaplace_models::{
    CongestionModel, OursConfig, OursModel, PgnnModel, Pros2Model, UNetModel,
};
use mfaplace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GRID: usize = 32;
const C: usize = 4;

fn bench_model<M: CongestionModel>(
    c: &mut Criterion,
    label: &str,
    mut graph: Graph,
    mut model: M,
) {
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::randn(vec![1, 6, GRID, GRID], 1.0, &mut rng);
    let mark = graph.mark();
    c.bench_function(label, |b| {
        b.iter(|| {
            let x = graph.constant(input.clone());
            let y = model.forward(&mut graph, x, false);
            let out = graph.value(y).sum();
            graph.truncate(mark);
            std::hint::black_box(out)
        })
    });
}

fn inference_benches(c: &mut Criterion) {
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = UNetModel::new(&mut g, C, &mut rng);
        bench_model(c, "inference/unet", g, m);
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = PgnnModel::new(&mut g, C, &mut rng);
        bench_model(c, "inference/pgnn", g, m);
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = Pros2Model::new(&mut g, C, &mut rng);
        bench_model(c, "inference/pros2", g, m);
    }
    {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let m = OursModel::new(
            &mut g,
            OursConfig {
                grid: GRID,
                base_channels: C,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        bench_model(c, "inference/ours", g, m);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = inference_benches
}
criterion_main!(benches);
