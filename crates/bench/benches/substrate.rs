//! Criterion microbenchmarks of the EDA substrates: feature extraction,
//! global routing + congestion analysis, and one global-placement
//! iteration — the per-iteration costs behind the `T_macro` budget.

use criterion::{criterion_group, criterion_main, Criterion};
use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_placer::gp::{GlobalPlacer, GpConfig};
use mfaplace_router::congestion::CongestionAnalysis;
use mfaplace_router::global::GlobalRouter;
use mfaplace_router::RouterConfig;

fn substrate_benches(c: &mut Criterion) {
    let design = DesignPreset::design_116()
        .with_scale(256, 32, 16)
        .generate(1);
    let placement = design.random_placement(2);

    c.bench_function("substrate/feature_extraction_64", |b| {
        b.iter(|| std::hint::black_box(FeatureStack::extract(&design, &placement, 64, 64)))
    });

    let cfg = RouterConfig::default();
    let router = GlobalRouter::new(cfg.clone());
    c.bench_function("substrate/global_route_64", |b| {
        b.iter(|| std::hint::black_box(router.route(&design, &placement)))
    });

    let maze_router = GlobalRouter::new(RouterConfig {
        algorithm: mfaplace_router::RoutingAlgorithm::Maze,
        ..cfg.clone()
    });
    c.bench_function("substrate/maze_route_64", |b| {
        b.iter(|| std::hint::black_box(maze_router.route(&design, &placement)))
    });

    let outcome = router.route(&design, &placement);
    c.bench_function("substrate/congestion_analysis_64", |b| {
        b.iter(|| std::hint::black_box(CongestionAnalysis::from_usage(&outcome.usage, &cfg)))
    });

    c.bench_function("substrate/gp_iteration", |b| {
        b.iter_batched(
            || GlobalPlacer::new(&design, 3),
            |mut gp| {
                gp.run_stage(&GpConfig {
                    iterations: 1,
                    ..GpConfig::default()
                });
                std::hint::black_box(gp.placement().len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = substrate_benches
}
criterion_main!(benches);
