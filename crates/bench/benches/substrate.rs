//! Microbenchmarks of the EDA substrates: feature extraction, global
//! routing + congestion analysis, one global-placement iteration, and the
//! parallel-vs-serial dense kernels — the per-iteration costs behind the
//! `T_macro` budget.
//!
//! Runs on the self-contained `mfaplace_rt::bench` harness (warmup +
//! median-of-N over `std::time::Instant`) and writes
//! `results/bench_substrate.json`. The GEMM/conv pairs at the bottom
//! compare the serial path (`with_threads(1)`) against the pooled path at
//! the host's full thread count; on a multi-core host the parallel median
//! should be a small fraction of the serial one, with bitwise-identical
//! outputs (asserted before timing).

use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_placer::gp::{GlobalPlacer, GpConfig};
use mfaplace_router::congestion::CongestionAnalysis;
use mfaplace_router::global::GlobalRouter;
use mfaplace_router::RouterConfig;
use mfaplace_rt::bench::Suite;
use mfaplace_rt::pool;
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

fn substrate_benches(suite: &mut Suite) {
    let design = DesignPreset::design_116()
        .with_scale(256, 32, 16)
        .generate(1);
    let placement = design.random_placement(2);

    suite.run("substrate/feature_extraction_64", |b| {
        b.iter(|| std::hint::black_box(FeatureStack::extract(&design, &placement, 64, 64)))
    });

    let cfg = RouterConfig::default();
    let router = GlobalRouter::new(cfg.clone());
    suite.run("substrate/global_route_64", |b| {
        b.iter(|| std::hint::black_box(router.route(&design, &placement)))
    });

    let maze_router = GlobalRouter::new(RouterConfig {
        algorithm: mfaplace_router::RoutingAlgorithm::Maze,
        ..cfg.clone()
    });
    suite.run("substrate/maze_route_64", |b| {
        b.iter(|| std::hint::black_box(maze_router.route(&design, &placement)))
    });

    let outcome = router.route(&design, &placement);
    suite.run("substrate/congestion_analysis_64", |b| {
        b.iter(|| std::hint::black_box(CongestionAnalysis::from_usage(&outcome.usage, &cfg)))
    });

    suite.run("substrate/gp_iteration", |b| {
        b.iter(|| {
            let mut gp = GlobalPlacer::new(&design, 3);
            gp.run_stage(&GpConfig {
                iterations: 1,
                ..GpConfig::default()
            });
            std::hint::black_box(gp.placement().len())
        })
    });
}

/// Serial-vs-parallel kernel pairs; the speedup criterion of the runtime
/// migration is read off these entries.
fn kernel_benches(suite: &mut Suite) {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::randn(vec![256, 256], 1.0, &mut rng);
    let b = Tensor::randn(vec![256, 256], 1.0, &mut rng);
    let serial = pool::with_threads(1, || a.matmul2d(&b));
    let parallel = a.matmul2d(&b);
    assert_eq!(serial.data(), parallel.data(), "gemm parallel != serial");

    suite.run("kernels/gemm_256_serial", |bch| {
        bch.iter(|| pool::with_threads(1, || std::hint::black_box(a.matmul2d(&b))))
    });
    suite.run("kernels/gemm_256_parallel", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul2d(&b)))
    });

    let x = Tensor::randn(vec![4, 8, 64, 64], 1.0, &mut rng);
    let serial = pool::with_threads(1, || x.im2col(3, 3, 1, 1));
    let parallel = x.im2col(3, 3, 1, 1);
    assert_eq!(serial.data(), parallel.data(), "im2col parallel != serial");

    suite.run("kernels/im2col_3x3_serial", |bch| {
        bch.iter(|| pool::with_threads(1, || std::hint::black_box(x.im2col(3, 3, 1, 1))))
    });
    suite.run("kernels/im2col_3x3_parallel", |bch| {
        bch.iter(|| std::hint::black_box(x.im2col(3, 3, 1, 1)))
    });
}

fn main() {
    let mut suite = Suite::new("substrate").with_config(2, 10);
    substrate_benches(&mut suite);
    kernel_benches(&mut suite);
    print!("{}", suite.table());
    // Anchor on the manifest dir: `cargo bench` sets cwd to the package,
    // but results/ lives at the workspace root.
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/bench_substrate.json"
    );
    suite.write_json(out).expect("write bench_substrate.json");
}
