//! Microbenchmarks for the dispatched SIMD kernels: packed-panel GEMM,
//! fused attention (token-mixing layout), softmax rows, and the conv
//! bias→affine→ReLU epilogue, each run once per supported kernel
//! backend. Writes `results/simd_kernels.json` and prints the
//! vector-vs-scalar speedup per kernel.
//!
//! Every backend runs in its **own child process**: the backend choice is
//! latched per process at first kernel use, and thread-local pack
//! scratch, code paging, and the RSS watermark would otherwise bleed
//! between backends measured in one process. The parent re-execs itself
//! with `MFA_SIMD_CHILD=<backend>` (and `MFAPLACE_KERNELS=<backend>` so
//! any lazy init agrees) and merges the children's JSON.

use mfaplace_rt::bench::Suite;
use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};
use mfaplace_tensor::simd::{self, Backend};
use mfaplace_tensor::{attention_tm_slices, Tensor};

const CHILD_ENV: &str = "MFA_SIMD_CHILD";

/// GEMM problem: 256x256x256, the ViT-block scale at grid 256.
const GEMM_DIM: usize = 256;
/// Attention problem: 2 heads over 256 tokens, head dim 64.
const ATTN_B: usize = 2;
const ATTN_L: usize = 256;
const ATTN_D: usize = 64;
/// Softmax problem: 4096 rows of 256 logits, softmaxed in place (the
/// output of one pass is a valid input for the next, so no per-iteration
/// copy pollutes the measurement).
const SOFTMAX_ROWS: usize = 4096;
const SOFTMAX_N: usize = 256;
/// Conv-epilogue problem: 1 MiB of f32 activations, bias + affine + relu.
const EPILOGUE_LEN: usize = 1 << 20;

fn randn_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Child mode: benchmark every kernel under one backend and print the
/// suite JSON on stdout (the table goes to stderr).
fn run_child(name: &str) {
    let bk = Backend::parse(name)
        .expect("child backend")
        .expect("child backend is never auto");
    simd::force(Some(bk)).expect("force child backend");

    let mut rng = StdRng::seed_from_u64(42);
    let mut suite = Suite::new("simd_kernels").with_config(2, 7);

    let a = Tensor::from_vec(
        vec![GEMM_DIM, GEMM_DIM],
        randn_vec(&mut rng, GEMM_DIM * GEMM_DIM),
    )
    .expect("gemm a");
    let b = Tensor::from_vec(
        vec![GEMM_DIM, GEMM_DIM],
        randn_vec(&mut rng, GEMM_DIM * GEMM_DIM),
    )
    .expect("gemm b");
    let mut out = vec![0.0f32; GEMM_DIM * GEMM_DIM];
    suite.run(&format!("simd/{name}/gemm/{GEMM_DIM}cubed"), |bch| {
        bch.iter(|| {
            a.matmul2d_into(&b, &mut out);
            std::hint::black_box(out[0])
        })
    });

    let q = randn_vec(&mut rng, ATTN_B * ATTN_L * ATTN_D);
    let k = randn_vec(&mut rng, ATTN_B * ATTN_L * ATTN_D);
    let v = randn_vec(&mut rng, ATTN_B * ATTN_L * ATTN_D);
    let mut attn_out = vec![0.0f32; ATTN_B * ATTN_L * ATTN_D];
    let mut scratch = vec![0.0f32; ATTN_L];
    let scale = 1.0 / (ATTN_D as f32).sqrt();
    suite.run(
        &format!("simd/{name}/attention_tm/b{ATTN_B}l{ATTN_L}d{ATTN_D}"),
        |bch| {
            bch.iter(|| {
                attn_out.fill(0.0);
                attention_tm_slices(
                    &q,
                    &k,
                    &v,
                    ATTN_B,
                    ATTN_L,
                    ATTN_L,
                    ATTN_D,
                    ATTN_D,
                    scale,
                    &mut attn_out,
                    &mut scratch,
                );
                std::hint::black_box(attn_out[0])
            })
        },
    );

    let mut rows = randn_vec(&mut rng, SOFTMAX_ROWS * SOFTMAX_N);
    suite.run(
        &format!("simd/{name}/softmax/{SOFTMAX_ROWS}x{SOFTMAX_N}"),
        |bch| {
            bch.iter(|| {
                for r in rows.chunks_exact_mut(SOFTMAX_N) {
                    simd::softmax_row_with(simd::active(), r);
                }
                std::hint::black_box(rows[0])
            })
        },
    );

    let src = randn_vec(&mut rng, EPILOGUE_LEN);
    let mut dst = vec![0.0f32; EPILOGUE_LEN];
    suite.run(&format!("simd/{name}/conv_epilogue/1m"), |bch| {
        bch.iter(|| {
            simd::conv_epilogue_with(
                simd::active(),
                &src,
                &mut dst,
                Some(0.125),
                Some((1.01, -0.05)),
                true,
            );
            std::hint::black_box(dst[0])
        })
    });

    print!("{}", suite.to_json());
}

/// Extracts the contents of the top-level `"benchmarks":[...]` array.
fn benchmarks_fragment(json: &str) -> &str {
    let start = json.find("\"benchmarks\":[").expect("benchmarks array") + "\"benchmarks\":[".len();
    let end = json.rfind("]}").expect("array close");
    &json[start..end]
}

fn median_of(json: &str, name: &str) -> Option<f64> {
    let entry = json.split("{\"name\":\"").find(|s| s.starts_with(name))?;
    let field = entry.split("\"median_ns\":").nth(1)?;
    field
        .split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    if let Ok(name) = std::env::var(CHILD_ENV) {
        run_child(&name);
        return;
    }

    let backends = simd::supported();
    let exe = std::env::current_exe().expect("current exe");
    let mut fragments = Vec::new();
    for bk in &backends {
        let out = std::process::Command::new(&exe)
            .env(CHILD_ENV, bk.name())
            .env("MFAPLACE_KERNELS", bk.name())
            .stderr(std::process::Stdio::inherit())
            .output()
            .expect("spawn bench child");
        assert!(out.status.success(), "child {} failed", bk.name());
        let json = String::from_utf8(out.stdout).expect("child json");
        fragments.push(benchmarks_fragment(&json).to_owned());
    }
    let merged = format!(
        "{{\"suite\":\"simd_kernels\",\"benchmarks\":[{}]}}",
        fragments.join(",")
    );

    let kernels = [
        format!("gemm/{GEMM_DIM}cubed"),
        format!("attention_tm/b{ATTN_B}l{ATTN_L}d{ATTN_D}"),
        format!("softmax/{SOFTMAX_ROWS}x{SOFTMAX_N}"),
        "conv_epilogue/1m".to_owned(),
    ];
    for kernel in &kernels {
        let scalar = median_of(&merged, &format!("simd/scalar/{kernel}"));
        for bk in &backends {
            if *bk == Backend::Scalar {
                continue;
            }
            let vector = median_of(&merged, &format!("simd/{}/{kernel}", bk.name()));
            if let (Some(s), Some(v)) = (scalar, vector) {
                println!(
                    "{kernel:<28} scalar {s:>12.1} ns  {} {v:>12.1} ns  speedup {:.2}x",
                    bk.name(),
                    s / v
                );
            }
        }
    }

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/simd_kernels.json"
    );
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(out, merged).expect("write simd_kernels.json");
}
