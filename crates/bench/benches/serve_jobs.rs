//! Benchmark of placement-as-a-service: wall-clock for 1 vs 4 concurrent
//! placement jobs sharing one model slot, next to the predictor batch
//! sizes the slot's micro-batcher actually formed.
//!
//! Each job runs the full predictor-in-the-loop flow; its per-round
//! predictions go through the slot batcher, so with 4 jobs in flight the
//! forwards coalesce (mean batch size > 1) and the wall-clock for 4 jobs
//! lands well under 4x the single-job time. That amortization — not raw
//! single-job speed — is what this bench records.
//!
//! Results land in `results/serve_jobs.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mfaplace_core::loader::{init_checkpoint, LoadOptions};
use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::io::write_design;
use mfaplace_jobs::{JobEngine, JobsConfig, JobsExtension};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::{
    client, serve_fleet_with, BatchConfig, Metrics, ModelFleet, ServeConfig, ServerHandle,
    SlotLimits,
};

struct JobsNumbers {
    jobs: usize,
    wall_s: f64,
    batches: u64,
    items: u64,
    mean_batch: f64,
}

fn start_server(ckpt: &str, workers: usize) -> ServerHandle {
    let batch = BatchConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(150),
        queue_bound: 64,
    };
    let metrics = Arc::new(Metrics::new());
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), batch));
    fleet
        .add_slot(
            "default",
            ckpt,
            LoadOptions::default(),
            SlotLimits::default(),
        )
        .expect("add slot");
    let engine = JobEngine::start(
        Arc::clone(&fleet),
        JobsConfig {
            workers,
            queue_bound: 16,
            ..JobsConfig::default()
        },
    );
    engine.register_metrics(&metrics);
    serve_fleet_with(
        fleet,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch,
            ..ServeConfig::default()
        },
        vec![Arc::new(JobsExtension::new(engine))],
    )
    .expect("bind")
}

fn slot_counter(scrape: &str, name: &str) -> u64 {
    let prefix = format!("{name}{{slot=\"default\"}}");
    scrape
        .lines()
        .find_map(|l| {
            l.strip_prefix(prefix.as_str())
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("missing {prefix} in scrape:\n{scrape}"))
}

/// Runs `jobs` identical placement jobs concurrently to completion and
/// returns wall-clock plus the batch counters the phase added.
fn bench_jobs(addr: &str, body: &str, jobs: usize) -> JobsNumbers {
    let scrape = client::request(addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    let batches0 = slot_counter(&scrape, "mfaplace_slot_batches_total");
    let items0 = slot_counter(&scrape, "mfaplace_slot_batched_items_total");

    let start = Instant::now();
    let ids: Vec<String> = (0..jobs)
        .map(|_| {
            let r = client::request(addr, "POST", "/jobs", &[], body.as_bytes()).expect("submit");
            assert_eq!(r.status, 200, "{}", r.text());
            r.text()
                .lines()
                .next()
                .and_then(|l| l.strip_prefix("id "))
                .expect("job id")
                .to_owned()
        })
        .collect();
    std::thread::scope(|s| {
        for id in &ids {
            s.spawn(move || {
                let mut last = String::new();
                let path = format!("/jobs/{id}/events");
                client::stream_lines(addr, "GET", &path, &[], b"", &mut |line| {
                    if !line.is_empty() {
                        last = line.to_owned();
                    }
                    true
                })
                .expect("stream");
                assert_eq!(
                    last, "{\"event\":\"done\",\"state\":\"completed\"}",
                    "job {id} must complete"
                );
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let scrape = client::request(addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    let batches = slot_counter(&scrape, "mfaplace_slot_batches_total") - batches0;
    let items = slot_counter(&scrape, "mfaplace_slot_batched_items_total") - items0;
    let numbers = JobsNumbers {
        jobs,
        wall_s,
        batches,
        items,
        mean_batch: if batches == 0 {
            0.0
        } else {
            items as f64 / batches as f64
        },
    };
    eprintln!(
        "bench serve_jobs/jobs{}: {:.2}s wall, {} forwards for {} predictions \
         (mean batch {:.2})",
        numbers.jobs, numbers.wall_s, numbers.batches, numbers.items, numbers.mean_batch
    );
    numbers
}

fn main() {
    let mut spec = ArchSpec::new(Arch::UNet, 16);
    spec.base_channels = 2;
    let ckpt = std::env::temp_dir()
        .join("serve_jobs_bench.mfaw")
        .to_string_lossy()
        .into_owned();
    init_checkpoint(&spec, 1, &ckpt).expect("init checkpoint");

    let server = start_server(&ckpt, 4);
    let addr = server.addr().to_string();
    let design = DesignPreset::design_116()
        .with_scale(1024, 128, 64)
        .generate(1);
    let body = format!(
        "seed=5 iterations=6\n---DESIGN---\n{}",
        write_design(&design)
    );

    let runs: Vec<JobsNumbers> = [1usize, 4]
        .iter()
        .map(|&n| bench_jobs(&addr, &body, n))
        .collect();
    server.shutdown();
    server.join();
    std::fs::remove_file(&ckpt).ok();

    // With 4 jobs in flight the batcher must have coalesced at least once.
    let four = runs.last().expect("two runs");
    assert!(
        four.items > four.batches,
        "4 concurrent jobs formed no batch > 1 ({} items in {} batches)",
        four.items,
        four.batches
    );

    let mut json = String::from(
        "{\"suite\":\"serve_jobs\",\"checkpoint\":\"unet_g16\",\
         \"flow\":\"ours\",\"iterations\":6,\"runs\":[",
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"jobs\":{},\"wall_s\":{:.3},\"predict_batches\":{},\
             \"predict_items\":{},\"mean_batch\":{:.3}}}",
            r.jobs, r.wall_s, r.batches, r.items, r.mean_batch
        ));
    }
    json.push_str("]}");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/serve_jobs.json");
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(out, &json).expect("write serve_jobs.json");
    eprintln!("wrote {out}");
}
