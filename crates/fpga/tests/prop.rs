//! Randomized tests of the FPGA substrate: generator invariants, feature
//! ranges and grid-map algebra (fixed seeds, in-tree harness).

use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::GridMap;
use mfaplace_rt::check::{run_cases, vec_f32};
use mfaplace_rt::rng::Rng;

#[test]
fn generated_designs_are_well_formed() {
    run_cases(
        "generated_designs_are_well_formed",
        12,
        0xF6_01,
        |_case, rng| {
            let seed = rng.gen_range(0u64..50);
            let preset_idx = rng.gen_range(0usize..10);
            let preset = DesignPreset::contest_suite().swap_remove(preset_idx);
            let d = preset.with_scale(512, 64, 32).generate(seed);
            // All nets reference valid instances with degree >= 2.
            for (_, net) in d.netlist.nets() {
                assert!(net.degree() >= 2);
                for &p in &net.pins {
                    assert!((p.0 as usize) < d.netlist.num_instances());
                }
            }
            // Cascades are homogeneous and within fabric height.
            for c in &d.cascades {
                assert!(c.len() >= 2 && c.len() <= d.arch.rows());
                let kind = d.netlist.instance(c.members[0]).kind;
                for &m in &c.members {
                    assert_eq!(d.netlist.instance(m).kind, kind);
                }
            }
            // Regions lie inside the fabric.
            for r in &d.regions {
                assert!(r.rect.x0 >= 0.0 && r.rect.x1 <= d.arch.width());
                assert!(r.rect.y0 >= 0.0 && r.rect.y1 <= d.arch.height());
                assert!(!r.members.is_empty());
            }
        },
    );
}

#[test]
fn features_bounded_and_finite() {
    run_cases("features_bounded_and_finite", 12, 0xF6_02, |_case, rng| {
        let seed = rng.gen_range(0u64..30);
        let grid = rng.gen_range(2usize..5);
        let d = DesignPreset::design_120()
            .with_scale(512, 64, 32)
            .generate(seed);
        let p = d.random_placement(seed ^ 0xF00);
        let side = grid * 8;
        let f = FeatureStack::extract(&d, &p, side, side);
        let t = f.to_tensor();
        assert_eq!(t.shape(), &[6, side, side]);
        for &v in t.data() {
            assert!(v.is_finite());
            assert!((0.0..=1.0 + 1e-5).contains(&v));
        }
    });
}

#[test]
fn feature_rotation_commutes_with_tensor() {
    run_cases(
        "feature_rotation_commutes_with_tensor",
        12,
        0xF6_03,
        |_case, rng| {
            let seed = rng.gen_range(0u64..20);
            let k = rng.gen_range(0usize..4);
            let d = DesignPreset::design_156()
                .with_scale(512, 64, 32)
                .generate(seed);
            let p = d.random_placement(seed);
            let f = FeatureStack::extract(&d, &p, 16, 16);
            // rot90(k) of cell density equals gridmap rot90(k).
            let rotated = f.rot90(k);
            assert_eq!(&rotated.cell_density, &f.cell_density.rot90(k));
            assert_eq!(&rotated.rudy, &f.rudy.rot90(k));
        },
    );
}

#[test]
fn gridmap_rot90_preserves_mass() {
    run_cases("gridmap_rot90_preserves_mass", 24, 0xF6_04, |_case, rng| {
        let data = vec_f32(rng, 12, 0.0, 5.0);
        let k = rng.gen_range(0usize..8);
        let m = GridMap::from_vec(4, 3, data);
        let r = m.rot90(k);
        let sum_before: f32 = m.data().iter().sum();
        let sum_after: f32 = r.data().iter().sum();
        assert!((sum_before - sum_after).abs() < 1e-4);
        assert_eq!(m.data().len(), r.data().len());
    });
}

#[test]
fn gridmap_add_rect_adds_exact_mass() {
    run_cases(
        "gridmap_add_rect_adds_exact_mass",
        32,
        0xF6_05,
        |_case, rng| {
            let x0 = rng.gen_range(0usize..8);
            let y0 = rng.gen_range(0usize..8);
            let w = rng.gen_range(0usize..10);
            let h = rng.gen_range(0usize..10);
            let mut m = GridMap::new(8, 8);
            m.add_rect(x0, y0, x0 + w, y0 + h, 1.5);
            let covered =
                (x0.min(8)..(x0 + w).min(8)).count() * (y0.min(8)..(y0 + h).min(8)).count();
            let total: f32 = m.data().iter().sum();
            assert!((total - covered as f32 * 1.5).abs() < 1e-4);
        },
    );
}

#[test]
fn hpwl_translation_invariant() {
    run_cases("hpwl_translation_invariant", 12, 0xF6_06, |_case, rng| {
        let seed = rng.gen_range(0u64..30);
        let dx = rng.gen_range(-3.0f32..3.0);
        let dy = rng.gen_range(-3.0f32..3.0);
        let d = DesignPreset::design_197()
            .with_scale(512, 64, 32)
            .generate(seed);
        let p = d.random_placement(seed);
        let mut shifted = p.clone();
        for i in 0..shifted.len() {
            let (x, y) = shifted.pos(i);
            shifted.set_pos(i, x + dx, y + dy);
        }
        let a = p.hpwl(&d.netlist);
        let b = shifted.hpwl(&d.netlist);
        assert!((a - b).abs() < 1e-2 * (1.0 + a), "{a} vs {b}");
    });
}

#[test]
fn io_round_trip_any_preset() {
    run_cases("io_round_trip_any_preset", 8, 0xF6_07, |_case, rng| {
        use mfaplace_fpga::io;
        let seed = rng.gen_range(0u64..40);
        let preset_idx = rng.gen_range(0usize..10);
        let preset = DesignPreset::contest_suite().swap_remove(preset_idx);
        let d = preset.with_scale(512, 64, 32).generate(seed);
        let text = io::write_design(&d);
        let back = io::read_design(&text).expect("round trip parse");
        assert_eq!(back.netlist.num_instances(), d.netlist.num_instances());
        assert_eq!(back.netlist.num_nets(), d.netlist.num_nets());
        assert_eq!(&back.cascades, &d.cascades);
        assert_eq!(&back.io_anchors, &d.io_anchors);
        assert_eq!(&back.arch, &d.arch);
        // Second serialization is byte-identical (canonical form).
        assert_eq!(io::write_design(&back), text);
    });
}

#[test]
fn placement_io_round_trip() {
    run_cases("placement_io_round_trip", 8, 0xF6_08, |_case, rng| {
        use mfaplace_fpga::io;
        let seed = rng.gen_range(0u64..40);
        let d = DesignPreset::design_136()
            .with_scale(512, 64, 32)
            .generate(seed);
        let p = d.random_placement(seed ^ 0x9E);
        let text = io::write_placement(&p);
        let back = io::read_placement(&text).expect("placement parse");
        assert_eq!(back.len(), p.len());
        for i in 0..p.len() {
            assert_eq!(back.pos(i), p.pos(i));
        }
    });
}
