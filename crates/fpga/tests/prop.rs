//! Property-based tests of the FPGA substrate: generator invariants,
//! feature ranges and grid-map algebra.

use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::GridMap;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_designs_are_well_formed(seed in 0u64..50, preset_idx in 0usize..10) {
        let preset = DesignPreset::contest_suite().swap_remove(preset_idx);
        let d = preset.with_scale(512, 64, 32).generate(seed);
        // All nets reference valid instances with degree >= 2.
        for (_, net) in d.netlist.nets() {
            prop_assert!(net.degree() >= 2);
            for &p in &net.pins {
                prop_assert!((p.0 as usize) < d.netlist.num_instances());
            }
        }
        // Cascades are homogeneous and within fabric height.
        for c in &d.cascades {
            prop_assert!(c.len() >= 2 && c.len() <= d.arch.rows());
            let kind = d.netlist.instance(c.members[0]).kind;
            for &m in &c.members {
                prop_assert_eq!(d.netlist.instance(m).kind, kind);
            }
        }
        // Regions lie inside the fabric.
        for r in &d.regions {
            prop_assert!(r.rect.x0 >= 0.0 && r.rect.x1 <= d.arch.width());
            prop_assert!(r.rect.y0 >= 0.0 && r.rect.y1 <= d.arch.height());
            prop_assert!(!r.members.is_empty());
        }
    }

    #[test]
    fn features_bounded_and_finite(seed in 0u64..30, grid in 2usize..5) {
        let d = DesignPreset::design_120().with_scale(512, 64, 32).generate(seed);
        let p = d.random_placement(seed ^ 0xF00);
        let side = grid * 8;
        let f = FeatureStack::extract(&d, &p, side, side);
        let t = f.to_tensor();
        prop_assert_eq!(t.shape(), &[6, side, side]);
        for &v in t.data() {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0 + 1e-5).contains(&v));
        }
    }

    #[test]
    fn feature_rotation_commutes_with_tensor(seed in 0u64..20, k in 0usize..4) {
        let d = DesignPreset::design_156().with_scale(512, 64, 32).generate(seed);
        let p = d.random_placement(seed);
        let f = FeatureStack::extract(&d, &p, 16, 16);
        // rot90(k) of cell density equals gridmap rot90(k).
        let rotated = f.rot90(k);
        prop_assert_eq!(&rotated.cell_density, &f.cell_density.rot90(k));
        prop_assert_eq!(&rotated.rudy, &f.rudy.rot90(k));
    }

    #[test]
    fn gridmap_rot90_preserves_mass(data in proptest::collection::vec(0.0f32..5.0, 12), k in 0usize..8) {
        let m = GridMap::from_vec(4, 3, data);
        let r = m.rot90(k);
        let sum_before: f32 = m.data().iter().sum();
        let sum_after: f32 = r.data().iter().sum();
        prop_assert!((sum_before - sum_after).abs() < 1e-4);
        prop_assert_eq!(m.data().len(), r.data().len());
    }

    #[test]
    fn gridmap_add_rect_adds_exact_mass(x0 in 0usize..8, y0 in 0usize..8, w in 0usize..10, h in 0usize..10) {
        let mut m = GridMap::new(8, 8);
        m.add_rect(x0, y0, x0 + w, y0 + h, 1.5);
        let covered = (x0.min(8)..(x0 + w).min(8)).count() * (y0.min(8)..(y0 + h).min(8)).count();
        let total: f32 = m.data().iter().sum();
        prop_assert!((total - covered as f32 * 1.5).abs() < 1e-4);
    }

    #[test]
    fn hpwl_translation_invariant(seed in 0u64..30, dx in -3.0f32..3.0, dy in -3.0f32..3.0) {
        let d = DesignPreset::design_197().with_scale(512, 64, 32).generate(seed);
        let p = d.random_placement(seed);
        let mut shifted = p.clone();
        for i in 0..shifted.len() {
            let (x, y) = shifted.pos(i);
            shifted.set_pos(i, x + dx, y + dy);
        }
        let a = p.hpwl(&d.netlist);
        let b = shifted.hpwl(&d.netlist);
        prop_assert!((a - b).abs() < 1e-2 * (1.0 + a), "{a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn io_round_trip_any_preset(seed in 0u64..40, preset_idx in 0usize..10) {
        use mfaplace_fpga::io;
        let preset = DesignPreset::contest_suite().swap_remove(preset_idx);
        let d = preset.with_scale(512, 64, 32).generate(seed);
        let text = io::write_design(&d);
        let back = io::read_design(&text).expect("round trip parse");
        prop_assert_eq!(back.netlist.num_instances(), d.netlist.num_instances());
        prop_assert_eq!(back.netlist.num_nets(), d.netlist.num_nets());
        prop_assert_eq!(&back.cascades, &d.cascades);
        prop_assert_eq!(&back.io_anchors, &d.io_anchors);
        prop_assert_eq!(&back.arch, &d.arch);
        // Second serialization is byte-identical (canonical form).
        prop_assert_eq!(io::write_design(&back), text);
    }

    #[test]
    fn placement_io_round_trip(seed in 0u64..40) {
        use mfaplace_fpga::io;
        let d = DesignPreset::design_136().with_scale(512, 64, 32).generate(seed);
        let p = d.random_placement(seed ^ 0x9E);
        let text = io::write_placement(&p);
        let back = io::read_placement(&text).expect("placement parse");
        prop_assert_eq!(back.len(), p.len());
        for i in 0..p.len() {
            prop_assert_eq!(back.pos(i), p.pos(i));
        }
    }
}
