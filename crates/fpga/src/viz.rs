//! PPM visualization of placements and grid maps (for eyeballing flows and
//! producing the figure artifacts).

use crate::arch::SiteKind;
use crate::design::Design;
use crate::gridmap::GridMap;
use crate::placement::Placement;

/// An RGB raster image with PPM (P3) serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 3]>,
}

impl Image {
    /// Creates a white image.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![[255, 255, 255]; width * height],
        }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sets a pixel (no-op out of bounds).
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Serializes to ASCII PPM (P3). Row 0 of the image is the *top* row.
    pub fn to_ppm(&self) -> String {
        let mut out = format!("P3\n{} {}\n255\n", self.width, self.height);
        for row in self.pixels.chunks(self.width) {
            for p in row {
                out.push_str(&format!("{} {} {} ", p[0], p[1], p[2]));
            }
            out.push('\n');
        }
        out
    }
}

/// Color of each site kind in placement renders.
pub fn site_color(kind: SiteKind) -> [u8; 3] {
    match kind {
        SiteKind::Clb => [70, 130, 180],  // steel blue
        SiteKind::Dsp => [205, 92, 92],   // indian red
        SiteKind::Bram => [60, 179, 113], // medium sea green
        SiteKind::Uram => [186, 85, 211], // medium orchid
    }
}

/// Renders a placement: fabric columns as faint stripes, instances as
/// colored dots (`pixels_per_unit` controls the resolution).
pub fn render_placement(design: &Design, placement: &Placement, pixels_per_unit: usize) -> Image {
    let s = pixels_per_unit.max(1);
    let w = design.arch.columns() * s;
    let h = design.arch.rows() * s;
    let mut img = Image::new(w, h);
    // faint column stripes for non-CLB columns
    for x in 0..design.arch.columns() {
        let kind = design.arch.column_kind(x);
        if kind == SiteKind::Clb {
            continue;
        }
        let [r, g, b] = site_color(kind);
        let tint = [r / 4 + 191, g / 4 + 191, b / 4 + 191];
        for py in 0..h {
            for px in x * s..(x + 1) * s {
                img.set(px, py, tint);
            }
        }
    }
    // instances
    for (id, inst) in design.netlist.instances() {
        let (x, y) = placement.pos(id.0 as usize);
        let px = ((x * s as f32) as usize).min(w.saturating_sub(1));
        // image row 0 is the top: flip y
        let py_f = design.arch.height() - y - 1.0;
        let py = ((py_f.max(0.0) * s as f32) as usize).min(h.saturating_sub(1));
        img.set(px, py, site_color(inst.kind.site_kind()));
    }
    img
}

/// Renders a grid map as a white-to-dark-orange heat map (value range
/// `[0, max]`, row y=0 at the bottom like the congestion grids).
pub fn render_heatmap(map: &GridMap, max: f32) -> Image {
    let mut img = Image::new(map.width(), map.height());
    let denom = max.max(1e-6);
    for y in 0..map.height() {
        for x in 0..map.width() {
            let v = (map.get(x, y) / denom).clamp(0.0, 1.0);
            let rgb = [
                255,
                (255.0 * (1.0 - 0.65 * v)) as u8,
                (235.0 * (1.0 - v)) as u8,
            ];
            img.set(x, map.height() - 1 - y, rgb);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPreset;

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(3, 2);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with("P3\n3 2\n255\n"));
        // 6 pixels x 3 numbers
        let nums: Vec<&str> = ppm.split_whitespace().skip(4).collect();
        assert_eq!(nums.len(), 18);
    }

    #[test]
    fn placement_render_marks_instances() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let img = render_placement(&d, &p, 2);
        assert_eq!(img.width(), d.arch.columns() * 2);
        // at least one non-white pixel
        let colored = (0..img.height())
            .flat_map(|y| (0..img.width()).map(move |x| (x, y)))
            .filter(|&(x, y)| img.get(x, y) != [255, 255, 255])
            .count();
        assert!(colored > 100, "expected instance dots, got {colored}");
    }

    #[test]
    fn heatmap_scales_with_value() {
        let mut m = GridMap::new(2, 1);
        m.set(0, 0, 0.0);
        m.set(1, 0, 7.0);
        let img = render_heatmap(&m, 7.0);
        let cold = img.get(0, 0);
        let hot = img.get(1, 0);
        assert!(hot[2] < cold[2], "hot pixel should lose blue");
        assert_eq!(cold, [255, 255, 235]);
    }
}
