//! FPGA substrate for the `mfaplace` reproduction.
//!
//! Models a 16nm-UltraScale+-like columnar FPGA fabric ([`arch::FpgaArch`]),
//! heterogeneous netlists with macros ([`netlist::Netlist`]), the MLCAD 2023
//! contest's cascade-shape and region constraints ([`constraint`]), a seeded
//! synthetic benchmark generator with presets matching the ten most-congested
//! contest designs ([`design`]), continuous placements ([`placement`]), and
//! the six grid-based input features of the congestion-prediction model
//! ([`features`]).
//!
//! The real contest designs and the XCVU3P device are proprietary; the
//! generator reproduces their *statistical structure* (clustered Rent-like
//! connectivity, macro-heavy columns, cascaded DSP/BRAM chains, region
//! hotspots) at a configurable scale — see `DESIGN.md` for the substitution
//! rationale.
//!
//! # Example
//!
//! ```
//! use mfaplace_fpga::design::DesignPreset;
//! use mfaplace_fpga::features::FeatureStack;
//!
//! let design = DesignPreset::design_116().with_scale(256, 64, 32).generate(1);
//! let placement = design.random_placement(7);
//! let features = FeatureStack::extract(&design, &placement, 32, 32);
//! assert_eq!(features.to_tensor().shape(), &[6, 32, 32]);
//! ```

pub mod arch;
pub mod constraint;
pub mod design;
pub mod features;
pub mod gridmap;
pub mod io;
pub mod netlist;
pub mod placement;
pub mod viz;

pub use arch::{FpgaArch, SiteKind};
pub use design::{Design, DesignPreset};
pub use gridmap::GridMap;
pub use netlist::{InstId, InstKind, Instance, Net, NetId, Netlist};
pub use placement::Placement;
