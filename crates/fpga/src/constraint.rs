//! Cascade-shape and region constraints of the MLCAD 2023 contest.

use crate::arch::SiteKind;
use crate::netlist::InstId;

/// Axis-aligned rectangle in fabric coordinates (half-open on both axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f32,
    /// Bottom edge.
    pub y0: f32,
    /// Right edge (exclusive).
    pub x1: f32,
    /// Top edge (exclusive).
    pub y1: f32,
}

impl Rect {
    /// Creates a rectangle; coordinates are normalized so `x0 <= x1`,
    /// `y0 <= y1`.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Rectangle width.
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Rectangle height.
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// Rectangle area.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Whether the point is inside.
    pub fn contains(&self, x: f32, y: f32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Center of the rectangle.
    pub fn center(&self) -> (f32, f32) {
        ((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Squared distance from a point to the rectangle (0 inside).
    pub fn distance_sq(&self, x: f32, y: f32) -> f32 {
        let dx = (self.x0 - x).max(0.0).max(x - self.x1);
        let dy = (self.y0 - y).max(0.0).max(y - self.y1);
        dx * dx + dy * dy
    }
}

/// A cascade shape constraint: the member macros must occupy consecutive
/// sites of one column, bottom-to-top in the given order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeShape {
    /// Ordered member macros (first is placed lowest).
    pub members: Vec<InstId>,
    /// The site column kind the cascade occupies.
    pub site_kind: SiteKind,
}

impl CascadeShape {
    /// Number of consecutive sites required.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cascade is empty (never true for generated designs).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A region constraint: the member instances must be placed inside `rect`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionConstraint {
    /// The allowed placement region.
    pub rect: Rect,
    /// Instances bound to the region.
    pub members: Vec<InstId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(2.0, 3.0, 6.0, 5.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        assert!(r.contains(2.0, 3.0));
        assert!(!r.contains(6.0, 3.0));
        assert_eq!(r.center(), (4.0, 4.0));
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(6.0, 5.0, 2.0, 3.0);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (2.0, 3.0, 6.0, 5.0));
    }

    #[test]
    fn distance_sq_zero_inside_positive_outside() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.distance_sq(1.0, 1.0), 0.0);
        assert!(r.distance_sq(4.0, 1.0) > 0.0);
        assert_eq!(r.distance_sq(4.0, 1.0), 4.0);
    }

    #[test]
    fn cascade_len() {
        let c = CascadeShape {
            members: vec![InstId(0), InstId(1), InstId(2)],
            site_kind: SiteKind::Dsp,
        };
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }
}
