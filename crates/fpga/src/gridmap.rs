//! 2-D float maps on the feature/congestion grid, with the rotation
//! augmentation used by the paper's dataset (90/180/270 degrees).

use mfaplace_tensor::Tensor;

/// A `width x height` map of `f32` values in row-major order
/// (`data[y * width + x]`).
#[derive(Debug, Clone, PartialEq)]
pub struct GridMap {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GridMap {
    /// Creates a zero-initialized map.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        GridMap {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a map from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "gridmap data length mismatch");
        GridMap {
            width,
            height,
            data,
        }
    }

    /// Map width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw values (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw values (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "gridmap index oob");
        self.data[y * self.width + x]
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "gridmap index oob");
        self.data[y * self.width + x] = v;
    }

    /// Adds `v` at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "gridmap index oob");
        self.data[y * self.width + x] += v;
    }

    /// Adds `v` to every cell in the half-open cell-index rectangle
    /// `[x0, x1) x [y0, y1)`, clipped to the map.
    pub fn add_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, v: f32) {
        let x1 = x1.min(self.width);
        let y1 = y1.min(self.height);
        for y in y0.min(y1)..y1 {
            for x in x0.min(x1)..x1 {
                self.data[y * self.width + x] += v;
            }
        }
    }

    /// Maximum value (0 for an all-zero map).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(0.0, f32::max)
    }

    /// Divides all values by the maximum so the map lies in `[0, 1]`
    /// (no-op for an all-zero map).
    pub fn normalize_max(&mut self) {
        let m = self.max();
        if m > 0.0 {
            for v in &mut self.data {
                *v /= m;
            }
        }
    }

    /// Rotates the map 90 degrees counter-clockwise `k` times.
    pub fn rot90(&self, k: usize) -> GridMap {
        let mut out = self.clone();
        for _ in 0..(k % 4) {
            let (w, h) = (out.width, out.height);
            let mut rotated = GridMap::new(h, w);
            for y in 0..h {
                for x in 0..w {
                    // (x, y) -> (y, w-1-x)
                    rotated.set(y, w - 1 - x, out.get(x, y));
                }
            }
            out = rotated;
        }
        out
    }

    /// Converts the map into a `[1, H, W]` tensor (row y becomes tensor
    /// row y).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(vec![1, self.height, self.width], self.data.clone())
            .expect("gridmap tensor")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_rect_clips() {
        let mut m = GridMap::new(4, 4);
        m.add_rect(2, 2, 10, 10, 1.0);
        assert_eq!(m.data().iter().sum::<f32>(), 4.0);
        assert_eq!(m.get(3, 3), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn normalize_bounds_values() {
        let mut m = GridMap::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.normalize_max();
        assert_eq!(m.max(), 1.0);
        assert_eq!(m.get(0, 0), 0.25);
    }

    #[test]
    fn rot90_four_times_is_identity() {
        let m = GridMap::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.rot90(4), m);
        let r = m.rot90(1);
        assert_eq!(r.width(), 2);
        assert_eq!(r.height(), 3);
        // (x=2, y=0) -> (x=0, y=0)
        assert_eq!(r.get(0, 0), m.get(2, 0));
    }

    #[test]
    fn rot90_composition() {
        let m = GridMap::from_vec(3, 3, (0..9).map(|i| i as f32).collect());
        assert_eq!(m.rot90(1).rot90(1), m.rot90(2));
        assert_eq!(m.rot90(3).rot90(1), m);
    }
}
