//! Text interchange format for designs and placements (bookshelf-style).
//!
//! Real EDA flows exchange netlists and placements through text formats
//! (Bookshelf `.nodes/.nets/.pl`, the MLCAD contest's interface files).
//! This module provides an equivalent single-file format so designs
//! generated here can be inspected, diffed and re-loaded:
//!
//! ```text
//! mfaplace-netlist v1
//! arch <columns> <rows> <clb_luts> <clb_ffs>
//! colkind <x> <DSP|BRAM|URAM>          # non-CLB columns only
//! inst <kind> <movable>                # one per line, id = line order
//! net <id> <id> ...
//! cascade <DSP|BRAM|URAM> <id> ...
//! region <x0> <y0> <x1> <y1> <id> ...
//! anchor <id> <x> <y>
//! name <design name>
//! stats <luts> <ffs> <dsps> <brams>
//! ```
//!
//! Placements use `placement v1` followed by `pl <id> <x> <y>` lines.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::arch::{ClbCapacity, FpgaArch, SiteKind};
use crate::constraint::{CascadeShape, Rect, RegionConstraint};
use crate::design::Design;
use crate::netlist::{InstId, InstKind, Netlist};
use crate::placement::Placement;

/// Error parsing the interchange format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDesignError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDesignError {}

fn err(line: usize, message: impl Into<String>) -> ParseDesignError {
    ParseDesignError {
        line,
        message: message.into(),
    }
}

fn kind_name(kind: InstKind) -> &'static str {
    match kind {
        InstKind::Lut => "LUT",
        InstKind::Ff => "FF",
        InstKind::Dsp => "DSP",
        InstKind::Bram => "BRAM",
        InstKind::Uram => "URAM",
    }
}

fn parse_kind(s: &str, line: usize) -> Result<InstKind, ParseDesignError> {
    match s {
        "LUT" => Ok(InstKind::Lut),
        "FF" => Ok(InstKind::Ff),
        "DSP" => Ok(InstKind::Dsp),
        "BRAM" => Ok(InstKind::Bram),
        "URAM" => Ok(InstKind::Uram),
        _ => Err(err(line, format!("unknown instance kind {s:?}"))),
    }
}

fn parse_site_kind(s: &str, line: usize) -> Result<SiteKind, ParseDesignError> {
    match s {
        "CLB" => Ok(SiteKind::Clb),
        "DSP" => Ok(SiteKind::Dsp),
        "BRAM" => Ok(SiteKind::Bram),
        "URAM" => Ok(SiteKind::Uram),
        _ => Err(err(line, format!("unknown site kind {s:?}"))),
    }
}

fn parse_num<T: FromStr>(s: &str, line: usize, what: &str) -> Result<T, ParseDesignError> {
    s.parse()
        .map_err(|_| err(line, format!("invalid {what}: {s:?}")))
}

/// Serializes a design to the interchange text format.
pub fn write_design(design: &Design) -> String {
    let mut out = String::new();
    out.push_str("mfaplace-netlist v1\n");
    let cap = design.arch.clb_capacity();
    out.push_str(&format!(
        "arch {} {} {} {}\n",
        design.arch.columns(),
        design.arch.rows(),
        cap.luts,
        cap.ffs
    ));
    for x in 0..design.arch.columns() {
        let kind = design.arch.column_kind(x);
        if kind != SiteKind::Clb {
            out.push_str(&format!("colkind {x} {kind}\n"));
        }
    }
    for (_, inst) in design.netlist.instances() {
        out.push_str(&format!(
            "inst {} {}\n",
            kind_name(inst.kind),
            u8::from(inst.movable)
        ));
    }
    for (_, net) in design.netlist.nets() {
        out.push_str("net");
        for &p in &net.pins {
            out.push_str(&format!(" {}", p.0));
        }
        out.push('\n');
    }
    for c in &design.cascades {
        out.push_str(&format!("cascade {}", c.site_kind));
        for &m in &c.members {
            out.push_str(&format!(" {}", m.0));
        }
        out.push('\n');
    }
    for r in &design.regions {
        out.push_str(&format!(
            "region {} {} {} {}",
            r.rect.x0, r.rect.y0, r.rect.x1, r.rect.y1
        ));
        for &m in &r.members {
            out.push_str(&format!(" {}", m.0));
        }
        out.push('\n');
    }
    for &(id, x, y) in &design.io_anchors {
        out.push_str(&format!("anchor {} {x} {y}\n", id.0));
    }
    out.push_str(&format!("name {}\n", design.name));
    let (l, f, d, b) = design.paper_stats;
    out.push_str(&format!("stats {l} {f} {d} {b}\n"));
    out
}

/// Parses a design from the interchange text format.
///
/// # Errors
///
/// Returns [`ParseDesignError`] with a line number on any malformed input.
pub fn read_design(text: &str) -> Result<Design, ParseDesignError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty file"))?;
    if header.trim() != "mfaplace-netlist v1" {
        return Err(err(1, "missing `mfaplace-netlist v1` header"));
    }

    let mut arch: Option<(usize, usize, ClbCapacity)> = None;
    let mut col_overrides: Vec<(usize, SiteKind)> = Vec::new();
    let mut netlist = Netlist::new();
    let mut cascades = Vec::new();
    let mut regions = Vec::new();
    let mut io_anchors = Vec::new();
    let mut name = String::from("unnamed");
    let mut paper_stats = (0usize, 0usize, 0usize, 0usize);

    for (i, raw) in lines {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match tag {
            "arch" => {
                if rest.len() != 4 {
                    return Err(err(ln, "arch needs `columns rows clb_luts clb_ffs`"));
                }
                arch = Some((
                    parse_num(rest[0], ln, "columns")?,
                    parse_num(rest[1], ln, "rows")?,
                    ClbCapacity {
                        luts: parse_num(rest[2], ln, "clb luts")?,
                        ffs: parse_num(rest[3], ln, "clb ffs")?,
                    },
                ));
            }
            "colkind" => {
                if rest.len() != 2 {
                    return Err(err(ln, "colkind needs `x kind`"));
                }
                col_overrides.push((
                    parse_num(rest[0], ln, "column index")?,
                    parse_site_kind(rest[1], ln)?,
                ));
            }
            "inst" => {
                if rest.len() != 2 {
                    return Err(err(ln, "inst needs `kind movable`"));
                }
                let kind = parse_kind(rest[0], ln)?;
                let movable: u8 = parse_num(rest[1], ln, "movable flag")?;
                netlist.add_instance(kind, movable != 0);
            }
            "net" => {
                if rest.len() < 2 {
                    return Err(err(ln, "net needs at least two pins"));
                }
                let mut pins = Vec::with_capacity(rest.len());
                for p in &rest {
                    let id: u32 = parse_num(p, ln, "pin id")?;
                    if id as usize >= netlist.num_instances() {
                        return Err(err(ln, format!("pin id {id} out of range")));
                    }
                    pins.push(InstId(id));
                }
                netlist.add_net(pins);
            }
            "cascade" => {
                if rest.len() < 3 {
                    return Err(err(ln, "cascade needs `kind id id...`"));
                }
                let site_kind = parse_site_kind(rest[0], ln)?;
                let members = rest[1..]
                    .iter()
                    .map(|p| parse_num::<u32>(p, ln, "cascade member").map(InstId))
                    .collect::<Result<Vec<_>, _>>()?;
                cascades.push(CascadeShape { members, site_kind });
            }
            "region" => {
                if rest.len() < 5 {
                    return Err(err(ln, "region needs `x0 y0 x1 y1 id...`"));
                }
                let rect = Rect::new(
                    parse_num(rest[0], ln, "x0")?,
                    parse_num(rest[1], ln, "y0")?,
                    parse_num(rest[2], ln, "x1")?,
                    parse_num(rest[3], ln, "y1")?,
                );
                let members = rest[4..]
                    .iter()
                    .map(|p| parse_num::<u32>(p, ln, "region member").map(InstId))
                    .collect::<Result<Vec<_>, _>>()?;
                regions.push(RegionConstraint { rect, members });
            }
            "anchor" => {
                if rest.len() != 3 {
                    return Err(err(ln, "anchor needs `id x y`"));
                }
                io_anchors.push((
                    InstId(parse_num(rest[0], ln, "anchor id")?),
                    parse_num(rest[1], ln, "anchor x")?,
                    parse_num(rest[2], ln, "anchor y")?,
                ));
            }
            "name" => {
                name = rest.join(" ");
            }
            "stats" => {
                if rest.len() != 4 {
                    return Err(err(ln, "stats needs four counts"));
                }
                paper_stats = (
                    parse_num(rest[0], ln, "lut count")?,
                    parse_num(rest[1], ln, "ff count")?,
                    parse_num(rest[2], ln, "dsp count")?,
                    parse_num(rest[3], ln, "bram count")?,
                );
            }
            _ => return Err(err(ln, format!("unknown directive {tag:?}"))),
        }
    }

    let (columns, rows, cap) = arch.ok_or_else(|| err(1, "missing arch line"))?;
    let mut cols = vec![SiteKind::Clb; columns];
    for (x, kind) in col_overrides {
        if x >= columns {
            return Err(err(1, format!("colkind index {x} out of range")));
        }
        cols[x] = kind;
    }
    let arch = FpgaArch::new(cols, rows, cap);
    // The interchange format does not carry cluster assignments.
    let cluster_of = vec![0u32; netlist.num_instances()];
    Ok(Design {
        name,
        arch,
        netlist,
        cascades,
        regions,
        io_anchors,
        paper_stats,
        cluster_of,
    })
}

/// Serializes a placement (only the coordinates).
pub fn write_placement(placement: &Placement) -> String {
    let mut out = String::from("placement v1\n");
    for i in 0..placement.len() {
        let (x, y) = placement.pos(i);
        out.push_str(&format!("pl {i} {x} {y}\n"));
    }
    out
}

/// Parses a placement written by [`write_placement`].
///
/// # Errors
///
/// Returns [`ParseDesignError`] on malformed input.
pub fn read_placement(text: &str) -> Result<Placement, ParseDesignError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty file"))?;
    if header.trim() != "placement v1" {
        return Err(err(1, "missing `placement v1` header"));
    }
    let mut coords: Vec<(usize, f32, f32)> = Vec::new();
    for (i, raw) in lines {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "pl" {
            return Err(err(ln, "expected `pl id x y`"));
        }
        coords.push((
            parse_num(parts[1], ln, "instance id")?,
            parse_num(parts[2], ln, "x")?,
            parse_num(parts[3], ln, "y")?,
        ));
    }
    let n = coords.iter().map(|&(i, _, _)| i + 1).max().unwrap_or(0);
    let mut p = Placement::new(n);
    for (i, x, y) in coords {
        p.set_pos(i, x, y);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPreset;

    #[test]
    fn design_round_trip() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let text = write_design(&d);
        let back = read_design(&text).expect("parse");
        assert_eq!(back.name, d.name);
        assert_eq!(back.netlist.num_instances(), d.netlist.num_instances());
        assert_eq!(back.netlist.num_nets(), d.netlist.num_nets());
        assert_eq!(back.cascades, d.cascades);
        assert_eq!(back.regions.len(), d.regions.len());
        assert_eq!(back.io_anchors, d.io_anchors);
        assert_eq!(back.paper_stats, d.paper_stats);
        assert_eq!(back.arch, d.arch);
        // nets content identical
        for ((_, a), (_, b)) in back.netlist.nets().zip(d.netlist.nets()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn placement_round_trip() {
        let d = DesignPreset::design_120()
            .with_scale(512, 64, 32)
            .generate(2);
        let p = d.random_placement(3);
        let text = write_placement(&p);
        let back = read_placement(&text).expect("parse");
        assert_eq!(back.len(), p.len());
        for i in 0..p.len() {
            assert_eq!(back.pos(i), p.pos(i));
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_design("bogus\n").is_err());
        assert!(read_placement("bogus\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_pin() {
        let text = "mfaplace-netlist v1\narch 4 4 8 16\ninst LUT 1\ninst LUT 1\nnet 0 5\n";
        let e = read_design(text).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        assert_eq!(e.line, 5);
    }

    #[test]
    fn rejects_unknown_directive() {
        let text = "mfaplace-netlist v1\narch 4 4 8 16\nfrobnicate 1 2\n";
        let e = read_design(text).unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "mfaplace-netlist v1\narch 4 4 8 16\ninst LUT x\n";
        let e = read_design(text).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
