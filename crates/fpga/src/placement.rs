//! Continuous placements and wirelength measures.

use crate::netlist::Netlist;

/// A continuous placement: one `(x, y)` location per instance, in fabric
/// coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Placement {
    xs: Vec<f32>,
    ys: Vec<f32>,
}

impl Placement {
    /// Creates a placement with all instances at the origin.
    pub fn new(num_instances: usize) -> Self {
        Placement {
            xs: vec![0.0; num_instances],
            ys: vec![0.0; num_instances],
        }
    }

    /// Creates a placement from coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_coords(xs: Vec<f32>, ys: Vec<f32>) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate vectors must match");
        Placement { xs, ys }
    }

    /// Number of placed instances.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Location of instance `i`.
    pub fn pos(&self, i: usize) -> (f32, f32) {
        (self.xs[i], self.ys[i])
    }

    /// Sets the location of instance `i`.
    pub fn set_pos(&mut self, i: usize, x: f32, y: f32) {
        self.xs[i] = x;
        self.ys[i] = y;
    }

    /// X coordinates.
    pub fn xs(&self) -> &[f32] {
        &self.xs
    }

    /// Y coordinates.
    pub fn ys(&self) -> &[f32] {
        &self.ys
    }

    /// Mutable X coordinates.
    pub fn xs_mut(&mut self) -> &mut [f32] {
        &mut self.xs
    }

    /// Mutable Y coordinates.
    pub fn ys_mut(&mut self) -> &mut [f32] {
        &mut self.ys
    }

    /// Total half-perimeter wirelength over all nets.
    pub fn hpwl(&self, netlist: &Netlist) -> f64 {
        let mut total = 0.0f64;
        for (_, net) in netlist.nets() {
            let mut min_x = f32::INFINITY;
            let mut max_x = f32::NEG_INFINITY;
            let mut min_y = f32::INFINITY;
            let mut max_y = f32::NEG_INFINITY;
            for &p in &net.pins {
                let (x, y) = self.pos(p.0 as usize);
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            total += f64::from(max_x - min_x) + f64::from(max_y - min_y);
        }
        total
    }

    /// Bounding box of one net as `(x0, y0, x1, y1)`.
    ///
    /// # Panics
    ///
    /// Panics if the net has no pins.
    pub fn net_bbox(&self, net: &crate::netlist::Net) -> (f32, f32, f32, f32) {
        assert!(!net.pins.is_empty(), "net bbox of empty net");
        let mut min_x = f32::INFINITY;
        let mut max_x = f32::NEG_INFINITY;
        let mut min_y = f32::INFINITY;
        let mut max_y = f32::NEG_INFINITY;
        for &p in &net.pins {
            let (x, y) = self.pos(p.0 as usize);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (min_x, min_y, max_x, max_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{InstKind, Netlist};

    #[test]
    fn hpwl_of_two_pin_net() {
        let mut nl = Netlist::new();
        let a = nl.add_instance(InstKind::Lut, true);
        let b = nl.add_instance(InstKind::Lut, true);
        nl.add_net(vec![a, b]);
        let mut p = Placement::new(2);
        p.set_pos(0, 0.0, 0.0);
        p.set_pos(1, 3.0, 4.0);
        assert_eq!(p.hpwl(&nl), 7.0);
    }

    #[test]
    fn bbox_covers_all_pins() {
        let mut nl = Netlist::new();
        let ids: Vec<_> = (0..3)
            .map(|_| nl.add_instance(InstKind::Ff, true))
            .collect();
        let n = nl.add_net(ids);
        let mut p = Placement::new(3);
        p.set_pos(0, 1.0, 5.0);
        p.set_pos(1, 4.0, 2.0);
        p.set_pos(2, 2.0, 3.0);
        let (x0, y0, x1, y1) = p.net_bbox(nl.net(n));
        assert_eq!((x0, y0, x1, y1), (1.0, 2.0, 4.0, 5.0));
    }
}
