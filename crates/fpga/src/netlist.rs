//! Netlist model: heterogeneous instances connected by multi-pin nets.

use crate::arch::SiteKind;

/// Index of an instance in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a net in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// The instance kinds of the MLCAD 2023 architecture. DSP, BRAM and URAM are
/// *macros*; LUT and FF are *cells*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Look-up table (cell).
    Lut,
    /// Flip-flop (cell).
    Ff,
    /// DSP slice (macro).
    Dsp,
    /// Block RAM (macro).
    Bram,
    /// Ultra RAM (macro).
    Uram,
}

impl InstKind {
    /// Whether this kind is treated as a macro by the contest rules.
    pub fn is_macro(self) -> bool {
        matches!(self, InstKind::Dsp | InstKind::Bram | InstKind::Uram)
    }

    /// The site kind this instance must be placed on.
    pub fn site_kind(self) -> SiteKind {
        match self {
            InstKind::Lut | InstKind::Ff => SiteKind::Clb,
            InstKind::Dsp => SiteKind::Dsp,
            InstKind::Bram => SiteKind::Bram,
            InstKind::Uram => SiteKind::Uram,
        }
    }

    /// Nominal placement area (in site units) used by density spreading and
    /// the inflation equations. Macros occupy a full site; cells a fraction
    /// of a CLB.
    pub fn base_area(self) -> f32 {
        match self {
            InstKind::Lut => 1.0 / 8.0,
            InstKind::Ff => 1.0 / 16.0,
            InstKind::Dsp | InstKind::Bram => 1.0,
            InstKind::Uram => 1.0,
        }
    }
}

/// One placeable instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance kind (LUT/FF/DSP/BRAM/URAM).
    pub kind: InstKind,
    /// Whether the placer may move it (IO-like anchors are fixed).
    pub movable: bool,
}

/// One multi-pin net; pins attach at instance centers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// The connected instances (no duplicates).
    pub pins: Vec<InstId>,
}

impl Net {
    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// A heterogeneous netlist: instances plus nets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    instances: Vec<Instance>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds an instance and returns its id.
    pub fn add_instance(&mut self, kind: InstKind, movable: bool) -> InstId {
        self.instances.push(Instance { kind, movable });
        InstId((self.instances.len() - 1) as u32)
    }

    /// Adds a net over the given instances (pins with fewer than two
    /// distinct instances are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any pin references a nonexistent instance or the net has
    /// fewer than 2 pins.
    pub fn add_net(&mut self, pins: Vec<InstId>) -> NetId {
        assert!(pins.len() >= 2, "nets need at least two pins");
        for &p in &pins {
            assert!(
                (p.0 as usize) < self.instances.len(),
                "net references unknown instance"
            );
        }
        self.nets.push(Net { pins });
        NetId((self.nets.len() - 1) as u32)
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The instance with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Iterates over `(InstId, &Instance)`.
    pub fn instances(&self) -> impl Iterator<Item = (InstId, &Instance)> {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId(i as u32), inst))
    }

    /// Iterates over `(NetId, &Net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Counts instances of a kind.
    pub fn count_kind(&self, kind: InstKind) -> usize {
        self.instances.iter().filter(|i| i.kind == kind).count()
    }

    /// Ids of all macro instances.
    pub fn macros(&self) -> Vec<InstId> {
        self.instances()
            .filter_map(|(id, inst)| inst.kind.is_macro().then_some(id))
            .collect()
    }

    /// Total number of pins across all nets.
    pub fn pin_count(&self) -> usize {
        self.nets.iter().map(Net::degree).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_netlist() {
        let mut nl = Netlist::new();
        let a = nl.add_instance(InstKind::Lut, true);
        let b = nl.add_instance(InstKind::Ff, true);
        let c = nl.add_instance(InstKind::Dsp, true);
        let n = nl.add_net(vec![a, b, c]);
        assert_eq!(nl.num_instances(), 3);
        assert_eq!(nl.num_nets(), 1);
        assert_eq!(nl.net(n).degree(), 3);
        assert_eq!(nl.macros(), vec![c]);
        assert_eq!(nl.pin_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two pins")]
    fn rejects_degenerate_net() {
        let mut nl = Netlist::new();
        let a = nl.add_instance(InstKind::Lut, true);
        nl.add_net(vec![a]);
    }

    #[test]
    fn kind_properties() {
        assert!(InstKind::Dsp.is_macro());
        assert!(!InstKind::Lut.is_macro());
        assert_eq!(InstKind::Ff.site_kind(), SiteKind::Clb);
        assert_eq!(InstKind::Uram.site_kind(), SiteKind::Uram);
        assert!(InstKind::Dsp.base_area() > InstKind::Lut.base_area());
    }
}
