//! The six grid-based input features of the congestion-prediction model
//! (Sec. III-B of the paper):
//!
//! 1. **Macro map** — per-grid macro occupancy,
//! 2. **Horizontal net density** — RUDY-style horizontal routing demand,
//! 3. **Vertical net density** — RUDY-style vertical routing demand,
//! 4. **RUDY map** — superposition of the two net densities,
//! 5. **Pin RUDY map** — pin density spread over each net's bounding box,
//! 6. **Cell density map** — placed cell count per grid.
//!
//! Each map is max-normalized to `[0, 1]`; the stack converts to the model
//! input tensor `X in R^{6 x H x W}`.

use mfaplace_tensor::Tensor;

use crate::design::Design;
use crate::gridmap::GridMap;
use crate::placement::Placement;

/// Number of feature channels.
pub const NUM_FEATURES: usize = 6;

/// The six extracted feature maps for one placement snapshot.
#[derive(Debug, Clone)]
pub struct FeatureStack {
    /// Macro occupancy.
    pub macro_map: GridMap,
    /// Horizontal net density.
    pub hnet: GridMap,
    /// Vertical net density.
    pub vnet: GridMap,
    /// RUDY (horizontal + vertical demand).
    pub rudy: GridMap,
    /// Pin RUDY.
    pub pin_rudy: GridMap,
    /// Cell density.
    pub cell_density: GridMap,
}

impl FeatureStack {
    /// Extracts the six features on a `grid_w x grid_h` grid.
    pub fn extract(design: &Design, placement: &Placement, grid_w: usize, grid_h: usize) -> Self {
        let sx = grid_w as f32 / design.arch.width();
        let sy = grid_h as f32 / design.arch.height();
        let cell = |x: f32, y: f32| -> (usize, usize) {
            (
                ((x * sx) as usize).min(grid_w - 1),
                ((y * sy) as usize).min(grid_h - 1),
            )
        };

        let mut macro_map = GridMap::new(grid_w, grid_h);
        let mut cell_density = GridMap::new(grid_w, grid_h);
        for (id, inst) in design.netlist.instances() {
            let (x, y) = placement.pos(id.0 as usize);
            let (gx, gy) = cell(x, y);
            if inst.kind.is_macro() {
                macro_map.add(gx, gy, 1.0);
            } else {
                cell_density.add(gx, gy, 1.0);
            }
        }

        let mut hnet = GridMap::new(grid_w, grid_h);
        let mut vnet = GridMap::new(grid_w, grid_h);
        let mut pin_rudy = GridMap::new(grid_w, grid_h);
        for (_, net) in design.netlist.nets() {
            let (x0, y0, x1, y1) = placement.net_bbox(net);
            let (gx0, gy0) = cell(x0, y0);
            let (gx1, gy1) = cell(x1, y1);
            let (gx1, gy1) = (gx1 + 1, gy1 + 1); // half-open
            let w = (gx1 - gx0) as f32;
            let h = (gy1 - gy0) as f32;
            // RUDY: horizontal demand w/(w*h) = 1/h per cell, vertical 1/w.
            hnet.add_rect(gx0, gy0, gx1, gy1, 1.0 / h);
            vnet.add_rect(gx0, gy0, gx1, gy1, 1.0 / w);
            pin_rudy.add_rect(gx0, gy0, gx1, gy1, net.degree() as f32 / (w * h));
        }
        let mut rudy = GridMap::new(grid_w, grid_h);
        for i in 0..grid_w * grid_h {
            rudy.data_mut()[i] = hnet.data()[i] + vnet.data()[i];
        }

        for m in [
            &mut macro_map,
            &mut hnet,
            &mut vnet,
            &mut rudy,
            &mut pin_rudy,
            &mut cell_density,
        ] {
            m.normalize_max();
        }

        FeatureStack {
            macro_map,
            hnet,
            vnet,
            rudy,
            pin_rudy,
            cell_density,
        }
    }

    /// The maps in channel order.
    pub fn maps(&self) -> [&GridMap; NUM_FEATURES] {
        [
            &self.macro_map,
            &self.hnet,
            &self.vnet,
            &self.rudy,
            &self.pin_rudy,
            &self.cell_density,
        ]
    }

    /// Stacks the maps into the model input tensor `[6, H, W]`.
    pub fn to_tensor(&self) -> Tensor {
        let h = self.macro_map.height();
        let w = self.macro_map.width();
        let mut data = Vec::with_capacity(NUM_FEATURES * h * w);
        for m in self.maps() {
            data.extend_from_slice(m.data());
        }
        Tensor::from_vec(vec![NUM_FEATURES, h, w], data).expect("feature tensor")
    }

    /// Rotates every map by `k * 90` degrees (dataset augmentation).
    pub fn rot90(&self, k: usize) -> FeatureStack {
        FeatureStack {
            macro_map: self.macro_map.rot90(k),
            hnet: if k % 2 == 1 {
                // rotating by 90/270 swaps horizontal and vertical demand
                self.vnet.rot90(k)
            } else {
                self.hnet.rot90(k)
            },
            vnet: if k % 2 == 1 {
                self.hnet.rot90(k)
            } else {
                self.vnet.rot90(k)
            },
            rudy: self.rudy.rot90(k),
            pin_rudy: self.pin_rudy.rot90(k),
            cell_density: self.cell_density.rot90(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPreset;

    fn small_design() -> Design {
        DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1)
    }

    #[test]
    fn features_have_expected_shape_and_range() {
        let d = small_design();
        let p = d.random_placement(2);
        let f = FeatureStack::extract(&d, &p, 32, 24);
        let t = f.to_tensor();
        assert_eq!(t.shape(), &[6, 24, 32]);
        assert!(t.max() <= 1.0 + 1e-6);
        assert!(t.min() >= 0.0);
    }

    #[test]
    fn macro_map_counts_macros_only() {
        let d = small_design();
        let p = d.random_placement(3);
        let f = FeatureStack::extract(&d, &p, 16, 16);
        // normalized, but nonzero iff macros exist
        assert!(f.macro_map.max() > 0.0);
    }

    #[test]
    fn rudy_is_superposition() {
        let d = small_design();
        let p = d.random_placement(4);
        let f = FeatureStack::extract(&d, &p, 16, 16);
        // after normalization RUDY != hnet + vnet elementwise, but the raw
        // peak cell of rudy must be at least the peak of each component's
        // normalized contribution; check positivity structure instead:
        for i in 0..16 * 16 {
            if f.hnet.data()[i] > 0.0 || f.vnet.data()[i] > 0.0 {
                assert!(f.rudy.data()[i] > 0.0, "rudy missing demand at {i}");
            }
        }
    }

    #[test]
    fn rot90_k2_reverses_rows_and_cols() {
        let d = small_design();
        let p = d.random_placement(5);
        let f = FeatureStack::extract(&d, &p, 8, 8);
        let r = f.rot90(2);
        assert_eq!(r.cell_density.get(0, 0), f.cell_density.get(7, 7));
    }

    #[test]
    fn rot90_swaps_h_and_v_demand() {
        let d = small_design();
        let p = d.random_placement(6);
        let f = FeatureStack::extract(&d, &p, 8, 8);
        let r = f.rot90(1);
        // The rotated hnet is the rotation of the original vnet.
        assert_eq!(r.hnet, f.vnet.rot90(1));
        assert_eq!(r.vnet, f.hnet.rot90(1));
    }

    #[test]
    fn denser_placement_increases_peak_cell_density_before_normalization() {
        let d = small_design();
        // All movables at one point -> cell density concentrates.
        let mut p = d.random_placement(7);
        for (id, inst) in d.netlist.instances() {
            if inst.movable {
                p.set_pos(id.0 as usize, 1.0, 1.0);
            }
        }
        let f = FeatureStack::extract(&d, &p, 8, 8);
        // The movable cells all land in grid (0, 0); the 24 fixed I/O anchors
        // remain spread on the boundary, so (0, 0) must be the normalized peak.
        assert_eq!(f.cell_density.get(0, 0), 1.0);
        let nonzero = f.cell_density.data().iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero <= 25, "only anchors elsewhere, got {nonzero}");
    }
}
