//! Columnar FPGA fabric model.
//!
//! A modern UltraScale+-style device is organized in *columns* of a single
//! site type: most columns hold configurable logic blocks (CLBs), with
//! regularly interspersed DSP, block-RAM and ultra-RAM columns. The fabric
//! here is a `columns x rows` grid of sites; the congestion analysis runs on
//! a separate interconnect-tile grid mapped over the same area.

use std::fmt;

/// The four heterogeneous site types of the MLCAD 2023 architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// Configurable logic block (holds LUTs and flip-flops).
    Clb,
    /// Digital signal processor slice (macro site).
    Dsp,
    /// Block RAM (macro site).
    Bram,
    /// Ultra RAM (macro site).
    Uram,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SiteKind::Clb => "CLB",
            SiteKind::Dsp => "DSP",
            SiteKind::Bram => "BRAM",
            SiteKind::Uram => "URAM",
        };
        f.write_str(s)
    }
}

/// Per-CLB-site cell capacity, mirroring an UltraScale+ slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClbCapacity {
    /// LUTs per CLB site.
    pub luts: usize,
    /// Flip-flops per CLB site.
    pub ffs: usize,
}

/// A columnar FPGA fabric: `columns x rows` sites, each column of one
/// [`SiteKind`].
///
/// Coordinates are `(x, y)` with `x in [0, columns)` and `y in [0, rows)`;
/// continuous placements live in the same coordinate space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaArch {
    columns: Vec<SiteKind>,
    rows: usize,
    clb_capacity: ClbCapacity,
}

impl FpgaArch {
    /// Builds a fabric from an explicit column pattern.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or `rows` is zero.
    pub fn new(columns: Vec<SiteKind>, rows: usize, clb_capacity: ClbCapacity) -> Self {
        assert!(!columns.is_empty(), "fabric needs at least one column");
        assert!(rows > 0, "fabric needs at least one row");
        FpgaArch {
            columns,
            rows,
            clb_capacity,
        }
    }

    /// A scaled-down XCVU3P-like fabric used by the experiments:
    /// 48 columns x 40 rows, with DSP columns every ~9 columns, BRAM columns
    /// every ~11, and one URAM column. CLB sites hold 8 LUTs + 16 FFs.
    pub fn xcvu3p_scaled() -> Self {
        let mut columns = Vec::with_capacity(48);
        for x in 0..48usize {
            let kind = if x == 24 {
                SiteKind::Uram
            } else if x % 9 == 4 {
                SiteKind::Dsp
            } else if x % 11 == 8 {
                SiteKind::Bram
            } else {
                SiteKind::Clb
            };
            columns.push(kind);
        }
        FpgaArch::new(columns, 40, ClbCapacity { luts: 8, ffs: 16 })
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Fabric width in placement units (same as columns).
    pub fn width(&self) -> f32 {
        self.columns.len() as f32
    }

    /// Fabric height in placement units (same as rows).
    pub fn height(&self) -> f32 {
        self.rows as f32
    }

    /// The site kind of column `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn column_kind(&self, x: usize) -> SiteKind {
        self.columns[x]
    }

    /// Indices of all columns of a given kind.
    pub fn columns_of(&self, kind: SiteKind) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| (k == kind).then_some(i))
            .collect()
    }

    /// Number of sites of a given kind.
    pub fn site_count(&self, kind: SiteKind) -> usize {
        self.columns_of(kind).len() * self.rows
    }

    /// CLB cell capacity per site.
    pub fn clb_capacity(&self) -> ClbCapacity {
        self.clb_capacity
    }

    /// Total LUT capacity of the fabric.
    pub fn lut_capacity(&self) -> usize {
        self.site_count(SiteKind::Clb) * self.clb_capacity.luts
    }

    /// Total FF capacity of the fabric.
    pub fn ff_capacity(&self) -> usize {
        self.site_count(SiteKind::Clb) * self.clb_capacity.ffs
    }

    /// Clamps a continuous location into the fabric interior.
    pub fn clamp(&self, x: f32, y: f32) -> (f32, f32) {
        (
            x.clamp(0.0, self.width() - 1e-3),
            y.clamp(0.0, self.height() - 1e-3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_fabric_has_all_site_kinds() {
        let arch = FpgaArch::xcvu3p_scaled();
        assert!(arch.site_count(SiteKind::Clb) > 0);
        assert!(arch.site_count(SiteKind::Dsp) > 0);
        assert!(arch.site_count(SiteKind::Bram) > 0);
        assert!(arch.site_count(SiteKind::Uram) > 0);
        let total: usize = [SiteKind::Clb, SiteKind::Dsp, SiteKind::Bram, SiteKind::Uram]
            .iter()
            .map(|&k| arch.site_count(k))
            .sum();
        assert_eq!(total, arch.columns() * arch.rows());
    }

    #[test]
    fn macro_columns_are_minority() {
        let arch = FpgaArch::xcvu3p_scaled();
        assert!(arch.site_count(SiteKind::Clb) > arch.site_count(SiteKind::Dsp) * 4);
    }

    #[test]
    fn clamp_keeps_points_inside() {
        let arch = FpgaArch::xcvu3p_scaled();
        let (x, y) = arch.clamp(-5.0, 1e9);
        assert!(x >= 0.0 && x < arch.width());
        assert!(y >= 0.0 && y < arch.height());
    }

    #[test]
    fn capacity_consistency() {
        let arch = FpgaArch::xcvu3p_scaled();
        assert_eq!(
            arch.lut_capacity(),
            arch.site_count(SiteKind::Clb) * arch.clb_capacity().luts
        );
        assert_eq!(arch.ff_capacity(), arch.lut_capacity() * 2);
    }
}
