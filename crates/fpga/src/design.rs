//! Synthetic benchmark designs modelled on the MLCAD 2023 contest suite.
//!
//! The contest designs are proprietary, so [`DesignPreset`] reproduces their
//! *statistical structure* at a configurable scale: clustered Rent-like
//! connectivity, macro-heavy datapath clusters, cascaded DSP/BRAM chains,
//! region constraints and fixed I/O anchors at the fabric boundary. The ten
//! presets carry the per-design LUT/FF/DSP/BRAM statistics of Table I and a
//! per-design *hotness* knob controlling how concentrated the interconnect
//! demand is (the contest's "ten most congested" designs differ mainly in
//! this respect).

use mfaplace_rt::rng::StdRng;
use mfaplace_rt::rng::{Rng, SeedableRng};

use crate::arch::{FpgaArch, SiteKind};
use crate::constraint::{CascadeShape, Rect, RegionConstraint};
use crate::netlist::{InstId, InstKind, Netlist};
use crate::placement::Placement;

/// A generated benchmark: fabric + netlist + constraints + anchors.
#[derive(Debug, Clone)]
pub struct Design {
    /// Benchmark name (e.g. `Design_116`).
    pub name: String,
    /// The target fabric.
    pub arch: FpgaArch,
    /// The netlist.
    pub netlist: Netlist,
    /// Cascade shape constraints over macros.
    pub cascades: Vec<CascadeShape>,
    /// Region constraints.
    pub regions: Vec<RegionConstraint>,
    /// Fixed I/O-like anchors: `(instance, x, y)`.
    pub io_anchors: Vec<(InstId, f32, f32)>,
    /// Full-scale statistics from the paper's Table I (LUT, FF, DSP, BRAM).
    pub paper_stats: (usize, usize, usize, usize),
    /// Cluster id per instance (used by tests and diagnostics).
    pub cluster_of: Vec<u32>,
}

impl Design {
    /// Number of movable instances.
    pub fn movable_count(&self) -> usize {
        self.netlist
            .instances()
            .filter(|(_, inst)| inst.movable)
            .count()
    }

    /// A random placement: movables uniform over the fabric, anchors at
    /// their fixed locations. Useful for tests and as a placer start point.
    pub fn random_placement(&self, seed: u64) -> Placement {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Placement::new(self.netlist.num_instances());
        for (id, inst) in self.netlist.instances() {
            if inst.movable {
                p.set_pos(
                    id.0 as usize,
                    rng.gen_range(0.0..self.arch.width()),
                    rng.gen_range(0.0..self.arch.height()),
                );
            }
        }
        for &(id, x, y) in &self.io_anchors {
            p.set_pos(id.0 as usize, x, y);
        }
        p
    }

    /// The region constraint index an instance belongs to, if any.
    pub fn region_of(&self, id: InstId) -> Option<usize> {
        self.regions.iter().position(|r| r.members.contains(&id))
    }
}

/// Parameters of one synthetic benchmark; presets mirror Table I.
#[derive(Debug, Clone)]
pub struct DesignPreset {
    name: &'static str,
    luts: usize,
    ffs: usize,
    dsps: usize,
    brams: usize,
    /// Fraction of clusters that are interconnect-hot (drives congestion).
    hotness: f32,
    cell_div: usize,
    dsp_div: usize,
    bram_div: usize,
}

macro_rules! preset_ctor {
    ($fn_name:ident, $name:literal, $luts:literal, $ffs:literal, $dsps:literal, $brams:literal, $hot:literal) => {
        /// Preset matching the statistics of the corresponding MLCAD 2023
        /// benchmark (Table I of the paper).
        pub fn $fn_name() -> DesignPreset {
            DesignPreset {
                name: $name,
                luts: $luts,
                ffs: $ffs,
                dsps: $dsps,
                brams: $brams,
                hotness: $hot,
                cell_div: 64,
                dsp_div: 16,
                bram_div: 8,
            }
        }
    };
}

impl DesignPreset {
    preset_ctor!(design_116, "Design_116", 370_000, 315_000, 2052, 648, 0.62);
    preset_ctor!(design_120, "Design_120", 383_000, 315_000, 2052, 648, 0.30);
    preset_ctor!(design_136, "Design_136", 315_000, 268_000, 1870, 590, 0.34);
    preset_ctor!(design_156, "Design_156", 338_000, 291_000, 1961, 619, 0.38);
    preset_ctor!(design_176, "Design_176", 370_000, 315_000, 2052, 648, 0.66);
    preset_ctor!(design_180, "Design_180", 383_000, 315_000, 2052, 648, 0.70);
    preset_ctor!(design_190, "Design_190", 312_000, 256_000, 1824, 576, 0.55);
    preset_ctor!(design_197, "Design_197", 323_000, 268_000, 1870, 590, 0.32);
    preset_ctor!(design_227, "Design_227", 363_000, 303_000, 2006, 634, 0.45);
    preset_ctor!(design_230, "Design_230", 379_000, 315_000, 2052, 648, 0.50);

    /// The ten most-congested contest benchmarks used in Tables I and II.
    ///
    /// (Table I lists `Design_237` in its last row while Table II lists
    /// `Design_230`; the suite carries both names via this preset list plus
    /// [`DesignPreset::design_237`].)
    pub fn contest_suite() -> Vec<DesignPreset> {
        vec![
            Self::design_116(),
            Self::design_120(),
            Self::design_136(),
            Self::design_156(),
            Self::design_176(),
            Self::design_180(),
            Self::design_190(),
            Self::design_197(),
            Self::design_227(),
            Self::design_230(),
        ]
    }

    preset_ctor!(design_237, "Design_237", 379_000, 315_000, 2052, 648, 0.48);

    /// Table-I variant of the suite (last row `Design_237`).
    pub fn prediction_suite() -> Vec<DesignPreset> {
        let mut v = Self::contest_suite();
        v.pop();
        v.push(Self::design_237());
        v
    }

    /// Overrides the scaling divisors (cells, DSPs, BRAMs). Smaller divisors
    /// mean larger generated designs.
    pub fn with_scale(mut self, cell_div: usize, dsp_div: usize, bram_div: usize) -> Self {
        assert!(cell_div > 0 && dsp_div > 0 && bram_div > 0);
        self.cell_div = cell_div;
        self.dsp_div = dsp_div;
        self.bram_div = bram_div;
        self
    }

    /// The benchmark name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Full-scale statistics `(LUT, FF, DSP, BRAM)` as reported in Table I.
    pub fn paper_stats(&self) -> (usize, usize, usize, usize) {
        (self.luts, self.ffs, self.dsps, self.brams)
    }

    /// The congestion-hotness knob in `[0, 1]`.
    pub fn hotness(&self) -> f32 {
        self.hotness
    }

    /// Generates the design deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Design {
        let arch = FpgaArch::xcvu3p_scaled();
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(self.name));
        let n_lut = (self.luts / self.cell_div).max(64);
        let n_ff = (self.ffs / self.cell_div).max(64);
        let n_dsp = (self.dsps / self.dsp_div).clamp(8, arch.site_count(SiteKind::Dsp) * 8 / 10);
        let n_bram =
            (self.brams / self.bram_div).clamp(4, arch.site_count(SiteKind::Bram) * 8 / 10);
        let n_uram = (n_bram / 8).clamp(2, arch.site_count(SiteKind::Uram) * 8 / 10);

        let mut netlist = Netlist::new();
        let mut kinds = Vec::new();
        for _ in 0..n_lut {
            kinds.push(InstKind::Lut);
        }
        for _ in 0..n_ff {
            kinds.push(InstKind::Ff);
        }
        for _ in 0..n_dsp {
            kinds.push(InstKind::Dsp);
        }
        for _ in 0..n_bram {
            kinds.push(InstKind::Bram);
        }
        for _ in 0..n_uram {
            kinds.push(InstKind::Uram);
        }
        let ids: Vec<InstId> = kinds
            .iter()
            .map(|&k| netlist.add_instance(k, true))
            .collect();

        // -------- clustering: cells into ~32-instance clusters -----------
        let n_cells = n_lut + n_ff;
        let cluster_size = 32usize;
        let n_clusters = (n_cells / cluster_size).max(4);
        let mut cluster_of = vec![0u32; netlist.num_instances()];
        for (i, c) in cluster_of.iter_mut().enumerate().take(n_cells) {
            *c = (i % n_clusters) as u32;
        }
        // Datapath clusters host the macros.
        let n_dp = (n_clusters as f32 * 0.4).ceil() as usize;
        let dp_clusters: Vec<u32> = (0..n_dp)
            .map(|_| rng.gen_range(0..n_clusters) as u32)
            .collect();
        for slot in &mut cluster_of[n_cells..netlist.num_instances()] {
            *slot = dp_clusters[rng.gen_range(0..dp_clusters.len())];
        }
        // Hot clusters get denser interconnect.
        let hot: Vec<bool> = (0..n_clusters)
            .map(|_| rng.gen_f32() < self.hotness)
            .collect();

        // Bucket instances per cluster for sampling.
        let mut members: Vec<Vec<InstId>> = vec![Vec::new(); n_clusters];
        for (i, &c) in cluster_of.iter().enumerate() {
            members[c as usize].push(ids[i]);
        }

        // -------- I/O anchors on the boundary ----------------------------
        let mut io_anchors = Vec::new();
        let n_io = 24usize;
        for k in 0..n_io {
            let id = netlist.add_instance(InstKind::Lut, false);
            cluster_of.push((k % n_clusters) as u32);
            let t = k as f32 / n_io as f32;
            let (x, y) = match k % 4 {
                0 => (t * arch.width(), 0.0),
                1 => (t * arch.width(), arch.height() - 1.0),
                2 => (0.0, t * arch.height()),
                _ => (arch.width() - 1.0, t * arch.height()),
            };
            io_anchors.push((id, x, y));
        }

        // -------- nets ----------------------------------------------------
        let sample_degree = |rng: &mut StdRng| -> usize {
            let r: f32 = rng.gen_f32();
            if r < 0.45 {
                2
            } else if r < 0.65 {
                3
            } else if r < 0.80 {
                4
            } else if r < 0.95 {
                rng.gen_range(5..=8)
            } else {
                rng.gen_range(9..=16)
            }
        };
        for c in 0..n_clusters {
            if members[c].is_empty() {
                continue;
            }
            let density = if hot[c] { 1.6 } else { 1.0 };
            let n_nets = ((members[c].len() as f32) * 1.1 * density).round() as usize;
            for _ in 0..n_nets {
                let deg = sample_degree(&mut rng);
                let mut pins = Vec::with_capacity(deg);
                for k in 0..deg {
                    // 15% of pins escape to a random other cluster (Rent-like
                    // external connectivity); hot clusters escape further.
                    let from = if k > 0 && rng.gen_f32() < 0.15 {
                        let other = rng.gen_range(0..n_clusters);
                        if members[other].is_empty() {
                            c
                        } else {
                            other
                        }
                    } else {
                        c
                    };
                    let pick = members[from][rng.gen_range(0..members[from].len())];
                    if !pins.contains(&pick) {
                        pins.push(pick);
                    }
                }
                // occasionally tie a net to an I/O anchor
                if rng.gen_f32() < 0.04 {
                    let (a, _, _) = io_anchors[rng.gen_range(0..io_anchors.len())];
                    pins.push(a);
                }
                if pins.len() >= 2 {
                    netlist.add_net(pins);
                }
            }
        }
        // Macro connectivity: each macro joins 2-4 nets with its cluster.
        for (i, &kind) in kinds.iter().enumerate() {
            if !kind.is_macro() {
                continue;
            }
            let c = cluster_of[i] as usize;
            for _ in 0..rng.gen_range(2..=4) {
                let deg = rng.gen_range(2..=6);
                let mut pins = vec![ids[i]];
                for _ in 0..deg {
                    let pick = members[c][rng.gen_range(0..members[c].len())];
                    if !pins.contains(&pick) {
                        pins.push(pick);
                    }
                }
                if pins.len() >= 2 {
                    netlist.add_net(pins);
                }
            }
        }

        // -------- cascades -------------------------------------------------
        let mut cascades = Vec::new();
        let chain_macros = |kind: InstKind, cascades: &mut Vec<CascadeShape>, rng: &mut StdRng| {
            let pool: Vec<InstId> = netlist
                .instances()
                .filter_map(|(id, inst)| (inst.kind == kind && inst.movable).then_some(id))
                .collect();
            let mut i = 0usize;
            while i + 1 < pool.len() {
                if rng.gen_f32() < 0.4 {
                    let len = rng
                        .gen_range(2..=9usize)
                        .min(pool.len() - i)
                        .min(arch.rows());
                    if len >= 2 {
                        cascades.push(CascadeShape {
                            members: pool[i..i + len].to_vec(),
                            site_kind: kind.site_kind(),
                        });
                        i += len;
                        continue;
                    }
                }
                i += 1;
            }
        };
        chain_macros(InstKind::Dsp, &mut cascades, &mut rng);
        chain_macros(InstKind::Bram, &mut cascades, &mut rng);

        // -------- region constraints ---------------------------------------
        let mut regions = Vec::new();
        let n_regions = rng.gen_range(2..=4usize);
        for _ in 0..n_regions {
            let w = rng.gen_range(0.25f32..0.45) * arch.width();
            let h = rng.gen_range(0.25f32..0.45) * arch.height();
            let x0 = rng.gen_range(0.0..(arch.width() - w));
            let y0 = rng.gen_range(0.0..(arch.height() - h));
            let rect = Rect::new(x0, y0, x0 + w, y0 + h);
            // assign one full cluster to the region
            let c = rng.gen_range(0..n_clusters);
            let mut region_members = members[c].clone();
            // do not bind cascade members to regions (contest designs avoid
            // conflicting constraints)
            let in_cascade: Vec<InstId> =
                cascades.iter().flat_map(|cs| cs.members.clone()).collect();
            region_members.retain(|m| !in_cascade.contains(m));
            if !region_members.is_empty() {
                regions.push(RegionConstraint {
                    rect,
                    members: region_members,
                });
            }
        }

        Design {
            name: self.name.to_string(),
            arch,
            netlist,
            cascades,
            regions,
            io_anchors,
            paper_stats: (self.luts, self.ffs, self.dsps, self.brams),
            cluster_of,
        }
    }
}

/// Small FNV-style hash so each preset gets a distinct RNG stream.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DesignPreset::design_116().generate(7);
        let b = DesignPreset::design_116().generate(7);
        assert_eq!(a.netlist.num_instances(), b.netlist.num_instances());
        assert_eq!(a.netlist.num_nets(), b.netlist.num_nets());
        assert_eq!(a.cascades.len(), b.cascades.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = DesignPreset::design_116().generate(1);
        let b = DesignPreset::design_116().generate(2);
        assert_ne!(a.netlist.num_nets(), b.netlist.num_nets());
    }

    #[test]
    fn scaled_counts_fit_fabric() {
        for preset in DesignPreset::contest_suite() {
            let d = preset.generate(3);
            let arch = &d.arch;
            assert!(
                d.netlist.count_kind(InstKind::Lut) <= arch.lut_capacity(),
                "{}: too many LUTs",
                d.name
            );
            assert!(d.netlist.count_kind(InstKind::Ff) <= arch.ff_capacity());
            assert!(
                d.netlist.count_kind(InstKind::Dsp) <= arch.site_count(SiteKind::Dsp),
                "{}: too many DSPs",
                d.name
            );
            assert!(d.netlist.count_kind(InstKind::Bram) <= arch.site_count(SiteKind::Bram));
            assert!(d.netlist.count_kind(InstKind::Uram) <= arch.site_count(SiteKind::Uram));
        }
    }

    #[test]
    fn cascades_are_homogeneous_and_bounded() {
        let d = DesignPreset::design_180().generate(11);
        assert!(!d.cascades.is_empty(), "expected some cascades");
        for c in &d.cascades {
            assert!(c.len() >= 2 && c.len() <= d.arch.rows());
            for &m in &c.members {
                assert_eq!(d.netlist.instance(m).kind.site_kind(), c.site_kind);
            }
        }
    }

    #[test]
    fn regions_do_not_bind_cascade_members() {
        let d = DesignPreset::design_190().generate(5);
        let in_cascade: Vec<InstId> = d.cascades.iter().flat_map(|c| c.members.clone()).collect();
        for r in &d.regions {
            for m in &r.members {
                assert!(!in_cascade.contains(m), "region member also in cascade");
            }
        }
    }

    #[test]
    fn anchors_are_fixed_and_on_boundary() {
        let d = DesignPreset::design_120().generate(9);
        assert!(!d.io_anchors.is_empty());
        for &(id, x, y) in &d.io_anchors {
            assert!(!d.netlist.instance(id).movable);
            let on_edge = x == 0.0
                || y == 0.0
                || (x - (d.arch.width() - 1.0)).abs() < 1e-6
                || (y - (d.arch.height() - 1.0)).abs() < 1e-6;
            assert!(on_edge, "anchor ({x}, {y}) not on boundary");
        }
    }

    #[test]
    fn random_placement_within_fabric() {
        let d = DesignPreset::design_156().generate(2);
        let p = d.random_placement(4);
        for i in 0..p.len() {
            let (x, y) = p.pos(i);
            assert!(x >= 0.0 && x <= d.arch.width());
            assert!(y >= 0.0 && y <= d.arch.height());
        }
    }

    #[test]
    fn hot_presets_have_more_nets_per_cell() {
        // Design_180 (hotness .70) should be denser than Design_120 (.30).
        let hotd = DesignPreset::design_180().generate(1);
        let cold = DesignPreset::design_120().generate(1);
        let hot_ratio = hotd.netlist.num_nets() as f32 / hotd.netlist.num_instances() as f32;
        let cold_ratio = cold.netlist.num_nets() as f32 / cold.netlist.num_instances() as f32;
        assert!(
            hot_ratio > cold_ratio,
            "hot {hot_ratio} <= cold {cold_ratio}"
        );
    }
}
