//! Finite-difference gradient verification for every autograd primitive.

use mfaplace_autograd::gradcheck::assert_grads_close;
use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::StdRng;
use mfaplace_tensor::Tensor;

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

fn rt(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape.to_vec(), 1.0, &mut rng)
}

#[test]
fn grad_add_sub_mul() {
    let a = rt(&[2, 3], 1);
    let b = rt(&[2, 3], 2);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g, v| {
        let s = g.add(v[0], v[1]);
        g.mean(s)
    });
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g, v| {
        let s = g.sub(v[0], v[1]);
        let s2 = g.mul(s, s);
        g.mean(s2)
    });
    assert_grads_close(&[a, b], EPS, TOL, |g, v| {
        let s = g.mul(v[0], v[1]);
        g.sum(s)
    });
}

#[test]
fn grad_neg_scale_add_scalar() {
    let a = rt(&[4], 3);
    assert_grads_close(&[a], EPS, TOL, |g, v| {
        let n = g.neg(v[0]);
        let s = g.scale(n, 2.5);
        let t = g.add_scalar(s, 1.0);
        let sq = g.mul(t, t);
        g.mean(sq)
    });
}

#[test]
fn grad_matmul() {
    let a = rt(&[3, 4], 4);
    let b = rt(&[4, 2], 5);
    assert_grads_close(&[a, b], EPS, TOL, |g, v| {
        let c = g.matmul(v[0], v[1]);
        let c2 = g.mul(c, c);
        g.mean(c2)
    });
}

#[test]
fn grad_bmm() {
    let a = rt(&[2, 3, 4], 6);
    let b = rt(&[2, 4, 2], 7);
    assert_grads_close(&[a, b], EPS, TOL, |g, v| {
        let c = g.bmm(v[0], v[1]);
        let c2 = g.mul(c, c);
        g.mean(c2)
    });
}

#[test]
fn grad_conv2d() {
    let x = rt(&[2, 3, 5, 5], 8);
    let w = rt(&[4, 3, 3, 3], 9);
    assert_grads_close(&[x, w], EPS, TOL, |g, v| {
        let y = g.conv2d(v[0], v[1], 1, 1);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_conv2d_strided() {
    let x = rt(&[1, 2, 6, 6], 10);
    let w = rt(&[3, 2, 3, 3], 11);
    assert_grads_close(&[x, w], EPS, TOL, |g, v| {
        let y = g.conv2d(v[0], v[1], 2, 1);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_bias_ops() {
    let x = rt(&[2, 3, 2, 2], 12);
    let b = rt(&[3], 13);
    assert_grads_close(&[x.clone(), b.clone()], EPS, TOL, |g, v| {
        let y = g.add_bias_channel(v[0], v[1]);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
    let xr = rt(&[5, 4], 14);
    let br = rt(&[4], 15);
    assert_grads_close(&[xr, br], EPS, TOL, |g, v| {
        let y = g.add_bias_row(v[0], v[1]);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_activations() {
    // Shift away from the ReLU kink to keep finite differences meaningful.
    let x = rt(&[3, 3], 16).map(|v| v + if v.abs() < 0.05 { 0.2 } else { 0.0 });
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        let y = g.relu(v[0]);
        g.sum(y)
    });
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        let y = g.leaky_relu(v[0], 0.1);
        g.sum(y)
    });
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        let y = g.sigmoid(v[0]);
        g.sum(y)
    });
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        let y = g.gelu(v[0]);
        g.sum(y)
    });
}

#[test]
fn grad_batch_norm() {
    let x = rt(&[2, 3, 3, 3], 17);
    let gamma = rt(&[3], 18).map(|v| v + 1.5);
    let beta = rt(&[3], 19);
    assert_grads_close(&[x, gamma, beta], EPS, 6e-2, |g, v| {
        let (y, _, _) = g.batch_norm2d(v[0], v[1], v[2], 1e-5);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_channel_affine() {
    let x = rt(&[2, 2, 2, 2], 20);
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        let y = g.channel_affine(v[0], vec![0.5, 2.0], vec![0.1, -0.2]);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_layer_norm() {
    let x = rt(&[4, 6], 21);
    let gamma = rt(&[6], 22).map(|v| v + 1.5);
    let beta = rt(&[6], 23);
    assert_grads_close(&[x, gamma, beta], EPS, 6e-2, |g, v| {
        let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_softmax() {
    let x = rt(&[3, 5], 24);
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        let s = g.softmax_last(v[0]);
        let s2 = g.mul(s, s);
        g.mean(s2)
    });
}

#[test]
fn grad_cross_entropy() {
    let x = rt(&[2, 4, 2, 2], 25);
    let labels: Vec<u8> = vec![0, 1, 2, 3, 3, 2, 1, 0];
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        g.cross_entropy2d(v[0], &labels, None)
    });
    let weights = [0.5f32, 1.0, 2.0, 4.0];
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        g.cross_entropy2d(v[0], &labels, Some(&weights))
    });
}

#[test]
fn grad_mse() {
    let x = rt(&[3, 3], 26);
    let target = rt(&[3, 3], 27);
    assert_grads_close(&[x], EPS, TOL, |g, v| g.mse_loss(v[0], &target));
}

#[test]
fn grad_shape_ops() {
    let x = rt(&[2, 3, 4], 28);
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        let r = g.reshape(v[0], vec![6, 4]);
        let r2 = g.mul(r, r);
        g.mean(r2)
    });
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        let p = g.permute(v[0], &[2, 0, 1]);
        let p2 = g.mul(p, p);
        g.mean(p2)
    });
}

#[test]
fn grad_concat_slice() {
    let a = rt(&[1, 2, 2, 2], 29);
    let b = rt(&[1, 3, 2, 2], 30);
    assert_grads_close(&[a.clone(), b.clone()], EPS, TOL, |g, v| {
        let c = g.concat_channels(&[v[0], v[1]]);
        let c2 = g.mul(c, c);
        g.mean(c2)
    });
    assert_grads_close(&[b], EPS, TOL, |g, v| {
        let s = g.slice_channels(v[0], 1, 3);
        let s2 = g.mul(s, s);
        g.mean(s2)
    });
}

#[test]
fn grad_upsample_maxpool() {
    let x = rt(&[1, 2, 4, 4], 31);
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        let u = g.upsample2x(v[0]);
        let u2 = g.mul(u, u);
        g.mean(u2)
    });
    // Spread values so the pooling argmax is stable under perturbation.
    let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| (i as f32) * 0.7 - 3.0);
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        let p = g.maxpool2x2(v[0]);
        let p2 = g.mul(p, p);
        g.mean(p2)
    });
}

#[test]
fn grad_mul_scalar_var() {
    let x = rt(&[3, 3], 32);
    let s = Tensor::from_vec(vec![1], vec![0.7]).unwrap();
    assert_grads_close(&[x, s], EPS, TOL, |g, v| {
        let y = g.mul_scalar_var(v[0], v[1]);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_composed_attention_like_chain() {
    // A miniature PAM-style chain: softmax(B^T C) applied to D.
    let q = rt(&[1, 4, 3], 33);
    let k = rt(&[1, 4, 3], 34);
    let d = rt(&[1, 4, 3], 35);
    assert_grads_close(&[q, k, d], EPS, 6e-2, |g, v| {
        let qt = g.permute(v[0], &[0, 2, 1]); // [1,3,4]
        let e = g.bmm(qt, v[1]); // [1,3,3]
        let a = g.softmax_last(e);
        let at = g.permute(a, &[0, 2, 1]);
        let o = g.bmm(v[2], at); // [1,4,3]
        let o2 = g.mul(o, o);
        g.mean(o2)
    });
}

#[test]
fn grad_skips_constants() {
    let mut g = Graph::new();
    let w = g.param(rt(&[2, 2], 36));
    let c = g.constant(rt(&[2, 2], 37));
    let y = g.mul(w, c);
    let loss = g.mean(y);
    g.backward(loss);
    assert!(g.grad(w).is_some());
    assert!(g.grad(c).is_none(), "constants must not accumulate grads");
}

#[test]
fn truncate_keeps_params() {
    let mut g = Graph::new();
    let w = g.param(Tensor::ones(vec![2]));
    let mark = g.mark();
    for step in 0..3 {
        let x = g.constant(Tensor::full(vec![2], step as f32 + 1.0));
        let y = g.mul(w, x);
        let loss = g.sum(y);
        g.zero_grads();
        g.backward(loss);
        let grad = g.grad(w).expect("param grad").clone();
        assert_eq!(grad.data(), &[step as f32 + 1.0, step as f32 + 1.0]);
        g.truncate(mark);
        assert_eq!(g.len(), mark);
    }
}

#[test]
fn gradient_descent_converges_on_quadratic() {
    // minimize ||w - t||^2 by plain SGD through the tape.
    let mut g = Graph::new();
    let target = Tensor::from_vec(vec![3], vec![1.0, -2.0, 0.5]).unwrap();
    let w = g.param(Tensor::zeros(vec![3]));
    let mark = g.mark();
    for _ in 0..200 {
        let loss = g.mse_loss(w, &target);
        g.zero_grads();
        g.backward(loss);
        let gw = g.grad(w).unwrap().clone();
        g.value_mut(w).add_scaled_assign(&gw, -0.2);
        g.truncate(mark);
    }
    let final_w = g.value(w).clone();
    for (a, b) in final_w.data().iter().zip(target.data()) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

#[test]
fn second_backward_accumulates() {
    let mut g = Graph::new();
    let w = g.param(Tensor::ones(vec![1]));
    let x = g.constant(Tensor::full(vec![1], 2.0));
    let y = g.mul(w, x);
    let loss = g.sum(y);
    g.backward(loss);
    g.backward(loss);
    // Two backward passes without zero_grads accumulate. The loss node's
    // seed also accumulates, so the second pass contributes 2x: 2 + 4 = 6...
    // Verify against an explicit model of the accumulation semantics.
    let acc = g.grad(w).unwrap().data()[0];
    assert!(acc > 2.0, "gradients should accumulate, got {acc}");
}

fn scalar_chain(g: &mut Graph, v: &[Var]) -> Var {
    let a = g.relu(v[0]);
    let b = g.sigmoid(a);
    g.mean(b)
}

#[test]
fn check_reports_structure() {
    let x = rt(&[2, 2], 40).map(|v| v + 0.3);
    let reports = mfaplace_autograd::gradcheck::check(&[x], EPS, scalar_chain);
    assert_eq!(reports.len(), 1);
    assert!(reports[0].max_rel_diff < TOL);
}

#[test]
fn graph_and_var_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Graph>();
    assert_send::<mfaplace_autograd::Var>();
}

// ---------------------------------------------------------------------------
// Module-level checks: finite differences through whole paper modules
// (constructor-created parameters), not just primitives. Valid because these
// modules are stateless in train mode — no batch norm, dropout p = 0 — so
// the loss is a pure function of the parameter values.
// ---------------------------------------------------------------------------

use mfaplace_nn::Module;

/// Finite-difference check of `d loss / d params` for a module built by
/// `build`. Parameters are re-randomized after construction so zero-init
/// layers (e.g. the MFA restore projection) don't make the check vacuous.
fn module_gradcheck<M: Module>(
    seed: u64,
    x: Tensor,
    rtol: f32,
    build: impl Fn(&mut Graph, &mut StdRng) -> M,
) {
    use mfaplace_autograd::gradcheck::ATOL;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let mut module = build(&mut g, &mut rng);
    let params = module.params();
    assert!(!params.is_empty());
    for &p in &params {
        let shape = g.value(p).shape().to_vec();
        *g.value_mut(p) = Tensor::randn(shape, 0.5, &mut rng);
    }
    let mark = g.mark();
    let eval = |g: &mut Graph, module: &mut M| -> f32 {
        let xv = g.constant(x.clone());
        let y = module.forward(g, xv, true);
        let y2 = g.mul(y, y);
        let loss = g.mean(y2);
        let v = g.value(loss).item();
        g.truncate(mark);
        v
    };

    // Analytic gradients.
    let analytic: Vec<Tensor> = {
        let xv = g.constant(x.clone());
        let y = module.forward(&mut g, xv, true);
        let y2 = g.mul(y, y);
        let loss = g.mean(y2);
        g.zero_grads();
        g.backward(loss);
        let grads = params
            .iter()
            .map(|&p| {
                g.grad(p)
                    .expect("every module param reaches the loss")
                    .clone()
            })
            .collect();
        g.truncate(mark);
        grads
    };

    // Central differences, element by element.
    for (pi, &p) in params.iter().enumerate() {
        for k in 0..analytic[pi].data().len() {
            let old = g.value(p).data()[k];
            g.value_mut(p).data_mut()[k] = old + EPS;
            let up = eval(&mut g, &mut module);
            g.value_mut(p).data_mut()[k] = old - EPS;
            let down = eval(&mut g, &mut module);
            g.value_mut(p).data_mut()[k] = old;
            let numeric = (up - down) / (2.0 * EPS);
            let a = analytic[pi].data()[k];
            let diff = (a - numeric).abs();
            let bound = ATOL + rtol * a.abs().max(numeric.abs());
            assert!(
                diff <= bound,
                "param {pi} elem {k}: analytic {a} vs numeric {numeric} (diff {diff} > {bound})"
            );
        }
    }
}

#[test]
fn grad_mfa_pam_cam_module() {
    // The full MFA block: 1x1 reduce -> PAM + CAM dual attention -> restore
    // -> outer residual.
    let x = rt(&[1, 4, 4, 4], 60);
    module_gradcheck(61, x, 6e-2, |g, rng| {
        mfaplace_models::MfaBlock::with_reduction(g, 4, 2, rng)
    });
}

#[test]
fn grad_transformer_block_module() {
    // LayerNorm + multi-head self-attention + MLP, both residual branches.
    let x = rt(&[1, 5, 4], 62);
    module_gradcheck(63, x, 6e-2, |g, rng| {
        mfaplace_nn::TransformerBlock::new(g, 4, 2, 2, 0.0, rng)
    });
}

#[test]
fn grad_cross_entropy_sum() {
    // The un-normalized sum variant used by the data-parallel trainer.
    let x = rt(&[2, 4, 2, 2], 64);
    let labels: Vec<u8> = vec![0, 1, 2, 3, 3, 2, 1, 0];
    assert_grads_close(std::slice::from_ref(&x), EPS, TOL, |g, v| {
        g.cross_entropy2d_sum(v[0], &labels, None)
    });
    let weights = [0.5f32, 1.0, 2.0, 4.0];
    assert_grads_close(&[x], EPS, TOL, |g, v| {
        g.cross_entropy2d_sum(v[0], &labels, Some(&weights))
    });
}

#[test]
fn seeded_backward_on_sum_matches_normalized_backward() {
    // backward_seeded(sum_loss, 1/den) is how the trainer folds the batch
    // denominator into per-shard backward passes; it must agree with the
    // normalized loss + plain backward up to rounding.
    let x = rt(&[2, 4, 2, 2], 65);
    let labels: Vec<u8> = vec![0, 1, 2, 3, 3, 2, 1, 0];
    let weights = [0.5f32, 1.0, 2.0, 4.0];
    let den: f64 = labels.iter().map(|&y| f64::from(weights[y as usize])).sum();

    let mut g1 = Graph::new();
    let v1 = g1.param(x.clone());
    let l1 = g1.cross_entropy2d(v1, &labels, Some(&weights));
    g1.backward(l1);

    let mut g2 = Graph::new();
    let v2 = g2.param(x);
    let l2 = g2.cross_entropy2d_sum(v2, &labels, Some(&weights));
    g2.backward_seeded(l2, (1.0 / den) as f32);

    let sum = f64::from(g1.value(l1).item()) * den;
    let got = f64::from(g2.value(l2).item());
    assert!(
        (sum - got).abs() < 1e-4 * sum.abs().max(1.0),
        "{sum} vs {got}"
    );
    for (a, b) in g1
        .grad(v1)
        .unwrap()
        .data()
        .iter()
        .zip(g2.grad(v2).unwrap().data())
    {
        assert!(
            (a - b).abs() <= 1e-6 + 1e-4 * a.abs().max(b.abs()),
            "{a} vs {b}"
        );
    }
}

#[test]
fn grad_bmm_nt_tn() {
    let a = rt(&[2, 3, 4], 40);
    let b = rt(&[2, 5, 4], 41); // b in [B, N, K]: bmm_nt contracts over K
    assert_grads_close(&[a, b], EPS, TOL, |g, v| {
        let c = g.bmm_nt(v[0], v[1]);
        let c2 = g.mul(c, c);
        g.mean(c2)
    });
    let a = rt(&[2, 4, 3], 42); // a in [B, K, M]: bmm_tn contracts over K
    let b = rt(&[2, 4, 5], 43);
    assert_grads_close(&[a, b], EPS, TOL, |g, v| {
        let c = g.bmm_tn(v[0], v[1]);
        let c2 = g.mul(c, c);
        g.mean(c2)
    });
}

#[test]
fn grad_fused_attention_token_major() {
    let q = rt(&[2, 5, 3], 44);
    let k = rt(&[2, 7, 3], 45);
    let v = rt(&[2, 7, 4], 46);
    assert_grads_close(&[q, k, v], EPS, TOL, |g, vars| {
        let y = g.attention(vars[0], vars[1], vars[2], 0.7);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_fused_attention_feature_major() {
    let q = rt(&[2, 3, 6], 47);
    let k = rt(&[2, 3, 6], 48);
    let v = rt(&[2, 4, 6], 49);
    assert_grads_close(&[q, k, v], EPS, TOL, |g, vars| {
        let y = g.attention_fm(vars[0], vars[1], vars[2], 0.5);
        let y2 = g.mul(y, y);
        g.mean(y2)
    });
}

#[test]
fn grad_fused_attention_aliased_self() {
    // q = k = v through one parameter, like the CAM block.
    let m = rt(&[1, 4, 5], 50);
    assert_grads_close(&[m], EPS, TOL, |g, vars| {
        let y = g.attention(vars[0], vars[0], vars[0], 1.0);
        let out = g.add(y, vars[0]);
        let o2 = g.mul(out, out);
        g.mean(o2)
    });
}
