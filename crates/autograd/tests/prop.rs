//! Property-based gradient checks: randomized shapes and values for
//! representative op chains.

use mfaplace_autograd::gradcheck::assert_grads_close;
use mfaplace_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_mul_chain(data in tensor_strategy(6), data2 in tensor_strategy(6)) {
        let a = Tensor::from_vec(vec![2, 3], data).unwrap();
        let b = Tensor::from_vec(vec![2, 3], data2).unwrap();
        assert_grads_close(&[a, b], 1e-2, 5e-2, |g, v| {
            let m = g.mul(v[0], v[1]);
            let s = g.sigmoid(m);
            g.mean(s)
        });
    }

    #[test]
    fn grad_matmul_random(data in tensor_strategy(6), data2 in tensor_strategy(8)) {
        let a = Tensor::from_vec(vec![3, 2], data).unwrap();
        let b = Tensor::from_vec(vec![2, 4], data2).unwrap();
        assert_grads_close(&[a, b], 1e-2, 5e-2, |g, v| {
            let m = g.matmul(v[0], v[1]);
            let m2 = g.mul(m, m);
            g.mean(m2)
        });
    }

    #[test]
    fn grad_softmax_random(data in tensor_strategy(8)) {
        let a = Tensor::from_vec(vec![2, 4], data).unwrap();
        assert_grads_close(&[a], 1e-2, 5e-2, |g, v| {
            let s = g.softmax_last(v[0]);
            let s2 = g.mul(s, s);
            g.mean(s2)
        });
    }

    #[test]
    fn grad_conv_random(data in tensor_strategy(2 * 16), wdata in tensor_strategy(3 * 2 * 9)) {
        let x = Tensor::from_vec(vec![1, 2, 4, 4], data).unwrap();
        let w = Tensor::from_vec(vec![3, 2, 3, 3], wdata).unwrap();
        assert_grads_close(&[x, w], 1e-2, 6e-2, |g, v| {
            let y = g.conv2d(v[0], v[1], 1, 1);
            let y2 = g.mul(y, y);
            g.mean(y2)
        });
    }

    #[test]
    fn grad_layernorm_random(data in tensor_strategy(12)) {
        let x = Tensor::from_vec(vec![3, 4], data).unwrap();
        let gamma = Tensor::ones(vec![4]);
        let beta = Tensor::zeros(vec![4]);
        assert_grads_close(&[x, gamma, beta], 1e-2, 8e-2, |g, v| {
            let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
            let y2 = g.mul(y, y);
            g.mean(y2)
        });
    }

    #[test]
    fn grad_cross_entropy_random(data in tensor_strategy(3 * 4), labels in proptest::collection::vec(0u8..3, 4)) {
        let x = Tensor::from_vec(vec![1, 3, 2, 2], data).unwrap();
        assert_grads_close(&[x], 1e-2, 5e-2, |g, v| {
            g.cross_entropy2d(v[0], &labels, None)
        });
    }
}
