//! Randomized gradient checks: fixed-seed random shapes and values for
//! representative op chains, driven by the in-tree `mfaplace_rt::check`
//! harness (16 cases per property, shrink-free with case logging).

use mfaplace_autograd::gradcheck::assert_grads_close;
use mfaplace_rt::check::{run_cases, vec_f32};
use mfaplace_tensor::Tensor;

const CASES: usize = 16;

#[test]
fn grad_mul_chain() {
    run_cases("grad_mul_chain", CASES, 0xA6_01, |_case, rng| {
        let a = Tensor::from_vec(vec![2, 3], vec_f32(rng, 6, -2.0, 2.0)).unwrap();
        let b = Tensor::from_vec(vec![2, 3], vec_f32(rng, 6, -2.0, 2.0)).unwrap();
        assert_grads_close(&[a, b], 1e-2, 5e-2, |g, v| {
            let m = g.mul(v[0], v[1]);
            let s = g.sigmoid(m);
            g.mean(s)
        });
    });
}

#[test]
fn grad_matmul_random() {
    run_cases("grad_matmul_random", CASES, 0xA6_02, |_case, rng| {
        let a = Tensor::from_vec(vec![3, 2], vec_f32(rng, 6, -2.0, 2.0)).unwrap();
        let b = Tensor::from_vec(vec![2, 4], vec_f32(rng, 8, -2.0, 2.0)).unwrap();
        assert_grads_close(&[a, b], 1e-2, 5e-2, |g, v| {
            let m = g.matmul(v[0], v[1]);
            let m2 = g.mul(m, m);
            g.mean(m2)
        });
    });
}

#[test]
fn grad_softmax_random() {
    run_cases("grad_softmax_random", CASES, 0xA6_03, |_case, rng| {
        let a = Tensor::from_vec(vec![2, 4], vec_f32(rng, 8, -2.0, 2.0)).unwrap();
        assert_grads_close(&[a], 1e-2, 5e-2, |g, v| {
            let s = g.softmax_last(v[0]);
            let s2 = g.mul(s, s);
            g.mean(s2)
        });
    });
}

#[test]
fn grad_conv_random() {
    run_cases("grad_conv_random", CASES, 0xA6_04, |_case, rng| {
        let x = Tensor::from_vec(vec![1, 2, 4, 4], vec_f32(rng, 2 * 16, -2.0, 2.0)).unwrap();
        let w = Tensor::from_vec(vec![3, 2, 3, 3], vec_f32(rng, 3 * 2 * 9, -2.0, 2.0)).unwrap();
        assert_grads_close(&[x, w], 1e-2, 6e-2, |g, v| {
            let y = g.conv2d(v[0], v[1], 1, 1);
            let y2 = g.mul(y, y);
            g.mean(y2)
        });
    });
}

#[test]
fn grad_layernorm_random() {
    run_cases("grad_layernorm_random", CASES, 0xA6_05, |_case, rng| {
        let x = Tensor::from_vec(vec![3, 4], vec_f32(rng, 12, -2.0, 2.0)).unwrap();
        let gamma = Tensor::ones(vec![4]);
        let beta = Tensor::zeros(vec![4]);
        assert_grads_close(&[x, gamma, beta], 1e-2, 8e-2, |g, v| {
            let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
            let y2 = g.mul(y, y);
            g.mean(y2)
        });
    });
}

#[test]
fn grad_cross_entropy_random() {
    run_cases("grad_cross_entropy_random", CASES, 0xA6_06, |_case, rng| {
        let x = Tensor::from_vec(vec![1, 3, 2, 2], vec_f32(rng, 3 * 4, -2.0, 2.0)).unwrap();
        let labels = mfaplace_rt::check::vec_u8(rng, 4, 0, 3);
        assert_grads_close(&[x], 1e-2, 5e-2, |g, v| {
            g.cross_entropy2d(v[0], &labels, None)
        });
    });
}
