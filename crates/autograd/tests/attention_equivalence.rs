//! Randomized bitwise equivalence of the fused attention / transpose-aware
//! bmm graph ops against the composed op chains they replace.
//!
//! The contract (same one PR 1 established for parallel kernels): for every
//! shape — including odd lengths that are not multiples of the attention
//! tile and batch·head counts above one — the fused forward value and all
//! input gradients must be **bit-for-bit** equal to recording the composed
//! `permute → bmm → scale → softmax_last → bmm` chain on the same tape.

use mfaplace_autograd::{Graph, Var};
use mfaplace_rt::check::{run_cases, vec_f32};
use mfaplace_rt::rng::StdRng;
use mfaplace_tensor::Tensor;

fn rand_tensor(rng: &mut StdRng, shape: Vec<usize>) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, vec_f32(rng, n, -1.5, 1.5)).expect("rand tensor")
}

fn assert_bitwise(label: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Seeds a non-trivial upstream gradient: `loss = Σ (y ⊙ w)` with a random
/// constant `w`, so `d loss / d y = w` on both tapes.
fn weighted_sum_loss(g: &mut Graph, y: Var, w: &Tensor) -> Var {
    let wc = g.constant(w.clone());
    let prod = g.mul(y, wc);
    g.sum(prod)
}

fn grad(g: &Graph, v: Var) -> Tensor {
    g.grad(v).cloned().expect("gradient present")
}

#[test]
fn fused_tm_attention_matches_composed_bitwise() {
    // Odd L (not a multiple of ATTN_TILE = 32), rectangular Lq/Lk, B·H > 1,
    // odd head dims, and one size large enough for the tiled parallel path.
    let shapes: &[(usize, usize, usize, usize, usize)] = &[
        (1, 3, 5, 4, 2),
        (2, 7, 7, 3, 3),
        (3, 33, 17, 5, 7),
        (1, 129, 129, 16, 16),
    ];
    run_cases("fused_tm_attention", 12, 0xA77E_0001, |case, rng| {
        let (b, lq, lk, d, dv) = shapes[case % shapes.len()];
        let scale = if case % 2 == 0 { 1.0 } else { 0.37 };
        let q = rand_tensor(rng, vec![b, lq, d]);
        let k = rand_tensor(rng, vec![b, lk, d]);
        let v = rand_tensor(rng, vec![b, lk, dv]);
        let w = rand_tensor(rng, vec![b, lq, dv]);

        let mut gf = Graph::new();
        let (qf, kf, vf) = (
            gf.param(q.clone()),
            gf.param(k.clone()),
            gf.param(v.clone()),
        );
        let yf = gf.attention(qf, kf, vf, scale);
        let lf = weighted_sum_loss(&mut gf, yf, &w);
        gf.backward(lf);

        let mut gc = Graph::new();
        let (qc, kc, vc) = (gc.param(q), gc.param(k), gc.param(v));
        let kt = gc.permute(kc, &[0, 2, 1]);
        let scores = gc.bmm(qc, kt);
        let scaled = gc.scale(scores, scale);
        let attn = gc.softmax_last(scaled);
        let yc = gc.bmm(attn, vc);
        let lc = weighted_sum_loss(&mut gc, yc, &w);
        gc.backward(lc);

        assert_bitwise("tm value", gf.value(yf), gc.value(yc));
        assert_bitwise("tm dq", &grad(&gf, qf), &grad(&gc, qc));
        assert_bitwise("tm dk", &grad(&gf, kf), &grad(&gc, kc));
        assert_bitwise("tm dv", &grad(&gf, vf), &grad(&gc, vc));
    });
}

#[test]
fn fused_fm_attention_matches_composed_bitwise() {
    let shapes: &[(usize, usize, usize, usize)] =
        &[(1, 2, 3, 5), (2, 3, 3, 33), (1, 4, 2, 100), (2, 5, 5, 49)];
    run_cases("fused_fm_attention", 12, 0xA77E_0002, |case, rng| {
        let (b, n, nv, l) = shapes[case % shapes.len()];
        let scale = if case % 2 == 0 { 1.0 } else { 0.61 };
        let q = rand_tensor(rng, vec![b, n, l]);
        let k = rand_tensor(rng, vec![b, n, l]);
        let v = rand_tensor(rng, vec![b, nv, l]);
        let w = rand_tensor(rng, vec![b, nv, l]);

        let mut gf = Graph::new();
        let (qf, kf, vf) = (
            gf.param(q.clone()),
            gf.param(k.clone()),
            gf.param(v.clone()),
        );
        let yf = gf.attention_fm(qf, kf, vf, scale);
        let lf = weighted_sum_loss(&mut gf, yf, &w);
        gf.backward(lf);

        // The composed PAM chain: scores from kᵀ·q, transposed row-softmax,
        // output v·pᵀ.
        let mut gc = Graph::new();
        let (qc, kc, vc) = (gc.param(q), gc.param(k), gc.param(v));
        let bt = gc.permute(kc, &[0, 2, 1]);
        let e = gc.bmm(bt, qc);
        let scaled = gc.scale(e, scale);
        let et = gc.permute(scaled, &[0, 2, 1]);
        let p = gc.softmax_last(et);
        let pt = gc.permute(p, &[0, 2, 1]);
        let yc = gc.bmm(vc, pt);
        let lc = weighted_sum_loss(&mut gc, yc, &w);
        gc.backward(lc);

        assert_bitwise("fm value", gf.value(yf), gc.value(yc));
        assert_bitwise("fm dq", &grad(&gf, qf), &grad(&gc, qc));
        assert_bitwise("fm dk", &grad(&gf, kf), &grad(&gc, kc));
        assert_bitwise("fm dv", &grad(&gf, vf), &grad(&gc, vc));
    });
}

#[test]
fn fused_aliased_self_attention_matches_composed_bitwise() {
    // CAM's q = k = v aliasing: all three gradient contributions land in
    // ONE accumulator, so the fused backward must add them in the composed
    // order (v, then k, then q) on top of the residual for bitwise equality.
    run_cases("fused_aliased_attention", 8, 0xA77E_0003, |case, rng| {
        let (b, n, l) = [(1, 3, 7), (2, 5, 9), (1, 8, 33), (2, 4, 4)][case % 4];
        let m = rand_tensor(rng, vec![b, n, l]);
        let w = rand_tensor(rng, vec![b, n, l]);

        let mut gf = Graph::new();
        let mf = gf.param(m.clone());
        let att_f = gf.attention(mf, mf, mf, 1.0);
        let out_f = gf.add(att_f, mf); // residual, like CamBlock
        let lf = weighted_sum_loss(&mut gf, out_f, &w);
        gf.backward(lf);

        let mut gc = Graph::new();
        let mc = gc.param(m);
        let mt = gc.permute(mc, &[0, 2, 1]);
        let e = gc.bmm(mc, mt);
        let et = gc.permute(e, &[0, 2, 1]);
        let c = gc.softmax_last(et);
        let att_c = gc.bmm(c, mc);
        let out_c = gc.add(att_c, mc);
        let lc = weighted_sum_loss(&mut gc, out_c, &w);
        gc.backward(lc);

        assert_bitwise("aliased value", gf.value(out_f), gc.value(out_c));
        assert_bitwise("aliased dm", &grad(&gf, mf), &grad(&gc, mc));
    });
}

#[test]
fn bmm_nt_tn_match_permuted_bmm_bitwise() {
    run_cases("bmm_transpose_aware", 10, 0xA77E_0004, |case, rng| {
        let (b, m, k, n) = [(1, 2, 3, 4), (3, 7, 5, 9), (2, 33, 17, 11)][case % 3];
        let a = rand_tensor(rng, vec![b, m, k]);
        let bt = rand_tensor(rng, vec![b, n, k]); // "b transposed" layout
        let w = rand_tensor(rng, vec![b, m, n]);

        // nt: a · bᵀ vs bmm(a, permute(bᵀ)).
        let mut gf = Graph::new();
        let (af, bf) = (gf.param(a.clone()), gf.param(bt.clone()));
        let yf = gf.bmm_nt(af, bf);
        let lf = weighted_sum_loss(&mut gf, yf, &w);
        gf.backward(lf);

        let mut gc = Graph::new();
        let (ac, bc) = (gc.param(a.clone()), gc.param(bt.clone()));
        let bp = gc.permute(bc, &[0, 2, 1]);
        let yc = gc.bmm(ac, bp);
        let lc = weighted_sum_loss(&mut gc, yc, &w);
        gc.backward(lc);

        assert_bitwise("nt value", gf.value(yf), gc.value(yc));
        assert_bitwise("nt da", &grad(&gf, af), &grad(&gc, ac));
        assert_bitwise("nt db", &grad(&gf, bf), &grad(&gc, bc));

        // tn: aᵀ · b vs bmm(permute(aᵀ), b).
        let at = rand_tensor(rng, vec![b, k, m]);
        let bb = rand_tensor(rng, vec![b, k, n]);
        let mut gf = Graph::new();
        let (af, bf) = (gf.param(at.clone()), gf.param(bb.clone()));
        let yf = gf.bmm_tn(af, bf);
        let lf = weighted_sum_loss(&mut gf, yf, &w);
        gf.backward(lf);

        let mut gc = Graph::new();
        let (ac, bc) = (gc.param(at), gc.param(bb));
        let ap = gc.permute(ac, &[0, 2, 1]);
        let yc = gc.bmm(ap, bc);
        let lc = weighted_sum_loss(&mut gc, yc, &w);
        gc.backward(lc);

        assert_bitwise("tn value", gf.value(yf), gc.value(yc));
        assert_bitwise("tn da", &grad(&gf, af), &grad(&gc, ac));
        assert_bitwise("tn db", &grad(&gf, bf), &grad(&gc, bc));
    });
}

#[test]
fn buffer_pool_recycles_across_mark_forward_truncate() {
    let mut g = Graph::new();
    let p = g.param(Tensor::from_vec(vec![4, 4], vec![0.25; 16]).unwrap());
    let mut first_out: Option<Vec<f32>> = None;
    for step in 0..4 {
        let mark = g.mark();
        let x = g.constant(Tensor::from_vec(vec![4, 4], vec![1.0; 16]).unwrap());
        let y = g.matmul(x, p);
        let z = g.relu(y);
        match &first_out {
            None => first_out = Some(g.value(z).data().to_vec()),
            Some(expect) => {
                // Recycling must be bitwise-invisible: identical inputs give
                // identical outputs whether storage came from the allocator
                // or the free list.
                assert_eq!(g.value(z).data(), &expect[..], "step {step} differs");
            }
        }
        g.truncate(mark);
    }
    let (hits, misses, bytes, retained) = g.pool_stats();
    assert!(hits > 0, "free list never hit (misses={misses})");
    assert!(bytes > 0, "no bytes recycled");
    assert!(retained > 0, "truncate retained nothing");
}

#[test]
fn no_grad_mode_drops_requires_grad_and_conv_cols() {
    let mut g = Graph::new();
    let w = g.param(Tensor::from_vec(vec![2, 3, 3, 3], vec![0.1; 54]).unwrap());
    g.set_grad_enabled(false);
    assert!(!g.grad_enabled());
    let x = g.constant(Tensor::from_vec(vec![1, 3, 8, 8], vec![0.5; 192]).unwrap());
    let y = g.conv2d(x, w, 1, 1);
    let s = g.sum(y);
    // Nothing recorded grads, so backward must leave the param untouched.
    g.backward(s);
    assert!(g.grad(w).is_none(), "no-grad forward produced a gradient");
    // The dropped im2col lowering went straight to the pool.
    let (_, _, _, retained) = g.pool_stats();
    assert!(retained > 0, "conv cols were not recycled in no-grad mode");
    // Re-enabling restores normal training behavior.
    g.set_grad_enabled(true);
    let x2 = g.constant(Tensor::from_vec(vec![1, 3, 8, 8], vec![0.5; 192]).unwrap());
    let y2 = g.conv2d(x2, w, 1, 1);
    let s2 = g.sum(y2);
    g.backward(s2);
    assert!(g.grad(w).is_some(), "grad mode did not restore");
}
