use mfaplace_tensor::{
    attention_fm_backward, attention_fm_into, attention_tm_backward, attention_tm_into, numel,
    Tensor,
};

use crate::recycle::BufferPool;

/// Handle to a node in a [`Graph`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the graph
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw tape index (stable for persistent parameters).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Clone)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    Matmul(Var, Var),
    Bmm(Var, Var),
    BmmNT(Var, Var),
    BmmTN(Var, Var),
    Attention {
        q: Var,
        k: Var,
        v: Var,
        scale: f32,
        feature_major: bool,
    },
    Conv2d {
        x: Var,
        w: Var,
        stride: usize,
        pad: usize,
        /// im2col lowering, retained only when the op requires grad — the
        /// inference path drops it (recycled into the buffer pool) instead
        /// of keeping `C·KH·KW × B·OH·OW` floats alive per conv.
        cols: Option<Tensor>,
    },
    AddBiasChannel(Var, Var),
    AddBiasRow(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Sigmoid(Var),
    Gelu(Var),
    BatchNorm2d {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Tensor,
        inv_std: Vec<f32>,
    },
    ChannelAffine {
        x: Var,
        scale: Vec<f32>,
        /// Backward only needs `scale`; `shift` rides the node so the plan
        /// capture can reconstruct the full affine.
        shift: Vec<f32>,
    },
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Tensor,
        inv_std: Vec<f32>,
        /// Backward reads `inv_std`; `eps` rides the node for plan capture.
        eps: f32,
    },
    SoftmaxLast(Var),
    CrossEntropy2d {
        logits: Var,
        labels: Vec<u8>,
        class_weights: Option<Vec<f32>>,
        probs: Tensor,
        weight_sum: f32,
    },
    MseLoss {
        pred: Var,
        target: Tensor,
    },
    Reshape(Var),
    Permute {
        x: Var,
        axes: Vec<usize>,
    },
    ConcatChannels(Vec<Var>),
    SliceChannels {
        x: Var,
        c0: usize,
        c1: usize,
    },
    Upsample2x(Var),
    MaxPool2x2 {
        x: Var,
        arg: Vec<usize>,
    },
    Mean(Var),
    Sum(Var),
    MulScalarVar(Var, Var),
}

#[derive(Clone)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    requires_grad: bool,
}

/// Arena tape holding values, gradients and the recorded operations.
///
/// See the [crate-level documentation](crate) for the usage pattern.
///
/// `Graph` is `Clone`: a clone is an independent tape whose `Var` handles
/// coincide with the original's — cloning a params-only graph is how the
/// data-parallel trainer builds worker-local replicas that accept the same
/// parameter `Var`s as the primary.
#[derive(Clone)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Size-keyed free list fed by [`Graph::truncate`]/[`Graph::zero_grads`]
    /// and drained by the forward ops — mark/forward/truncate loops stop
    /// round-tripping activations through the allocator. Cloned graphs
    /// (trainer replicas) start with an empty pool.
    pool: BufferPool,
    /// When `false`, every pushed node records `requires_grad = false`, so
    /// backward-only storage (conv `cols`) is dropped at creation. The
    /// inference `Predictor` disables grads after building its model.
    grad_enabled: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.len())
    }
}

impl Graph {
    /// Creates an empty graph (gradients enabled).
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            pool: BufferPool::default(),
            grad_enabled: true,
        }
    }

    /// Enables or disables gradient recording for subsequently pushed
    /// nodes. With grads disabled every new node has
    /// `requires_grad = false` and ops skip retaining backward-only
    /// storage (the conv `cols` buffers); existing nodes are untouched, so
    /// a predictor can build its parameters first and then switch the
    /// graph to inference mode.
    pub fn set_grad_enabled(&mut self, enabled: bool) {
        self.grad_enabled = enabled;
    }

    /// Whether new nodes currently record gradients.
    pub fn grad_enabled(&self) -> bool {
        self.grad_enabled
    }

    /// Buffer-pool counters `(hits, misses, recycled_bytes, retained)`.
    pub fn pool_stats(&self) -> (u64, u64, u64, usize) {
        (
            self.pool.hits(),
            self.pool.misses(),
            self.pool.recycled_bytes(),
            self.pool.retained(),
        )
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad: requires_grad && self.grad_enabled,
        });
        Var(self.nodes.len() - 1)
    }

    /// Pooled elementwise map: same results as `Tensor::map`, storage from
    /// the free list.
    fn pooled_map(&mut self, x: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let n = self.nodes[x.0].value.numel();
        let mut buf = self.pool.take_any(n);
        let xv = &self.nodes[x.0].value;
        for (o, &s) in buf.iter_mut().zip(xv.data()) {
            *o = f(s);
        }
        Tensor::from_vec(xv.shape().to_vec(), buf).expect("pooled map")
    }

    /// Pooled elementwise zip of two same-shape nodes.
    fn pooled_zip(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let n = self.nodes[a.0].value.numel();
        let mut buf = self.pool.take_any(n);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "elementwise shape mismatch");
        for ((o, &x), &y) in buf.iter_mut().zip(av.data()).zip(bv.data()) {
            *o = f(x, y);
        }
        Tensor::from_vec(av.shape().to_vec(), buf).expect("pooled zip")
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Inserts a trainable leaf (a parameter). Persistent across truncation
    /// as long as it was created before the mark.
    pub fn param(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// Inserts a non-trainable leaf (an input or constant).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Mutable access to a node's value (used by optimizers on parameters).
    pub fn value_mut(&mut self, v: Var) -> &mut Tensor {
        &mut self.nodes[v.0].value
    }

    /// The accumulated gradient of a node, if any was produced by
    /// [`Graph::backward`].
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Clears all gradients (recycling their storage).
    pub fn zero_grads(&mut self) {
        for n in &mut self.nodes {
            if let Some(g) = n.grad.take() {
                self.pool.give(g.into_vec());
            }
        }
    }

    /// Overwrites a node's gradient accumulator directly.
    ///
    /// This is the injection point for externally-combined gradients: a
    /// data-parallel trainer runs backward on worker replicas, tree-reduces
    /// the per-shard gradients, and stores the result here so a stock
    /// optimizer `step` on this graph sees them as if `backward` had run.
    ///
    /// # Panics
    ///
    /// Panics if `g` is `Some` with a shape different from the node value.
    pub fn set_grad(&mut self, v: Var, g: Option<Tensor>) {
        if let Some(t) = &g {
            assert_eq!(
                t.shape(),
                self.nodes[v.0].value.shape(),
                "set_grad shape mismatch"
            );
        }
        self.nodes[v.0].grad = g;
    }

    /// Returns a mark for later [`Graph::truncate`].
    pub fn mark(&self) -> usize {
        self.nodes.len()
    }

    /// Drops every node created after `mark`, freeing per-step activations
    /// while keeping parameters created before the mark.
    ///
    /// # Panics
    ///
    /// Panics if `mark` exceeds the current length.
    pub fn truncate(&mut self, mark: usize) {
        assert!(mark <= self.nodes.len(), "truncate beyond tape length");
        for node in self.nodes.drain(mark..) {
            match node.op {
                Op::Conv2d {
                    cols: Some(cols), ..
                } => self.pool.give(cols.into_vec()),
                Op::BatchNorm2d { xhat, .. } | Op::LayerNorm { xhat, .. } => {
                    self.pool.give(xhat.into_vec());
                }
                Op::CrossEntropy2d { probs, .. } => self.pool.give(probs.into_vec()),
                Op::MseLoss { target, .. } => self.pool.give(target.into_vec()),
                _ => {}
            }
            if let Some(g) = node.grad {
                self.pool.give(g.into_vec());
            }
            self.pool.give(node.value.into_vec());
        }
        self.pool.flush_counters();
    }

    // ----------------------------------------------------------------- ops

    /// Element-wise sum of two same-shape nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.pooled_zip(a, b, |x, y| x + y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.pooled_zip(a, b, |x, y| x - y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Element-wise product of two same-shape nodes.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.pooled_zip(a, b, |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.pooled_map(a, |x| -x);
        let rg = self.rg(a);
        self.push(v, Op::Neg(a), rg)
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.pooled_map(a, |x| x * c);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, c), rg)
    }

    /// Addition of a compile-time scalar.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.pooled_map(a, |x| x + c);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a), rg)
    }

    /// 2-D matrix product `[m,k] x [k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, n) = (self.value(a).shape()[0], self.value(b).shape()[1]);
        let mut out = self.pool.take_any(m * n);
        self.nodes[a.0]
            .value
            .matmul2d_into(&self.nodes[b.0].value, &mut out);
        let v = Tensor::from_vec(vec![m, n], out).expect("matmul out");
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Matmul(a, b), rg)
    }

    /// Batched matrix product `[b,m,k] x [b,k,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).bmm(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Bmm(a, b), rg)
    }

    /// Batched transpose-aware product `a · bᵀ`:
    /// `[b,m,k] x [b,n,k] -> [b,m,n]`, bitwise identical to
    /// `bmm(a, permute(b, [0,2,1]))` without materializing the permuted
    /// copy.
    pub fn bmm_nt(&mut self, a: Var, b: Var) -> Var {
        let (ba, m) = (self.value(a).shape()[0], self.value(a).shape()[1]);
        let n = self.value(b).shape()[1];
        let mut out = self.pool.take_any(ba * m * n);
        self.nodes[a.0]
            .value
            .bmm_nt_into(&self.nodes[b.0].value, &mut out);
        let v = Tensor::from_vec(vec![ba, m, n], out).expect("bmm_nt out");
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::BmmNT(a, b), rg)
    }

    /// Batched transpose-aware product `aᵀ · b`:
    /// `[b,k,m] x [b,k,n] -> [b,m,n]`, bitwise identical to
    /// `bmm(permute(a, [0,2,1]), b)` without materializing the permuted
    /// copy.
    pub fn bmm_tn(&mut self, a: Var, b: Var) -> Var {
        let (ba, m) = (self.value(a).shape()[0], self.value(a).shape()[2]);
        let n = self.value(b).shape()[2];
        let mut out = self.pool.take_any(ba * m * n);
        self.nodes[a.0]
            .value
            .bmm_tn_into(&self.nodes[b.0].value, &mut out);
        let v = Tensor::from_vec(vec![ba, m, n], out).expect("bmm_tn out");
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::BmmTN(a, b), rg)
    }

    /// Fused token-major attention `softmax(q·kᵀ·scale)·v` for
    /// `q: [B,Lq,D]`, `k: [B,Lk,D]`, `v: [B,Lk,Dv]`.
    ///
    /// Forward streams query row-tiles (the `[Lq, Lk]` score/softmax
    /// matrices are never materialized — peak activation memory drops from
    /// `O(L²)` to `O(tile·L)`), and backward recomputes score rows instead
    /// of storing the softmax on the tape. Output and all three gradients
    /// are bitwise identical to the composed
    /// `permute → bmm → scale → softmax_last → bmm` chain, including when
    /// `q`, `k`, `v` alias the same node (gradient contributions accumulate
    /// in the composed order: v, then k, then q).
    pub fn attention(&mut self, q: Var, k: Var, v: Var, scale: f32) -> Var {
        let (b, lq) = (self.value(q).shape()[0], self.value(q).shape()[1]);
        let dv = self.value(v).shape()[2];
        // Zero-filled: the fused kernel accumulates output rows in place.
        let mut out = self.pool.take(b * lq * dv);
        attention_tm_into(
            &self.nodes[q.0].value,
            &self.nodes[k.0].value,
            &self.nodes[v.0].value,
            scale,
            &mut out,
        );
        let val = Tensor::from_vec(vec![b, lq, dv], out).expect("attention out");
        let rg = self.rg(q) || self.rg(k) || self.rg(v);
        self.push(
            val,
            Op::Attention {
                q,
                k,
                v,
                scale,
                feature_major: false,
            },
            rg,
        )
    }

    /// Fused feature-major attention for `q, k: [B,D,L]`, `v: [B,Dv,L]`
    /// (the PAM position-attention layout: channels outermost, attention
    /// over spatial positions).
    ///
    /// `out[b,c,y] = Σ_x softmax_x(Σ_p q[b,p,y]·k[b,p,x]·scale) · v[b,c,x]`,
    /// bitwise identical to the composed PAM chain
    /// `bmm(kᵀ, q) → permute → softmax_last → permute → bmm(v, ·)`.
    pub fn attention_fm(&mut self, q: Var, k: Var, v: Var, scale: f32) -> Var {
        let (b, l) = (self.value(q).shape()[0], self.value(q).shape()[2]);
        let nv = self.value(v).shape()[1];
        let mut out = self.pool.take_any(b * nv * l);
        attention_fm_into(
            &self.nodes[q.0].value,
            &self.nodes[k.0].value,
            &self.nodes[v.0].value,
            scale,
            &mut out,
        );
        let val = Tensor::from_vec(vec![b, nv, l], out).expect("attention_fm out");
        let rg = self.rg(q) || self.rg(k) || self.rg(v);
        self.push(
            val,
            Op::Attention {
                q,
                k,
                v,
                scale,
                feature_major: true,
            },
            rg,
        )
    }

    /// 2-D convolution of `x: [B,C,H,W]` with `w: [OC,C,KH,KW]`.
    pub fn conv2d(&mut self, x: Var, w: Var, stride: usize, pad: usize) -> Var {
        let (kh, kw) = {
            let ws = self.value(w).shape();
            assert_eq!(ws.len(), 4, "conv2d weight must be [OC,C,KH,KW]");
            (ws[2], ws[3])
        };
        let (b, c, h, wd) = self.value(x).dims4();
        let (oh, ow) = mfaplace_tensor_conv_out(h, wd, kh, kw, stride, pad);
        let ohow = oh * ow;
        let oc = self.value(w).shape()[0];
        let ckk = self.value(w).numel() / oc;
        // im2col relies on zero-initialized padding cells, so the lowering
        // buffer comes from the zeroing pool entry point.
        let mut cols_buf = self.pool.take(c * kh * kw * b * ohow);
        self.nodes[x.0]
            .value
            .im2col_into(kh, kw, stride, pad, &mut cols_buf);
        let cols =
            Tensor::from_vec(vec![c * kh * kw, b * ohow], cols_buf).expect("conv2d cols shape");
        let wm = self
            .value(w)
            .reshape(vec![oc, ckk])
            .expect("conv2d weight reshape");
        let mut y_mat = self.pool.take_any(oc * b * ohow);
        wm.matmul2d_into(&cols, &mut y_mat); // [OC, B*OH*OW]
                                             // reorder [OC, B, OH*OW] -> [B, OC, OH*OW]
        let mut out = self.pool.take_any(oc * b * ohow);
        for ocx in 0..oc {
            for bi in 0..b {
                let src = &y_mat[(ocx * b + bi) * ohow..(ocx * b + bi + 1) * ohow];
                out[(bi * oc + ocx) * ohow..(bi * oc + ocx + 1) * ohow].copy_from_slice(src);
            }
        }
        self.pool.give(y_mat);
        let v = Tensor::from_vec(vec![b, oc, oh, ow], out).expect("conv2d output");
        let rg = (self.rg(x) || self.rg(w)) && self.grad_enabled;
        // The lowering is backward-only state: on the inference path it is
        // recycled immediately instead of riding the tape node.
        let cols = if rg {
            Some(cols)
        } else {
            self.pool.give(cols.into_vec());
            None
        };
        self.push(
            v,
            Op::Conv2d {
                x,
                w,
                stride,
                pad,
                cols,
            },
            rg,
        )
    }

    /// Adds a per-channel bias `b: [C]` to `x: [B,C,H,W]`.
    pub fn add_bias_channel(&mut self, x: Var, b: Var) -> Var {
        let (bs, c, h, w) = self.value(x).dims4();
        assert_eq!(self.value(b).shape(), &[c], "bias shape mismatch");
        let mut out = self.pool.take_any(self.value(x).numel());
        out.copy_from_slice(self.value(x).data());
        let bias = self.value(b).data().to_vec();
        for bi in 0..bs {
            for ci in 0..c {
                for o in &mut out[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w] {
                    *o += bias[ci];
                }
            }
        }
        let v = Tensor::from_vec(vec![bs, c, h, w], out).expect("bias output");
        let rg = self.rg(x) || self.rg(b);
        self.push(v, Op::AddBiasChannel(x, b), rg)
    }

    /// Adds a bias `b: [D]` to the last axis of `x: [..., D]`.
    pub fn add_bias_row(&mut self, x: Var, b: Var) -> Var {
        let d = *self.value(x).shape().last().expect("rank >= 1");
        assert_eq!(self.value(b).shape(), &[d], "row bias shape mismatch");
        let bias = self.value(b).data().to_vec();
        let mut out = self.pool.take_any(self.value(x).numel());
        out.copy_from_slice(self.value(x).data());
        for row in out.chunks_mut(d) {
            for (o, &bv) in row.iter_mut().zip(&bias) {
                *o += bv;
            }
        }
        let v = Tensor::from_vec(self.value(x).shape().to_vec(), out).expect("row bias output");
        let rg = self.rg(x) || self.rg(b);
        self.push(v, Op::AddBiasRow(x, b), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.pooled_map(x, |a| a.max(0.0));
        let rg = self.rg(x);
        self.push(v, Op::Relu(x), rg)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        let v = self.pooled_map(x, |a| if a > 0.0 { a } else { slope * a });
        let rg = self.rg(x);
        self.push(v, Op::LeakyRelu(x, slope), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.pooled_map(x, |a| 1.0 / (1.0 + (-a).exp()));
        let rg = self.rg(x);
        self.push(v, Op::Sigmoid(x), rg)
    }

    /// GELU activation (tanh approximation), used in transformer MLPs.
    pub fn gelu(&mut self, x: Var) -> Var {
        let v = self.pooled_map(x, gelu_fwd);
        let rg = self.rg(x);
        self.push(v, Op::Gelu(x), rg)
    }

    /// Batch normalization over `(B, H, W)` per channel using batch
    /// statistics, with affine parameters `gamma, beta: [C]`.
    ///
    /// Returns the normalized output plus the per-channel batch mean and
    /// variance (for running-statistic tracking by the layer).
    pub fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    ) -> (Var, Vec<f32>, Vec<f32>) {
        let (b, c, h, w) = self.value(x).dims4();
        let n = (b * h * w) as f32;
        let src = self.nodes[x.0].value.data();
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for bi in 0..b {
            for ci in 0..c {
                for &v in &src[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w] {
                    mean[ci] += v;
                }
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        for bi in 0..b {
            for ci in 0..c {
                for &v in &src[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w] {
                    let d = v - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= n;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = self.pool.take_any(src.len());
        let g = self.value(gamma).data().to_vec();
        let be = self.value(beta).data().to_vec();
        let mut out = self.pool.take_any(src.len());
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for k in 0..h * w {
                    let xh = (src[base + k] - mean[ci]) * inv_std[ci];
                    xhat[base + k] = xh;
                    out[base + k] = g[ci] * xh + be[ci];
                }
            }
        }
        let xhat = Tensor::from_vec(vec![b, c, h, w], xhat).expect("bn xhat");
        let v = Tensor::from_vec(vec![b, c, h, w], out).expect("bn out");
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        let var_out = var.clone();
        let node = self.push(
            v,
            Op::BatchNorm2d {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
            rg,
        );
        (node, mean, var_out)
    }

    /// Per-channel affine transform `y = scale_c * x + shift_c` with
    /// *constant* (non-differentiable) coefficients — the inference-mode form
    /// of batch normalization with running statistics folded in.
    pub fn channel_affine(&mut self, x: Var, scale: Vec<f32>, shift: Vec<f32>) -> Var {
        let (b, c, h, w) = self.value(x).dims4();
        assert_eq!(scale.len(), c, "channel_affine scale length");
        assert_eq!(shift.len(), c, "channel_affine shift length");
        let src = self.nodes[x.0].value.data();
        let mut out = self.pool.take_any(src.len());
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                for k in 0..h * w {
                    out[base + k] = scale[ci] * src[base + k] + shift[ci];
                }
            }
        }
        let v = Tensor::from_vec(vec![b, c, h, w], out).expect("affine out");
        let rg = self.rg(x);
        self.push(v, Op::ChannelAffine { x, scale, shift }, rg)
    }

    /// Layer normalization over the last axis with affine `gamma, beta: [D]`.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let d = *self.value(x).shape().last().expect("rank >= 1");
        let src = self.nodes[x.0].value.data();
        let rows = src.len() / d;
        let g = self.value(gamma).data().to_vec();
        let be = self.value(beta).data().to_vec();
        let mut xhat = self.pool.take_any(src.len());
        let mut out = self.pool.take_any(src.len());
        let mut inv_std = vec![0.0f32; rows];
        // Dispatched kernel shared with the plan executor: scalar backend
        // is the verbatim reference loop, vector backends vectorize the
        // row reductions (see `mfaplace_tensor::simd`).
        mfaplace_tensor::layer_norm_rows(
            src,
            &g,
            &be,
            eps,
            d,
            &mut out,
            Some(&mut xhat),
            Some(&mut inv_std),
        );
        let xhat = Tensor::from_vec(self.value(x).shape().to_vec(), xhat).expect("ln xhat");
        let v = Tensor::from_vec(self.value(x).shape().to_vec(), out).expect("ln out");
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        self.push(
            v,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
                eps,
            },
            rg,
        )
    }

    /// Softmax over the last axis.
    pub fn softmax_last(&mut self, x: Var) -> Var {
        let v = self.value(x).softmax_lastdim();
        let rg = self.rg(x);
        self.push(v, Op::SoftmaxLast(x), rg)
    }

    /// Pixel-wise multi-class cross entropy between `logits: [B,K,H,W]` and
    /// integer `labels` (length `B*H*W`, values `< K`), optionally weighted
    /// per class. Returns a scalar loss node.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes or out-of-range labels.
    pub fn cross_entropy2d(
        &mut self,
        logits: Var,
        labels: &[u8],
        class_weights: Option<&[f32]>,
    ) -> Var {
        self.cross_entropy2d_impl(logits, labels, class_weights, true)
    }

    /// Un-normalized variant of [`Graph::cross_entropy2d`]: the node value
    /// is the **weighted loss sum** (not divided by the weight sum), and
    /// backward propagates the upstream gradient unscaled.
    ///
    /// This is the per-shard loss of the data-parallel trainer: each shard
    /// contributes its loss sum, the trainer divides by a weight
    /// denominator it computes serially from the labels (see
    /// [`Graph::backward_seeded`]), so the combined gradient is independent
    /// of how samples were sharded.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes or out-of-range labels.
    pub fn cross_entropy2d_sum(
        &mut self,
        logits: Var,
        labels: &[u8],
        class_weights: Option<&[f32]>,
    ) -> Var {
        self.cross_entropy2d_impl(logits, labels, class_weights, false)
    }

    fn cross_entropy2d_impl(
        &mut self,
        logits: Var,
        labels: &[u8],
        class_weights: Option<&[f32]>,
        normalize: bool,
    ) -> Var {
        let (b, k, h, w) = self.value(logits).dims4();
        assert_eq!(labels.len(), b * h * w, "label count mismatch");
        if let Some(cw) = class_weights {
            assert_eq!(cw.len(), k, "class weight count mismatch");
        }
        let src = self.nodes[logits.0].value.data();
        let hw = h * w;
        let mut probs = self.pool.take_any(src.len());
        let mut loss = 0.0f64;
        let mut weight_sum = 0.0f64;
        for bi in 0..b {
            for p in 0..hw {
                // softmax over k at pixel p
                let mut m = f32::NEG_INFINITY;
                for ki in 0..k {
                    m = m.max(src[(bi * k + ki) * hw + p]);
                }
                let mut z = 0.0f32;
                for ki in 0..k {
                    let e = (src[(bi * k + ki) * hw + p] - m).exp();
                    probs[(bi * k + ki) * hw + p] = e;
                    z += e;
                }
                let y = labels[bi * hw + p] as usize;
                assert!(y < k, "label {y} out of range for {k} classes");
                let wgt = class_weights.map_or(1.0, |cw| cw[y]);
                let py = probs[(bi * k + y) * hw + p] / z;
                loss += wgt as f64 * -(py.max(1e-12).ln() as f64);
                weight_sum += wgt as f64;
                for ki in 0..k {
                    probs[(bi * k + ki) * hw + p] /= z;
                }
            }
        }
        let weight_sum = if normalize {
            weight_sum.max(1e-12) as f32
        } else {
            1.0
        };
        let v = Tensor::scalar((loss / weight_sum as f64) as f32);
        let probs = Tensor::from_vec(vec![b, k, h, w], probs).expect("ce probs");
        let rg = self.rg(logits);
        self.push(
            v,
            Op::CrossEntropy2d {
                logits,
                labels: labels.to_vec(),
                class_weights: class_weights.map(<[f32]>::to_vec),
                probs,
                weight_sum,
            },
            rg,
        )
    }

    /// Mean-squared-error loss against a constant target of the same shape.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        assert_eq!(
            self.value(pred).shape(),
            target.shape(),
            "mse target shape mismatch"
        );
        let diff = self.value(pred).sub(target);
        let v = Tensor::scalar(diff.sq_norm() / diff.numel().max(1) as f32);
        let rg = self.rg(pred);
        self.push(
            v,
            Op::MseLoss {
                pred,
                target: target.clone(),
            },
            rg,
        )
    }

    /// Reshape (element count preserved).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, x: Var, shape: Vec<usize>) -> Var {
        assert_eq!(
            numel(&shape),
            self.value(x).numel(),
            "reshape element mismatch"
        );
        let mut buf = self.pool.take_any(self.nodes[x.0].value.numel());
        buf.copy_from_slice(self.nodes[x.0].value.data());
        let v = Tensor::from_vec(shape, buf).expect("reshape");
        let rg = self.rg(x);
        self.push(v, Op::Reshape(x), rg)
    }

    /// General axis permutation.
    pub fn permute(&mut self, x: Var, axes: &[usize]) -> Var {
        let v = self.value(x).permute(axes);
        let rg = self.rg(x);
        self.push(
            v,
            Op::Permute {
                x,
                axes: axes.to_vec(),
            },
            rg,
        )
    }

    /// Channel-axis concatenation of rank-4 nodes.
    pub fn concat_channels(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_channels(&tensors);
        let rg = parts.iter().any(|&p| self.rg(p));
        self.push(v, Op::ConcatChannels(parts.to_vec()), rg)
    }

    /// Extracts channels `[c0, c1)` of a rank-4 node.
    pub fn slice_channels(&mut self, x: Var, c0: usize, c1: usize) -> Var {
        let v = self.value(x).slice_channels(c0, c1);
        let rg = self.rg(x);
        self.push(v, Op::SliceChannels { x, c0, c1 }, rg)
    }

    /// Nearest-neighbour 2× upsampling.
    pub fn upsample2x(&mut self, x: Var) -> Var {
        let v = self.value(x).upsample2x();
        let rg = self.rg(x);
        self.push(v, Op::Upsample2x(x), rg)
    }

    /// 2×2 max pooling with stride 2.
    pub fn maxpool2x2(&mut self, x: Var) -> Var {
        let (v, arg) = self.value(x).maxpool2x2();
        let rg = self.rg(x);
        self.push(v, Op::MaxPool2x2 { x, arg }, rg)
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, x: Var) -> Var {
        let v = Tensor::scalar(self.value(x).mean());
        let rg = self.rg(x);
        self.push(v, Op::Mean(x), rg)
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, x: Var) -> Var {
        let v = Tensor::scalar(self.value(x).sum());
        let rg = self.rg(x);
        self.push(v, Op::Sum(x), rg)
    }

    /// Broadcast product with a single-element node (e.g. the learnable
    /// `alpha`/`beta` of the PAM/CAM blocks).
    pub fn mul_scalar_var(&mut self, x: Var, s: Var) -> Var {
        assert_eq!(self.value(s).numel(), 1, "scalar var must hold one element");
        let sv = self.value(s).item();
        let v = self.pooled_map(x, |a| a * sv);
        let rg = self.rg(x) || self.rg(s);
        self.push(v, Op::MulScalarVar(x, s), rg)
    }

    // ------------------------------------------------------------ backward

    /// Runs reverse-mode differentiation from a scalar `loss` node,
    /// accumulating gradients into every node with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        self.backward_seeded(loss, 1.0);
    }

    /// Read-only access to a node value by raw tape index (the plan
    /// capture walks exported [`TapeOp`] operand indices, which are raw
    /// `usize`s rather than `Var` handles).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value_at(&self, index: usize) -> &Tensor {
        &self.nodes[index].value
    }

    /// Exports the tape segment `[from, len)` as a list of [`TapeNode`]s —
    /// the capture hook of the compiled inference plan (`mfaplace-infer`).
    ///
    /// Operand indices are raw tape indices; indices `< from` refer to
    /// pre-existing leaves (parameters), indices `>= from` to nodes inside
    /// the segment (including constants materialized mid-forward, e.g. the
    /// PGNN aggregation kernels). Returns `Err` naming the offending op if
    /// the segment contains a training-only op that has no inference-plan
    /// equivalent (batch-stats BatchNorm, losses, reductions, `add_scalar`
    /// whose scalar is not recorded on the tape).
    pub fn export_segment(&self, from: usize) -> Result<Vec<TapeNode>, String> {
        assert!(from <= self.nodes.len(), "export beyond tape length");
        let mut out = Vec::with_capacity(self.nodes.len() - from);
        for (i, node) in self.nodes.iter().enumerate().skip(from) {
            let op = match &node.op {
                Op::Leaf => TapeOp::Leaf,
                Op::Add(a, b) => TapeOp::Add(a.0, b.0),
                Op::Sub(a, b) => TapeOp::Sub(a.0, b.0),
                Op::Mul(a, b) => TapeOp::Mul(a.0, b.0),
                Op::Neg(a) => TapeOp::Neg(a.0),
                Op::Scale(a, c) => TapeOp::Scale(a.0, *c),
                Op::Matmul(a, b) => TapeOp::Matmul(a.0, b.0),
                Op::Bmm(a, b) => TapeOp::Bmm(a.0, b.0),
                Op::BmmNT(a, b) => TapeOp::BmmNT(a.0, b.0),
                Op::BmmTN(a, b) => TapeOp::BmmTN(a.0, b.0),
                Op::Attention {
                    q,
                    k,
                    v,
                    scale,
                    feature_major,
                } => TapeOp::Attention {
                    q: q.0,
                    k: k.0,
                    v: v.0,
                    scale: *scale,
                    feature_major: *feature_major,
                },
                Op::Conv2d {
                    x, w, stride, pad, ..
                } => TapeOp::Conv2d {
                    x: x.0,
                    w: w.0,
                    stride: *stride,
                    pad: *pad,
                },
                Op::AddBiasChannel(x, b) => TapeOp::AddBiasChannel(x.0, b.0),
                Op::AddBiasRow(x, b) => TapeOp::AddBiasRow(x.0, b.0),
                Op::Relu(x) => TapeOp::Relu(x.0),
                Op::LeakyRelu(x, s) => TapeOp::LeakyRelu(x.0, *s),
                Op::Sigmoid(x) => TapeOp::Sigmoid(x.0),
                Op::Gelu(x) => TapeOp::Gelu(x.0),
                Op::ChannelAffine { x, scale, shift } => TapeOp::ChannelAffine {
                    x: x.0,
                    scale: scale.clone(),
                    shift: shift.clone(),
                },
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    eps,
                    ..
                } => TapeOp::LayerNorm {
                    x: x.0,
                    gamma: gamma.0,
                    beta: beta.0,
                    eps: *eps,
                },
                Op::SoftmaxLast(x) => TapeOp::SoftmaxLast(x.0),
                Op::Reshape(x) => TapeOp::Reshape(x.0),
                Op::Permute { x, axes } => TapeOp::Permute {
                    x: x.0,
                    axes: axes.clone(),
                },
                Op::ConcatChannels(parts) => {
                    TapeOp::ConcatChannels(parts.iter().map(|p| p.0).collect())
                }
                Op::SliceChannels { x, c0, c1 } => TapeOp::SliceChannels {
                    x: x.0,
                    c0: *c0,
                    c1: *c1,
                },
                Op::Upsample2x(x) => TapeOp::Upsample2x(x.0),
                Op::MaxPool2x2 { x, .. } => TapeOp::MaxPool2x2(x.0),
                Op::MulScalarVar(x, s) => TapeOp::MulScalarVar(x.0, s.0),
                Op::AddScalar(_) => {
                    return Err(format!(
                        "node {i}: add_scalar is not plan-exportable (scalar not on the tape)"
                    ))
                }
                Op::BatchNorm2d { .. } => {
                    return Err(format!(
                        "node {i}: batch-stats batch_norm2d is training-only; \
                         inference forwards record channel_affine instead"
                    ))
                }
                Op::CrossEntropy2d { .. } => {
                    return Err(format!("node {i}: cross_entropy2d is training-only"))
                }
                Op::MseLoss { .. } => return Err(format!("node {i}: mse_loss is training-only")),
                Op::Mean(_) => return Err(format!("node {i}: mean reduction is training-only")),
                Op::Sum(_) => return Err(format!("node {i}: sum reduction is training-only")),
            };
            out.push(TapeNode {
                index: i,
                shape: node.value.shape().to_vec(),
                op,
            });
        }
        Ok(out)
    }

    /// [`Graph::backward`] with an explicit seed gradient `d(out)/d(loss)`
    /// instead of `1.0`.
    ///
    /// Seeding with a reciprocal denominator turns a loss-**sum** node
    /// (e.g. [`Graph::cross_entropy2d_sum`]) into the exact gradient of
    /// `sum / denom` without adding the division to the tape — the
    /// data-parallel trainer uses this with a denominator computed serially
    /// over the whole minibatch so per-shard gradients are shard-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward_seeded(&mut self, loss: Var, seed: f32) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        let seed = Tensor::from_vec(self.nodes[loss.0].value.shape().to_vec(), vec![seed])
            .expect("seed gradient");
        accum_into(&mut self.nodes[loss.0], seed);
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad || self.nodes[i].grad.is_none() {
                continue;
            }
            let (parents, me) = self.nodes.split_at_mut(i);
            let node = &mut me[0];
            let dy = node.grad.as_ref().expect("checked above").clone();
            backward_op(node, &dy, parents);
        }
    }
}

/// Adds `g` into a node's gradient accumulator (if it requires grad).
fn accum(parents: &mut [Node], v: Var, g: Tensor) {
    if parents[v.0].requires_grad {
        accum_into(&mut parents[v.0], g);
    }
}

fn accum_into(node: &mut Node, g: Tensor) {
    match &mut node.grad {
        Some(acc) => acc.add_scaled_assign(&g, 1.0),
        slot @ None => *slot = Some(g),
    }
}

/// Forward GELU nonlinearity (tanh approximation), public so the plan
/// executor applies the exact same per-element arithmetic as the tape's
/// `Gelu` node — sharing the function is what keeps the compiled plan
/// bitwise identical to the recorded forward.
pub fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

fn mfaplace_tensor_conv_out(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    (
        (h + 2 * pad - kh) / stride + 1,
        (w + 2 * pad - kw) / stride + 1,
    )
}

#[allow(clippy::too_many_lines)]
fn backward_op(node: &Node, dy: &Tensor, parents: &mut [Node]) {
    match &node.op {
        Op::Leaf => {}
        Op::Add(a, b) => {
            accum(parents, *a, dy.clone());
            accum(parents, *b, dy.clone());
        }
        Op::Sub(a, b) => {
            accum(parents, *a, dy.clone());
            accum(parents, *b, dy.scale(-1.0));
        }
        Op::Mul(a, b) => {
            let ga = dy.mul(&parents[b.0].value);
            let gb = dy.mul(&parents[a.0].value);
            accum(parents, *a, ga);
            accum(parents, *b, gb);
        }
        Op::Neg(a) => accum(parents, *a, dy.scale(-1.0)),
        Op::Scale(a, c) => accum(parents, *a, dy.scale(*c)),
        Op::AddScalar(a) => accum(parents, *a, dy.clone()),
        Op::Matmul(a, b) => {
            let av = &parents[a.0].value;
            let bv = &parents[b.0].value;
            // Transpose-aware kernels: bitwise identical to
            // dy·bᵀ / aᵀ·dy via materialized transposes, without the copies.
            let ga = dy.matmul2d_nt(bv);
            let gb = av.matmul2d_tn(dy);
            accum(parents, *a, ga);
            accum(parents, *b, gb);
        }
        Op::Bmm(a, b) => {
            let av = &parents[a.0].value;
            let bv = &parents[b.0].value;
            let ga = dy.bmm_nt(bv);
            let gb = av.bmm_tn(dy);
            accum(parents, *a, ga);
            accum(parents, *b, gb);
        }
        Op::BmmNT(a, b) => {
            // y = a·bᵀ ⇒ da = dy·b, db = dyᵀ·a.
            let av = &parents[a.0].value;
            let bv = &parents[b.0].value;
            let ga = dy.bmm(bv);
            let gb = dy.bmm_tn(av);
            accum(parents, *a, ga);
            accum(parents, *b, gb);
        }
        Op::BmmTN(a, b) => {
            // y = aᵀ·b ⇒ da = b·dyᵀ, db = a·dy.
            let av = &parents[a.0].value;
            let bv = &parents[b.0].value;
            let ga = bv.bmm_nt(dy);
            let gb = av.bmm(dy);
            accum(parents, *a, ga);
            accum(parents, *b, gb);
        }
        Op::Attention {
            q,
            k,
            v,
            scale,
            feature_major,
        } => {
            let (dq, dk, dv) = if *feature_major {
                attention_fm_backward(
                    &parents[q.0].value,
                    &parents[k.0].value,
                    &parents[v.0].value,
                    *scale,
                    dy,
                )
            } else {
                attention_tm_backward(
                    &parents[q.0].value,
                    &parents[k.0].value,
                    &parents[v.0].value,
                    *scale,
                    dy,
                )
            };
            // Accumulation order v, k, q replicates the composed chain's
            // backward sequence (softmax·v bmm, then the key permute, then
            // the score bmm), which is what makes gradients bitwise
            // identical when q/k/v alias one node (CAM's self-attention).
            accum(parents, *v, dv);
            accum(parents, *k, dk);
            accum(parents, *q, dq);
        }
        Op::Conv2d {
            x,
            w,
            stride,
            pad,
            cols,
        } => {
            let (b, oc, oh, ow) = node.value.dims4();
            let (xb, c, h, wd) = parents[x.0].value.dims4();
            debug_assert_eq!(b, xb);
            let (kh, kw) = {
                let ws = parents[w.0].value.shape();
                (ws[2], ws[3])
            };
            let ohow = oh * ow;
            // reorder dy [B,OC,OH,OW] -> dy_mat [OC, B*OH*OW]
            let mut dym = vec![0.0f32; dy.numel()];
            for bi in 0..b {
                for ocx in 0..oc {
                    let src = &dy.data()[(bi * oc + ocx) * ohow..(bi * oc + ocx + 1) * ohow];
                    dym[(ocx * b + bi) * ohow..(ocx * b + bi + 1) * ohow].copy_from_slice(src);
                }
            }
            let dym = Tensor::from_vec(vec![oc, b * ohow], dym).expect("conv dym");
            let cols = cols
                .as_ref()
                .expect("conv2d cols retained for grad-requiring ops");
            if parents[w.0].requires_grad {
                let dwm = dym.matmul2d_nt(cols);
                let dw = dwm.reshaped(vec![oc, c, kh, kw]);
                accum(parents, *w, dw);
            }
            if parents[x.0].requires_grad {
                let ckk = c * kh * kw;
                let wm = parents[w.0].value.reshape(vec![oc, ckk]).expect("conv wm");
                let dcols = wm.matmul2d_tn(&dym);
                let dx = dcols.col2im(b, c, h, wd, kh, kw, *stride, *pad);
                accum(parents, *x, dx);
            }
        }
        Op::AddBiasChannel(x, bias) => {
            let (b, c, h, w) = node.value.dims4();
            if parents[bias.0].requires_grad {
                let mut db = vec![0.0f32; c];
                for bi in 0..b {
                    for (ci, dbv) in db.iter_mut().enumerate() {
                        for &g in &dy.data()[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w] {
                            *dbv += g;
                        }
                    }
                }
                accum(
                    parents,
                    *bias,
                    Tensor::from_vec(vec![c], db).expect("bias grad"),
                );
            }
            accum(parents, *x, dy.clone());
        }
        Op::AddBiasRow(x, bias) => {
            let d = *node.value.shape().last().expect("rank >= 1");
            if parents[bias.0].requires_grad {
                let mut db = vec![0.0f32; d];
                for row in dy.data().chunks(d) {
                    for (acc, &g) in db.iter_mut().zip(row) {
                        *acc += g;
                    }
                }
                accum(
                    parents,
                    *bias,
                    Tensor::from_vec(vec![d], db).expect("row bias grad"),
                );
            }
            accum(parents, *x, dy.clone());
        }
        Op::Relu(x) => {
            let xv = &parents[x.0].value;
            let g = dy.zip_map(xv, |g, x| if x > 0.0 { g } else { 0.0 });
            accum(parents, *x, g);
        }
        Op::LeakyRelu(x, slope) => {
            let xv = &parents[x.0].value;
            let s = *slope;
            let g = dy.zip_map(xv, |g, x| if x > 0.0 { g } else { s * g });
            accum(parents, *x, g);
        }
        Op::Sigmoid(x) => {
            let g = dy.zip_map(&node.value, |g, s| g * s * (1.0 - s));
            accum(parents, *x, g);
        }
        Op::Gelu(x) => {
            let xv = &parents[x.0].value;
            let g = dy.zip_map(xv, |g, x| g * gelu_bwd(x));
            accum(parents, *x, g);
        }
        Op::BatchNorm2d {
            x,
            gamma,
            beta,
            xhat,
            inv_std,
        } => {
            let (b, c, h, w) = node.value.dims4();
            let n = (b * h * w) as f32;
            let gval = parents[gamma.0].value.data().to_vec();
            let mut dgamma = vec![0.0f32; c];
            let mut dbeta = vec![0.0f32; c];
            let mut sum_dxhat = vec![0.0f32; c];
            let mut sum_dxhat_xhat = vec![0.0f32; c];
            for bi in 0..b {
                for ci in 0..c {
                    let base = (bi * c + ci) * h * w;
                    for k in 0..h * w {
                        let g = dy.data()[base + k];
                        let xh = xhat.data()[base + k];
                        dgamma[ci] += g * xh;
                        dbeta[ci] += g;
                        let dxh = g * gval[ci];
                        sum_dxhat[ci] += dxh;
                        sum_dxhat_xhat[ci] += dxh * xh;
                    }
                }
            }
            if parents[x.0].requires_grad {
                let mut dx = vec![0.0f32; dy.numel()];
                for bi in 0..b {
                    for ci in 0..c {
                        let base = (bi * c + ci) * h * w;
                        for k in 0..h * w {
                            let g = dy.data()[base + k];
                            let xh = xhat.data()[base + k];
                            let dxh = g * gval[ci];
                            dx[base + k] = inv_std[ci] / n
                                * (n * dxh - sum_dxhat[ci] - xh * sum_dxhat_xhat[ci]);
                        }
                    }
                }
                accum(
                    parents,
                    *x,
                    Tensor::from_vec(vec![b, c, h, w], dx).expect("bn dx"),
                );
            }
            accum(
                parents,
                *gamma,
                Tensor::from_vec(vec![c], dgamma).expect("bn dgamma"),
            );
            accum(
                parents,
                *beta,
                Tensor::from_vec(vec![c], dbeta).expect("bn dbeta"),
            );
        }
        Op::ChannelAffine { x, scale, .. } => {
            let (b, c, h, w) = node.value.dims4();
            let mut dx = vec![0.0f32; dy.numel()];
            for bi in 0..b {
                for (ci, &sc) in scale.iter().enumerate() {
                    let base = (bi * c + ci) * h * w;
                    for k in 0..h * w {
                        dx[base + k] = dy.data()[base + k] * sc;
                    }
                }
            }
            accum(
                parents,
                *x,
                Tensor::from_vec(vec![b, c, h, w], dx).expect("affine dx"),
            );
        }
        Op::LayerNorm {
            x,
            gamma,
            beta,
            xhat,
            inv_std,
            ..
        } => {
            let d = *node.value.shape().last().expect("rank >= 1");
            let rows = node.value.numel() / d;
            let gval = parents[gamma.0].value.data().to_vec();
            let mut dgamma = vec![0.0f32; d];
            let mut dbeta = vec![0.0f32; d];
            let mut dx = vec![0.0f32; dy.numel()];
            for r in 0..rows {
                let mut sum_dxh = 0.0f32;
                let mut sum_dxh_xh = 0.0f32;
                for k in 0..d {
                    let g = dy.data()[r * d + k];
                    let xh = xhat.data()[r * d + k];
                    dgamma[k] += g * xh;
                    dbeta[k] += g;
                    let dxh = g * gval[k];
                    sum_dxh += dxh;
                    sum_dxh_xh += dxh * xh;
                }
                for k in 0..d {
                    let g = dy.data()[r * d + k];
                    let xh = xhat.data()[r * d + k];
                    let dxh = g * gval[k];
                    dx[r * d + k] =
                        inv_std[r] / d as f32 * (d as f32 * dxh - sum_dxh - xh * sum_dxh_xh);
                }
            }
            if parents[x.0].requires_grad {
                accum(
                    parents,
                    *x,
                    Tensor::from_vec(node.value.shape().to_vec(), dx).expect("ln dx"),
                );
            }
            accum(
                parents,
                *gamma,
                Tensor::from_vec(vec![d], dgamma).expect("ln dgamma"),
            );
            accum(
                parents,
                *beta,
                Tensor::from_vec(vec![d], dbeta).expect("ln dbeta"),
            );
        }
        Op::SoftmaxLast(x) => {
            let s = &node.value;
            let d = *s.shape().last().expect("rank >= 1");
            let mut dx = vec![0.0f32; s.numel()];
            for (r, (srow, grow)) in s.data().chunks(d).zip(dy.data().chunks(d)).enumerate() {
                let dot: f32 = srow.iter().zip(grow).map(|(&a, &b)| a * b).sum();
                for k in 0..d {
                    dx[r * d + k] = srow[k] * (grow[k] - dot);
                }
            }
            accum(
                parents,
                *x,
                Tensor::from_vec(s.shape().to_vec(), dx).expect("softmax dx"),
            );
        }
        Op::CrossEntropy2d {
            logits,
            labels,
            class_weights,
            probs,
            weight_sum,
        } => {
            let (b, k, h, w) = probs.dims4();
            let hw = h * w;
            let gy = dy.item();
            let mut dx = vec![0.0f32; probs.numel()];
            for bi in 0..b {
                for p in 0..hw {
                    let y = labels[bi * hw + p] as usize;
                    let wgt = class_weights.as_ref().map_or(1.0, |cw| cw[y]);
                    for ki in 0..k {
                        let indicator = if ki == y { 1.0 } else { 0.0 };
                        dx[(bi * k + ki) * hw + p] =
                            gy * wgt * (probs.data()[(bi * k + ki) * hw + p] - indicator)
                                / weight_sum;
                    }
                }
            }
            accum(
                parents,
                *logits,
                Tensor::from_vec(vec![b, k, h, w], dx).expect("ce dx"),
            );
        }
        Op::MseLoss { pred, target } => {
            let n = target.numel().max(1) as f32;
            let gy = dy.item();
            let g = parents[pred.0]
                .value
                .zip_map(target, |p, t| gy * 2.0 * (p - t) / n);
            accum(parents, *pred, g);
        }
        Op::Reshape(x) => {
            let shape = parents[x.0].value.shape().to_vec();
            accum(parents, *x, dy.clone().reshaped(shape));
        }
        Op::Permute { x, axes } => {
            let mut inv = vec![0usize; axes.len()];
            for (i, &a) in axes.iter().enumerate() {
                inv[a] = i;
            }
            accum(parents, *x, dy.permute(&inv));
        }
        Op::ConcatChannels(parts) => {
            let mut c0 = 0usize;
            for &p in parts {
                let pc = parents[p.0].value.shape()[1];
                let g = dy.slice_channels(c0, c0 + pc);
                accum(parents, p, g);
                c0 += pc;
            }
        }
        Op::SliceChannels { x, c0, c1 } => {
            let (b, c, h, w) = parents[x.0].value.dims4();
            let hw = h * w;
            let nc = c1 - c0;
            let mut dx = vec![0.0f32; b * c * hw];
            for bi in 0..b {
                dx[(bi * c + c0) * hw..(bi * c + c1) * hw]
                    .copy_from_slice(&dy.data()[bi * nc * hw..(bi + 1) * nc * hw]);
            }
            accum(
                parents,
                *x,
                Tensor::from_vec(vec![b, c, h, w], dx).expect("slice dx"),
            );
        }
        Op::Upsample2x(x) => {
            accum(parents, *x, dy.downsample2x_sum());
        }
        Op::MaxPool2x2 { x, arg } => {
            let shape = parents[x.0].value.shape().to_vec();
            let mut dx = vec![0.0f32; parents[x.0].value.numel()];
            for (o, &src_idx) in arg.iter().enumerate() {
                dx[src_idx] += dy.data()[o];
            }
            accum(
                parents,
                *x,
                Tensor::from_vec(shape, dx).expect("maxpool dx"),
            );
        }
        Op::Mean(x) => {
            let n = parents[x.0].value.numel().max(1) as f32;
            let g = Tensor::full(parents[x.0].value.shape().to_vec(), dy.item() / n);
            accum(parents, *x, g);
        }
        Op::Sum(x) => {
            let g = Tensor::full(parents[x.0].value.shape().to_vec(), dy.item());
            accum(parents, *x, g);
        }
        Op::MulScalarVar(x, s) => {
            let sv = parents[s.0].value.item();
            if parents[s.0].requires_grad {
                let ds: f32 = dy
                    .data()
                    .iter()
                    .zip(parents[x.0].value.data())
                    .map(|(&g, &xv)| g * xv)
                    .sum();
                accum(
                    parents,
                    *s,
                    Tensor::from_vec(parents[s.0].value.shape().to_vec(), vec![ds])
                        .expect("scalar grad"),
                );
            }
            accum(parents, *x, dy.scale(sv));
        }
    }
}

// ------------------------------------------------------------- plan export

/// Exported view of one tape node's operation, with operands as raw tape
/// indices. Produced by [`Graph::export_segment`] and consumed by the plan
/// compiler in `mfaplace-infer`; tape-internal backward state (conv `cols`,
/// normalization `xhat`, pool argmaxes) is deliberately not exported — the
/// plan re-derives what it needs from shapes.
#[derive(Clone, Debug)]
pub enum TapeOp {
    /// A leaf created inside the segment (an input or a constant
    /// materialized mid-forward, e.g. PGNN's aggregation kernels).
    Leaf,
    /// Elementwise `a + b`.
    Add(usize, usize),
    /// Elementwise `a - b`.
    Sub(usize, usize),
    /// Elementwise `a * b`.
    Mul(usize, usize),
    /// Elementwise negation.
    Neg(usize),
    /// Elementwise `x * c` for a compile-time scalar.
    Scale(usize, f32),
    /// `[m,k] x [k,n]` matrix product.
    Matmul(usize, usize),
    /// Batched `[b,m,k] x [b,k,n]`.
    Bmm(usize, usize),
    /// Batched `a · bᵀ`.
    BmmNT(usize, usize),
    /// Batched `aᵀ · b`.
    BmmTN(usize, usize),
    /// Fused attention (token-major when `feature_major` is false).
    Attention {
        q: usize,
        k: usize,
        v: usize,
        scale: f32,
        feature_major: bool,
    },
    /// 2-D convolution of `x` with weight `w`.
    Conv2d {
        x: usize,
        w: usize,
        stride: usize,
        pad: usize,
    },
    /// Per-channel bias add on a rank-4 tensor.
    AddBiasChannel(usize, usize),
    /// Last-axis bias add.
    AddBiasRow(usize, usize),
    /// Rectified linear unit.
    Relu(usize),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(usize, f32),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// GELU (tanh approximation, [`gelu_fwd`]).
    Gelu(usize),
    /// Constant per-channel affine (inference-mode batch norm).
    ChannelAffine {
        x: usize,
        scale: Vec<f32>,
        shift: Vec<f32>,
    },
    /// Last-axis layer normalization.
    LayerNorm {
        x: usize,
        gamma: usize,
        beta: usize,
        eps: f32,
    },
    /// Softmax over the last axis.
    SoftmaxLast(usize),
    /// Reshape (tape semantics: a copy).
    Reshape(usize),
    /// General axis permutation.
    Permute { x: usize, axes: Vec<usize> },
    /// Channel-axis concatenation.
    ConcatChannels(Vec<usize>),
    /// Channel slice `[c0, c1)`.
    SliceChannels { x: usize, c0: usize, c1: usize },
    /// Nearest-neighbour 2× upsampling.
    Upsample2x(usize),
    /// 2×2 max pooling with stride 2.
    MaxPool2x2(usize),
    /// Broadcast product with a single-element node.
    MulScalarVar(usize, usize),
}

/// One exported tape node: its raw index, output shape, and operation.
#[derive(Clone, Debug)]
pub struct TapeNode {
    /// Raw tape index of this node.
    pub index: usize,
    /// Output shape of the node value.
    pub shape: Vec<usize>,
    /// The recorded operation.
    pub op: TapeOp,
}
