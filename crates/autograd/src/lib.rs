//! Tape-based reverse-mode automatic differentiation for the `mfaplace`
//! deep-learning stack.
//!
//! The design is an *arena tape*: a [`Graph`] owns every node (parameters,
//! constants and intermediate activations) in creation order, which is a
//! topological order of the computation DAG. Backpropagation walks the tape
//! in reverse. Parameters are created once and persist; per-step activations
//! are discarded with [`Graph::truncate`] after each optimizer step:
//!
//! ```
//! use mfaplace_autograd::Graph;
//! use mfaplace_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let w = g.param(Tensor::from_vec(vec![1], vec![3.0])?);
//! for _ in 0..5 {
//!     let mark = g.mark();
//!     let x = g.constant(Tensor::from_vec(vec![1], vec![2.0])?);
//!     let y = g.mul(w, x);           // y = w * x
//!     let loss = g.mean(y);          // dL/dw = x = 2
//!     g.zero_grads();
//!     g.backward(loss);
//!     assert_eq!(g.grad(w).unwrap().data(), &[2.0]);
//!     // gradient step
//!     let gw = g.grad(w).unwrap().clone();
//!     g.value_mut(w).add_scaled_assign(&gw, -0.1);
//!     g.truncate(mark);
//! }
//! # Ok::<(), mfaplace_tensor::TensorError>(())
//! ```
//!
//! Every primitive's gradient is verified against central finite differences
//! in this crate's test-suite (see [`gradcheck`]).

pub mod gradcheck;
mod graph;
mod recycle;

pub use graph::{gelu_fwd, Graph, TapeNode, TapeOp, Var};
pub use recycle::BufferPool;
