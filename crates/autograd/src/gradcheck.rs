//! Numerical gradient checking.
//!
//! [`check`] compares the analytic gradient produced by [`Graph::backward`]
//! against central finite differences for every input tensor, and is the
//! backbone of this crate's correctness tests: each primitive op is verified
//! on randomized inputs.

use mfaplace_tensor::Tensor;

use crate::{Graph, Var};

/// Absolute tolerance floor used by [`assert_grads_close`]; differences
/// below this are attributed to `f32` finite-difference noise.
pub const ATOL: f32 = 2e-3;

/// Result of a gradient check for one input.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Index of the checked input in the `inputs` slice.
    pub input: usize,
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Maximum relative difference (normalized by magnitude).
    pub max_rel_diff: f32,
    /// Maximum of `|a - n| / (ATOL + rtol * max(|a|, |n|))` over elements,
    /// where `rtol` was captured at check time; `<= 1` means pass.
    pub max_violation: f32,
}

/// Checks the gradient of `f` with respect to each input tensor.
///
/// `f` receives a fresh [`Graph`] and the inputs already inserted as
/// parameters, and must return a scalar loss [`Var`]. Returns one
/// [`CheckReport`] per input.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar node.
pub fn check(
    inputs: &[Tensor],
    eps: f32,
    f: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Vec<CheckReport> {
    check_with_rtol(inputs, eps, 3e-2, f)
}

/// Like [`check`], with an explicit relative tolerance used for the
/// `max_violation` statistic.
pub fn check_with_rtol(
    inputs: &[Tensor],
    eps: f32,
    rtol: f32,
    f: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Vec<CheckReport> {
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.param(t.clone())).collect();
    let loss = f(&mut g, &vars);
    g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|&v| {
            g.grad(v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(g.value(v).shape().to_vec()))
        })
        .collect();

    // Numeric pass: central differences per element.
    let eval = |perturbed: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.param(t.clone())).collect();
        let loss = f(&mut g, &vars);
        g.value(loss).item()
    };

    let mut reports = Vec::new();
    for (ii, input) in inputs.iter().enumerate() {
        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        let mut max_violation = 0.0f32;
        for k in 0..input.numel() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[ii].data_mut()[k] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[ii].data_mut()[k] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[ii].data()[k];
            let abs = (a - numeric).abs();
            let scale = a.abs().max(numeric.abs());
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / scale.max(1e-3));
            max_violation = max_violation.max(abs / (ATOL + rtol * scale));
        }
        reports.push(CheckReport {
            input: ii,
            max_abs_diff: max_abs,
            max_rel_diff: max_rel,
            max_violation,
        });
    }
    reports
}

/// Asserts that [`check`] passes with the given relative tolerance.
///
/// # Panics
///
/// Panics (with a diagnostic) if any input's gradient deviates beyond `tol`.
pub fn assert_grads_close(
    inputs: &[Tensor],
    eps: f32,
    tol: f32,
    f: impl Fn(&mut Graph, &[Var]) -> Var,
) {
    for report in check_with_rtol(inputs, eps, tol, f) {
        assert!(
            report.max_violation <= 1.0,
            "gradient check failed for input {}: violation={} (rel={}, abs={})",
            report.input,
            report.max_violation,
            report.max_rel_diff,
            report.max_abs_diff
        );
    }
}
