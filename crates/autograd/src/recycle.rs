//! Size-keyed free-list pool for tape activation buffers.
//!
//! `Graph::truncate` runs once per inference request / train step and used
//! to drop every per-step activation `Vec<f32>` straight to the allocator,
//! only for the next forward to request the same sizes again. The pool
//! keeps truncated storage keyed by element count so the next forward's
//! allocations become free-list pops.
//!
//! Recycling is bitwise-invisible: buffers handed out via [`BufferPool::take`]
//! are zero-filled (several kernels — im2col padding, accumulating
//! attention output — rely on zeroed storage exactly as a fresh
//! `vec![0.0; n]` would provide), and [`BufferPool::take_any`] is reserved
//! for fills that overwrite every element.

use std::collections::HashMap;

/// Retained buffers per size class. Steady-state mark/forward/truncate
/// loops reuse far fewer than this; the cap bounds worst-case retention
/// when shapes churn (e.g. a serve batcher coalescing varying batch sizes).
const MAX_PER_CLASS: usize = 32;

/// Size-keyed free list of `Vec<f32>` buffers with hit/miss counters.
#[derive(Default)]
pub struct BufferPool {
    free: HashMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
    recycled_bytes: u64,
    /// Counters already pushed to `rt::timer`, so flushes emit deltas.
    flushed_hits: u64,
    flushed_misses: u64,
    flushed_bytes: u64,
}

/// A cloned graph (per-shard trainer replicas) starts with an empty pool:
/// retained buffers are working storage, not state worth duplicating.
impl Clone for BufferPool {
    fn clone(&self) -> Self {
        BufferPool::default()
    }
}

impl BufferPool {
    /// Take a **zero-filled** buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pop(len) {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Take a buffer of exactly `len` elements with **unspecified
    /// contents**. Only for fills that overwrite every element.
    pub fn take_any(&mut self, len: usize) -> Vec<f32> {
        self.pop(len).unwrap_or_else(|| vec![0.0; len])
    }

    fn pop(&mut self, len: usize) -> Option<Vec<f32>> {
        if len == 0 {
            return Some(Vec::new());
        }
        match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.hits += 1;
                self.recycled_bytes += (len * std::mem::size_of::<f32>()) as u64;
                Some(buf)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Return a buffer to its size class (dropped if the class is full or
    /// the buffer is empty).
    pub fn give(&mut self, buf: Vec<f32>) {
        let len = buf.len();
        if len == 0 {
            return;
        }
        let class = self.free.entry(len).or_default();
        if class.len() < MAX_PER_CLASS {
            class.push(buf);
        }
    }

    /// Free-list pops that found a buffer.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Free-list pops that fell through to the allocator.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total bytes served from recycled storage.
    pub fn recycled_bytes(&self) -> u64 {
        self.recycled_bytes
    }

    /// Buffers currently retained across all size classes.
    pub fn retained(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Push counter deltas to `rt::timer` (surfaced by `mfaplace-serve`'s
    /// `GET /metrics`). Called once per `Graph::truncate` rather than per
    /// take/give — `timer::count` locks a mutex per call.
    pub fn flush_counters(&mut self) {
        let (dh, dm, db) = (
            self.hits - self.flushed_hits,
            self.misses - self.flushed_misses,
            self.recycled_bytes - self.flushed_bytes,
        );
        if dh > 0 {
            mfaplace_rt::timer::count("graph/pool_hits", dh);
            self.flushed_hits = self.hits;
        }
        if dm > 0 {
            mfaplace_rt::timer::count("graph/pool_misses", dm);
            self.flushed_misses = self.misses;
        }
        if db > 0 {
            mfaplace_rt::timer::count("graph/pool_recycled_bytes", db);
            self.flushed_bytes = self.recycled_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_hits() {
        let mut pool = BufferPool::default();
        let a = pool.take(16);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
        pool.give(a);
        assert_eq!(pool.retained(), 1);
        let b = pool.take(16);
        assert_eq!(pool.hits(), 1);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(pool.recycled_bytes(), 64);
    }

    #[test]
    fn take_zeroes_recycled_contents() {
        let mut pool = BufferPool::default();
        let mut a = pool.take(4);
        a.iter_mut().for_each(|x| *x = 7.0);
        pool.give(a);
        assert!(pool.take(4).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_any_reuses_without_zeroing_guarantee() {
        let mut pool = BufferPool::default();
        let mut a = pool.take_any(8);
        a.iter_mut().for_each(|x| *x = 3.0);
        pool.give(a);
        let b = pool.take_any(8);
        assert_eq!(b.len(), 8);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn size_classes_do_not_cross() {
        let mut pool = BufferPool::default();
        pool.give(vec![1.0; 8]);
        let _ = pool.take(9);
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.retained(), 1);
    }

    #[test]
    fn class_capacity_is_bounded() {
        let mut pool = BufferPool::default();
        for _ in 0..(MAX_PER_CLASS + 10) {
            pool.give(vec![0.0; 4]);
        }
        assert_eq!(pool.retained(), MAX_PER_CLASS);
    }

    #[test]
    fn empty_and_zero_len_are_noops() {
        let mut pool = BufferPool::default();
        pool.give(Vec::new());
        assert_eq!(pool.retained(), 0);
        assert!(pool.take(0).is_empty());
        assert!(pool.take_any(0).is_empty());
    }

    #[test]
    fn clone_starts_empty() {
        let mut pool = BufferPool::default();
        pool.give(vec![0.0; 4]);
        let _ = pool.take(4);
        let cloned = pool.clone();
        assert_eq!(cloned.retained(), 0);
        assert_eq!(cloned.hits(), 0);
        assert_eq!(cloned.misses(), 0);
    }
}
