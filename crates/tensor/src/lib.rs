//! Dense `f32` N-dimensional tensors for the `mfaplace` reproduction.
//!
//! This crate is the numeric foundation of the from-scratch deep-learning
//! stack: a row-major, heap-allocated tensor plus the handful of kernels the
//! congestion-prediction models need (GEMM, im2col convolution lowering,
//! pooling, nearest-neighbour upsampling, reductions, permutation).
//!
//! The offline crate set contains no deep-learning framework, so everything
//! downstream (`mfaplace-autograd`, `mfaplace-nn`, the models) is built on
//! these kernels.
//!
//! # Example
//!
//! ```
//! use mfaplace_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul2d(&b);
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), mfaplace_tensor::TensorError>(())
//! ```

mod attention;
mod error;
pub mod half;
mod init;
mod kernels;
pub mod lowlevel;
pub mod simd;
mod tensor;

pub use attention::{
    attention_fm, attention_fm_backward, attention_fm_backward_with, attention_fm_into,
    attention_fm_slices, attention_fm_slices_with, attention_tm, attention_tm_backward,
    attention_tm_backward_with, attention_tm_into, attention_tm_slices, attention_tm_slices_with,
    softmax_row, ATTN_TILE,
};
pub use error::TensorError;
pub use init::{kaiming_normal, xavier_uniform};
pub use kernels::conv_out_size;
pub use tensor::Tensor;

/// Layer norm over rows of width `d` through the active kernel backend;
/// the tape forward and the plan executor both call this, so tape-vs-plan
/// stays bitwise under every backend. Optional `xhat`/`inv_std` outputs
/// serve the tape backward; filling them never changes `out`. See
/// [`simd::layer_norm_rows_with`] for the per-backend numeric contract.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_rows(
    src: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    d: usize,
    out: &mut [f32],
    xhat: Option<&mut [f32]>,
    inv_std: Option<&mut [f32]>,
) {
    simd::layer_norm_rows_with(simd::active(), src, gamma, beta, eps, d, out, xhat, inv_std);
}

/// Row-major strides for a shape.
///
/// ```
/// assert_eq!(mfaplace_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Number of elements implied by a shape.
///
/// ```
/// assert_eq!(mfaplace_tensor::numel(&[2, 3, 4]), 24);
/// assert_eq!(mfaplace_tensor::numel(&[]), 1);
/// ```
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}
