//! Software IEEE 754 binary16 ("half") conversions.
//!
//! The quantized inference plans store attention/softmax-adjacent
//! activations as f16 *bits* inside a byte arena (see `mfaplace-infer`'s
//! `quant` module); Rust has no stable `f16` primitive and the workspace
//! takes no external crates, so the conversions live here as plain bit
//! manipulation. Both directions are deterministic, total functions:
//!
//! - [`f32_to_f16_bits`] rounds to nearest, ties to even — the IEEE
//!   default — and maps overflow to ±inf, underflow to (sub)normals or
//!   ±0, and NaN to a quiet NaN.
//! - [`f16_bits_to_f32`] is exact: every binary16 value (normals,
//!   subnormals, ±inf, NaN) is representable in f32.
//!
//! Round-tripping f16 → f32 → f16 is the identity on every non-NaN bit
//! pattern (asserted by the tests below), which is what makes an f16
//! arena slot a stable storage class: loads and re-stores of an
//! untouched value never drift.

/// Converts an `f32` to IEEE binary16 bits, rounding to nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp32 == 0xff {
        // Inf / NaN. Keep NaN quiet and its payload truncated but nonzero.
        let m = if mant != 0 {
            0x0200 | ((mant >> 13) as u16 & 0x03ff)
        } else {
            0
        };
        return sign | 0x7c00 | m;
    }
    let exp = exp32 - 127 + 15;
    if exp >= 31 {
        return sign | 0x7c00; // overflow -> inf
    }
    if exp <= 0 {
        // Subnormal target (or underflow to zero). The significand with
        // its implicit leading one, shifted into 2^-24 units with RNE.
        if exp < -10 {
            return sign; // below half the smallest subnormal
        }
        let m = mant | 0x0080_0000;
        let shift = (14 - exp) as u32; // 14..=24
        let rounded = (m + (1 << (shift - 1)) - 1 + ((m >> shift) & 1)) >> shift;
        return sign | rounded as u16;
    }
    // Normal: round the 23-bit mantissa to 10 bits (RNE); a mantissa
    // carry-out rolls into the exponent via the addition below, and a
    // roll past exponent 30 correctly lands on the inf encoding.
    let m = mant + 0x0fff + ((mant >> 13) & 1);
    let out = ((exp as u32) << 10) + (m >> 13);
    if out >= 0x7c00 {
        return sign | 0x7c00;
    }
    sign | out as u16
}

/// Converts IEEE binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let mant = u32::from(h & 0x03ff);
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign // ±0
            } else {
                // Subnormal: value = mant * 2^-24 with the top set bit of
                // `mant` at position p = 10 - shift becoming the implicit
                // one, so the biased f32 exponent is p + 103.
                let shift = mant.leading_zeros() - 21; // 1..=10 for mant < 2^10
                let e32 = 113 - shift;
                let m32 = (mant << (13 + shift)) & 0x007f_ffff;
                sign | (e32 << 23) | m32
            }
        }
        31 => sign | 0x7f80_0000 | (mant << 13), // inf / NaN
        _ => sign | ((exp + 112) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Quantizes a slice to f16 bits (RNE per element).
pub fn f32_slice_to_f16(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "f16 store length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16_bits(s);
    }
}

/// Dequantizes a slice of f16 bits to f32 (exact per element).
pub fn f16_slice_to_f32(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "f16 load length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_round_trip() {
        for &(f, h) in &[
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (65504.0, 0x7bff),        // largest finite f16
            (6.103_515_6e-5, 0x0400), // smallest normal
            (5.960_464_5e-8, 0x0001), // smallest subnormal
            (f32::INFINITY, 0x7c00),
            (f32::NEG_INFINITY, 0xfc00),
        ] {
            assert_eq!(f32_to_f16_bits(f), h, "encode {f}");
            assert_eq!(f16_bits_to_f32(h).to_bits(), f.to_bits(), "decode {h:#06x}");
        }
    }

    #[test]
    fn rne_ties_go_to_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next f16; RNE keeps
        // the even mantissa (1.0). One ulp above the tie rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3c00);
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_341), 0x3c01);
        // 1 + 3*2^-11 ties between 0x3c01 and 0x3c02; even wins (0x3c02).
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 0.000_488_281_25), 0x3c02);
    }

    #[test]
    fn overflow_underflow_and_nan() {
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1e9), 0xfc00);
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000);
        assert_eq!(f32_to_f16_bits(-1e-10), 0x8000);
        let n = f16_bits_to_f32(f32_to_f16_bits(f32::NAN));
        assert!(n.is_nan());
    }

    #[test]
    fn all_f16_bit_patterns_round_trip_through_f32() {
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(f)).is_nan());
            } else {
                assert_eq!(f32_to_f16_bits(f), h, "pattern {h:#06x} ({f})");
            }
        }
    }
}
