use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor constructors and reshapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that were required to agree do not.
    ShapeMismatch {
        /// First shape involved.
        left: Vec<usize>,
        /// Second shape involved.
        right: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
        }
    }
}

impl Error for TensorError {}
