//! Compute kernels: GEMM, convolution lowering (im2col/col2im), pooling,
//! upsampling, permutation, concatenation.
//!
//! All kernels are implemented as inherent methods on [`Tensor`] so they are
//! discoverable from the type. Shape preconditions are documented per method
//! and violations panic — these are internal hot paths where a malformed
//! shape is a programming error, not a recoverable condition.
//!
//! # Parallel dispatch and serial equivalence
//!
//! The hot kernels (GEMM, batched GEMM, im2col/col2im, pooling,
//! upsampling) route through [`mfaplace_rt::pool`] when the work exceeds
//! the `PAR_*` thresholds below. Every dispatch splits the **output**
//! buffer into disjoint chunks and keeps the per-element computation —
//! including the order of floating-point accumulation — identical to the
//! serial loop, so results are bitwise identical at any thread count
//! (`MFAPLACE_THREADS=1` vs. N is exact, not approximate). The thresholds
//! keep small tensors on the serial path where thread spawn overhead would
//! dominate.

use mfaplace_rt::pool;

use crate::{strides_for, Tensor};

/// Minimum multiply-add count before a GEMM fans out to the pool.
pub(crate) const PAR_GEMM_FLOPS: usize = 1 << 19;
/// Minimum element count before data-movement kernels (im2col, col2im,
/// pooling, upsampling) fan out to the pool.
const PAR_ELEMS: usize = 1 << 16;

impl Tensor {
    // ------------------------------------------------------------- matmul

    /// Matrix product of `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner dimension.
    pub fn matmul2d(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul2d lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul2d rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul2d inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), other.data(), &mut out, m, k, n, false);
        Tensor::from_vec(vec![m, n], out).expect("matmul2d shape")
    }

    /// Batched matrix product of `[b, m, k] x [b, k, n] -> [b, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-3 with matching batch and inner
    /// dimensions.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank-3");
        assert_eq!(other.rank(), 3, "bmm rhs must be rank-3");
        let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(b, b2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dimension mismatch");
        let mut out = vec![0.0f32; b * m * n];
        // With at least one batch per worker, fan out across batches (each
        // inner GEMM pinned serial to avoid nested spawning); otherwise let
        // the per-batch GEMM decide its own row-level parallelism.
        if b >= pool::max_threads() && b * m * k * n >= PAR_GEMM_FLOPS {
            let (a_data, b_data) = (self.data(), other.data());
            pool::parallel_chunks_mut(&mut out, m * n, |i, chunk| {
                pool::with_threads(1, || {
                    gemm(
                        &a_data[i * m * k..(i + 1) * m * k],
                        &b_data[i * k * n..(i + 1) * k * n],
                        chunk,
                        m,
                        k,
                        n,
                        false,
                    );
                });
            });
        } else {
            for i in 0..b {
                gemm(
                    &self.data()[i * m * k..(i + 1) * m * k],
                    &other.data()[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                    false,
                );
            }
        }
        Tensor::from_vec(vec![b, m, n], out).expect("bmm shape")
    }

    /// [`Tensor::matmul2d`] writing into a caller-provided buffer (any
    /// contents; it is overwritten). This is the allocation-free entry point
    /// used by the autograd tape's buffer pool.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or if `out.len() != m * n`.
    pub fn matmul2d_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.rank(), 2, "matmul2d lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul2d rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul2d inner dimension mismatch");
        assert_eq!(out.len(), m * n, "matmul2d_into output length mismatch");
        gemm(self.data(), other.data(), out, m, k, n, false);
    }

    /// Transpose-aware matrix product `a x b^T`: `[m, k] x [n, k] -> [m, n]`.
    ///
    /// Bitwise identical to `self.matmul2d(&other.transpose2d())` — the
    /// per-element reduction runs over `k` in increasing index order with
    /// the same lhs zero-skip as [`Tensor::matmul2d`] — without
    /// materializing the transposed copy.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching trailing
    /// dimension.
    pub fn matmul2d_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul2d_nt lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul2d_nt rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul2d_nt inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        gemm_nt(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(vec![m, n], out).expect("matmul2d_nt shape")
    }

    /// Transpose-aware matrix product `a^T x b`: `[k, m] x [k, n] -> [m, n]`.
    ///
    /// Bitwise identical to `self.transpose2d().matmul2d(&other)` (same
    /// reduction order and zero-skip on the transposed-lhs element) without
    /// materializing the transposed copy.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching leading
    /// dimension.
    pub fn matmul2d_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul2d_tn lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul2d_tn rhs must be rank-2");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul2d_tn inner dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        gemm_tn(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(vec![m, n], out).expect("matmul2d_tn shape")
    }

    /// Batched `a x b^T`: `[b, m, k] x [b, n, k] -> [b, m, n]`.
    ///
    /// Bitwise identical to `self.bmm(&other.permute(&[0, 2, 1]))` without
    /// materializing the permuted copy.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-3 with matching batch and
    /// trailing dimensions, or if `out.len()` mismatches in the `_into`
    /// variant.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        let (b, m, _) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let n = other.shape()[1];
        let mut out = vec![0.0f32; b * m * n];
        self.bmm_nt_into(other, &mut out);
        Tensor::from_vec(vec![b, m, n], out).expect("bmm_nt shape")
    }

    /// [`Tensor::bmm_nt`] writing into a caller-provided buffer (any
    /// contents; every element is overwritten).
    pub fn bmm_nt_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be rank-3");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be rank-3");
        let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (b2, n, k2) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(b, b2, "bmm_nt batch mismatch");
        assert_eq!(k, k2, "bmm_nt inner dimension mismatch");
        assert_eq!(out.len(), b * m * n, "bmm_nt output length mismatch");
        let (a_data, b_data) = (self.data(), other.data());
        if b >= pool::max_threads() && b * m * k * n >= PAR_GEMM_FLOPS {
            pool::parallel_chunks_mut(out, m * n, |i, chunk| {
                pool::with_threads(1, || {
                    gemm_nt(
                        &a_data[i * m * k..(i + 1) * m * k],
                        &b_data[i * n * k..(i + 1) * n * k],
                        chunk,
                        m,
                        k,
                        n,
                    );
                });
            });
        } else {
            for i in 0..b {
                gemm_nt(
                    &a_data[i * m * k..(i + 1) * m * k],
                    &b_data[i * n * k..(i + 1) * n * k],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
    }

    /// Batched `a^T x b`: `[b, k, m] x [b, k, n] -> [b, m, n]`.
    ///
    /// Bitwise identical to `self.permute(&[0, 2, 1]).bmm(&other)` without
    /// materializing the permuted copy.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-3 with matching batch and
    /// leading dimensions, or if `out.len()` mismatches in the `_into`
    /// variant.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        let (b, m) = (self.shape()[0], self.shape()[2]);
        let n = other.shape()[2];
        let mut out = vec![0.0f32; b * m * n];
        self.bmm_tn_into(other, &mut out);
        Tensor::from_vec(vec![b, m, n], out).expect("bmm_tn shape")
    }

    /// [`Tensor::bmm_tn`] writing into a caller-provided buffer (any
    /// contents; every element is overwritten).
    pub fn bmm_tn_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be rank-3");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be rank-3");
        let (b, k, m) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(b, b2, "bmm_tn batch mismatch");
        assert_eq!(k, k2, "bmm_tn inner dimension mismatch");
        assert_eq!(out.len(), b * m * n, "bmm_tn output length mismatch");
        let (a_data, b_data) = (self.data(), other.data());
        if b >= pool::max_threads() && b * m * k * n >= PAR_GEMM_FLOPS {
            pool::parallel_chunks_mut(out, m * n, |i, chunk| {
                pool::with_threads(1, || {
                    gemm_tn(
                        &a_data[i * k * m..(i + 1) * k * m],
                        &b_data[i * k * n..(i + 1) * k * n],
                        chunk,
                        m,
                        k,
                        n,
                    );
                });
            });
        } else {
            for i in 0..b {
                gemm_tn(
                    &a_data[i * k * m..(i + 1) * k * m],
                    &b_data[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// Cache-blocked: the matrix is walked in `TILE x TILE` tiles so both
    /// the strided reads and the strided writes stay within a tile that
    /// fits in L1, instead of streaming one side with a full-column stride.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-2.
    pub fn transpose2d(&self) -> Tensor {
        const TILE: usize = 32;
        assert_eq!(self.rank(), 2, "transpose2d requires rank-2");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut out = vec![0.0f32; m * n];
        for i0 in (0..m).step_by(TILE) {
            let i1 = (i0 + TILE).min(m);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    for j in j0..j1 {
                        out[j * m + i] = src[i * n + j];
                    }
                }
            }
        }
        Tensor::from_vec(vec![n, m], out).expect("transpose2d shape")
    }

    /// General axis permutation (like `np.transpose`).
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation of `0..rank`.
    pub fn permute(&self, axes: &[usize]) -> Tensor {
        let rank = self.rank();
        assert_eq!(axes.len(), rank, "permute axes rank mismatch");
        let mut seen = vec![false; rank];
        for &a in axes {
            assert!(a < rank && !seen[a], "permute axes must be a permutation");
            seen[a] = true;
        }
        let in_shape = self.shape().to_vec();
        let out_shape: Vec<usize> = axes.iter().map(|&a| in_shape[a]).collect();
        let in_strides = strides_for(&in_shape);
        let out_strides = strides_for(&out_shape);
        let mut out = vec![0.0f32; self.numel()];
        // Walk output indices in order; compute the matching input offset.
        let mut idx = vec![0usize; rank];
        for o in out.iter_mut() {
            let mut src = 0usize;
            for d in 0..rank {
                src += idx[d] * in_strides[axes[d]];
            }
            *o = self.data()[src];
            // increment multi-index
            for d in (0..rank).rev() {
                idx[d] += 1;
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        let _ = out_strides;
        Tensor::from_vec(out_shape, out).expect("permute shape")
    }

    // ------------------------------------------------------ conv lowering

    /// Lowers a `[B, C, H, W]` input to the im2col matrix
    /// `[C*kh*kw, B*oh*ow]` for a convolution with the given kernel, stride
    /// and zero padding.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4 and the output size is positive.
    pub fn im2col(&self, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
        let (b, c, h, w) = self.dims4();
        let (oh, ow) = conv_out_size(h, w, kh, kw, stride, pad);
        let rows = c * kh * kw;
        let cols = b * oh * ow;
        let mut out = vec![0.0f32; rows * cols];
        self.im2col_into(kh, kw, stride, pad, &mut out);
        Tensor::from_vec(vec![rows, cols], out).expect("im2col shape")
    }

    /// [`Tensor::im2col`] writing into a caller-provided buffer.
    ///
    /// `out` **must be zero-filled**: padding positions are never written,
    /// they rely on the zero initialization (a recycled buffer from the
    /// autograd pool is handed out zeroed for exactly this reason).
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4 and `out` has exactly
    /// `C*kh*kw * B*oh*ow` elements.
    pub fn im2col_into(&self, kh: usize, kw: usize, stride: usize, pad: usize, out: &mut [f32]) {
        let (b, c, h, w) = self.dims4();
        im2col_slices(self.data(), b, c, h, w, kh, kw, stride, pad, out);
    }

    /// Inverse of [`Tensor::im2col`]: scatters a `[C*kh*kw, B*oh*ow]` matrix
    /// back into a `[B, C, H, W]` tensor, accumulating overlaps. Used by the
    /// convolution backward pass.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn col2im(
        &self,
        b: usize,
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (oh, ow) = conv_out_size(h, w, kh, kw, stride, pad);
        let rows = c * kh * kw;
        let cols = b * oh * ow;
        assert_eq!(self.shape(), &[rows, cols], "col2im input shape mismatch");
        let mut out = vec![0.0f32; b * c * h * w];
        let src = self.data();
        // Each (batch, channel) image plane accumulates independently; the
        // inner (ki, kj, oi, oj) accumulation order matches the serial
        // loop nest exactly, so results are bitwise identical at any
        // thread count.
        let fill_plane = |bc: usize, plane: &mut [f32]| {
            let bi = bc / c;
            let ci = bc % c;
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = ci * kh * kw + ki * kw + kj;
                    for oi in 0..oh {
                        let iy = (oi * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for oj in 0..ow {
                            let ix = (oj * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = bi * oh * ow + oi * ow + oj;
                            plane[iy * w + ix as usize] += src[row * cols + col];
                        }
                    }
                }
            }
        };
        if b * c * h * w >= PAR_ELEMS {
            pool::parallel_chunks_mut(&mut out, h * w, fill_plane);
        } else {
            for (bc, plane) in out.chunks_mut(h * w).enumerate() {
                fill_plane(bc, plane);
            }
        }
        Tensor::from_vec(vec![b, c, h, w], out).expect("col2im shape")
    }

    // ------------------------------------------------------------ pooling

    /// 2×2 max pooling with stride 2 on a `[B, C, H, W]` tensor with even
    /// `H`, `W`. Returns the pooled tensor and the flat argmax index of each
    /// output element (into the input buffer), for use by the backward pass.
    ///
    /// # Panics
    ///
    /// Panics unless rank-4 with even spatial dimensions.
    pub fn maxpool2x2(&self) -> (Tensor, Vec<usize>) {
        let (b, c, h, w) = self.dims4();
        assert!(h % 2 == 0 && w % 2 == 0, "maxpool2x2 needs even H, W");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; b * c * oh * ow];
        let mut arg = vec![0usize; b * c * oh * ow];
        let src = self.data();
        // Each (batch, channel) plane pools independently; planes fan out
        // to the pool when the tensor is large.
        let pool_plane = |bc: usize, out_plane: &mut [f32], arg_plane: &mut [usize]| {
            let base = bc * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for di in 0..2 {
                        for dj in 0..2 {
                            let idx = base + (oi * 2 + di) * w + (oj * 2 + dj);
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out_plane[oi * ow + oj] = best;
                    arg_plane[oi * ow + oj] = best_idx;
                }
            }
        };
        if b * c * h * w >= PAR_ELEMS {
            pool::parallel_chunks2_mut(&mut out, &mut arg, oh * ow, oh * ow, pool_plane);
        } else {
            for (bc, (out_plane, arg_plane)) in out
                .chunks_mut(oh * ow)
                .zip(arg.chunks_mut(oh * ow))
                .enumerate()
            {
                pool_plane(bc, out_plane, arg_plane);
            }
        }
        (
            Tensor::from_vec(vec![b, c, oh, ow], out).expect("maxpool shape"),
            arg,
        )
    }

    /// Nearest-neighbour 2× upsampling of a `[B, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics unless rank-4.
    pub fn upsample2x(&self) -> Tensor {
        let (b, c, h, w) = self.dims4();
        let mut out = vec![0.0f32; b * c * 4 * h * w];
        let src = self.data();
        let fill_plane = |bc: usize, plane: &mut [f32]| {
            for i in 0..h {
                for j in 0..w {
                    let v = src[bc * h * w + i * w + j];
                    for di in 0..2 {
                        for dj in 0..2 {
                            plane[(i * 2 + di) * 2 * w + (j * 2 + dj)] = v;
                        }
                    }
                }
            }
        };
        if out.len() >= PAR_ELEMS {
            pool::parallel_chunks_mut(&mut out, 4 * h * w, fill_plane);
        } else {
            for (bc, plane) in out.chunks_mut(4 * h * w).enumerate() {
                fill_plane(bc, plane);
            }
        }
        Tensor::from_vec(vec![b, c, 2 * h, 2 * w], out).expect("upsample shape")
    }

    /// Adjoint of [`Tensor::upsample2x`]: sums each 2×2 block of a
    /// `[B, C, 2H, 2W]` tensor into `[B, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics unless rank-4 with even spatial dimensions.
    pub fn downsample2x_sum(&self) -> Tensor {
        let (b, c, h2, w2) = self.dims4();
        assert!(h2 % 2 == 0 && w2 % 2 == 0, "downsample needs even H, W");
        let (h, w) = (h2 / 2, w2 / 2);
        let mut out = vec![0.0f32; b * c * h * w];
        let src = self.data();
        // Per-plane 2x2 block sums; the (i, j) accumulation order within a
        // plane matches the serial loop, keeping results bitwise identical.
        let fill_plane = |bc: usize, plane: &mut [f32]| {
            for i in 0..h2 {
                for j in 0..w2 {
                    plane[(i / 2) * w + j / 2] += src[bc * h2 * w2 + i * w2 + j];
                }
            }
        };
        if src.len() >= PAR_ELEMS {
            pool::parallel_chunks_mut(&mut out, h * w, fill_plane);
        } else {
            for (bc, plane) in out.chunks_mut(h * w).enumerate() {
                fill_plane(bc, plane);
            }
        }
        Tensor::from_vec(vec![b, c, h, w], out).expect("downsample shape")
    }

    // ------------------------------------------------------ concat / split

    /// Concatenates rank-4 tensors along the channel axis (axis 1).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or batch/spatial dimensions differ.
    pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_channels needs at least one part");
        let (b, _, h, w) = parts[0].dims4();
        let total_c: usize = parts
            .iter()
            .map(|p| {
                let (pb, pc, ph, pw) = p.dims4();
                assert_eq!((pb, ph, pw), (b, h, w), "concat_channels dim mismatch");
                pc
            })
            .sum();
        let mut out = vec![0.0f32; b * total_c * h * w];
        let hw = h * w;
        for bi in 0..b {
            let mut c_off = 0usize;
            for p in parts {
                let pc = p.shape()[1];
                let src = &p.data()[bi * pc * hw..(bi + 1) * pc * hw];
                out[(bi * total_c + c_off) * hw..(bi * total_c + c_off + pc) * hw]
                    .copy_from_slice(src);
                c_off += pc;
            }
        }
        Tensor::from_vec(vec![b, total_c, h, w], out).expect("concat shape")
    }

    /// Extracts channels `[c0, c1)` from a rank-4 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless rank-4 and `c0 <= c1 <= C`.
    pub fn slice_channels(&self, c0: usize, c1: usize) -> Tensor {
        let (b, c, h, w) = self.dims4();
        assert!(c0 <= c1 && c1 <= c, "slice_channels out of range");
        let hw = h * w;
        let nc = c1 - c0;
        let mut out = vec![0.0f32; b * nc * hw];
        for bi in 0..b {
            out[bi * nc * hw..(bi + 1) * nc * hw]
                .copy_from_slice(&self.data()[(bi * c + c0) * hw..(bi * c + c1) * hw]);
        }
        Tensor::from_vec(vec![b, nc, h, w], out).expect("slice shape")
    }

    /// Softmax over the last axis. Every row runs through the shared
    /// dispatched [`crate::softmax_row`], so the composed tape op, the
    /// fused attention kernels and the plan executor all use the exact
    /// same per-row arithmetic on every kernel backend.
    pub fn softmax_lastdim(&self) -> Tensor {
        let n = *self.shape().last().expect("softmax needs rank >= 1");
        let mut out = self.data().to_vec();
        if n > 0 {
            for row in out.chunks_mut(n) {
                crate::attention::softmax_row(row);
            }
        }
        Tensor::from_vec(self.shape().to_vec(), out).expect("softmax shape")
    }

    /// Destructures the shape of a rank-4 tensor as `(B, C, H, W)`.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-4.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(
            self.rank(),
            4,
            "expected rank-4 tensor, got {:?}",
            self.shape()
        );
        (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        )
    }
}

/// Output spatial size of a convolution.
pub fn conv_out_size(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    (oh, ow)
}

/// Slice-level [`Tensor::im2col_into`]: lowers a `[B, C, H, W]` slice to the
/// `[C*kh*kw, B*oh*ow]` im2col matrix. `out` **must be zero-filled** (padding
/// positions are never written). Shared verbatim between the autograd tape's
/// conv forward and the plan executor, so both lower identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col_slices(
    src: &[f32],
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    out: &mut [f32],
) {
    let (oh, ow) = conv_out_size(h, w, kh, kw, stride, pad);
    let rows = c * kh * kw;
    let cols = b * oh * ow;
    assert_eq!(src.len(), b * c * h * w, "im2col input length mismatch");
    assert_eq!(out.len(), rows * cols, "im2col_into output length mismatch");
    // Each output row (ci, ki, kj) gathers independently; rows fan out
    // to the pool when the matrix is large. Every element is written at
    // most once, so parallel and serial results are bitwise identical.
    let fill_row = |row: usize, out_row: &mut [f32]| {
        let ci = row / (kh * kw);
        let ki = (row / kw) % kh;
        let kj = row % kw;
        for bi in 0..b {
            for oi in 0..oh {
                let iy = (oi * stride + ki) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let iy = iy as usize;
                for oj in 0..ow {
                    let ix = (oj * stride + kj) as isize - pad as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    out_row[bi * oh * ow + oi * ow + oj] =
                        src[((bi * c + ci) * h + iy) * w + ix as usize];
                }
            }
        }
    };
    if rows * cols >= PAR_ELEMS {
        pool::parallel_chunks_mut(out, cols, fill_row);
    } else {
        for (row, out_row) in out.chunks_mut(cols).enumerate() {
            fill_row(row, out_row);
        }
    }
}

/// GEMM `out (+)= a[m,k] * b[k,n]`, dispatched to the active kernel
/// backend: the scalar reference below, or the packed-panel vector
/// microkernels in [`crate::simd`]. If `accumulate` is false, `out` is
/// overwritten.
pub(crate) fn gemm(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    crate::simd::gemm_with(crate::simd::active(), a, b, out, m, k, n, accumulate);
}

/// Scalar reference GEMM — the bitwise-golden path. Large products are
/// split over output-row blocks on the worker pool; each row's i-k-j
/// reduction order is unchanged, so the result is bitwise identical to
/// the serial path.
pub(crate) fn gemm_scalar(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    // Degenerate dims: nothing to compute, and the row workers divide by
    // `n` (and fan out on `out` chunks), so bail out before they would.
    if m == 0 || n == 0 {
        return;
    }
    let nt = if m * k * n >= PAR_GEMM_FLOPS {
        pool::max_threads().min(m)
    } else {
        1
    };
    if nt <= 1 {
        gemm_rows(a, b, out, 0, k, n, accumulate);
        return;
    }
    let rows_per = m.div_ceil(nt);
    pool::parallel_chunks_mut(out, rows_per * n, |ci, chunk| {
        gemm_rows(a, b, chunk, ci * rows_per, k, n, accumulate);
    });
}

/// Column-block width for [`gemm_rows`]: chosen so a `k x GEMM_COL_BLOCK`
/// slab of `b` stays cache-resident while every output row reuses it.
/// Without blocking, wide products (e.g. batched-inference GEMMs, where
/// `n` scales with the batch) re-stream all of `b` from memory once per
/// output row.
const GEMM_COL_BLOCK: usize = 512;

/// GEMM over the row block starting at `row0` whose output rows occupy
/// `out` (`out.len() / n` rows). i-k-j loop order within each column
/// block: for any output element the reduction over `p` runs in the same
/// order as the unblocked serial loop, so blocking (and thread count)
/// never changes results bitwise.
fn gemm_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if !accumulate {
        out.fill(0.0);
    }
    let rows = out.len() / n;
    for j0 in (0..n).step_by(GEMM_COL_BLOCK) {
        let j1 = (j0 + GEMM_COL_BLOCK).min(n);
        for r in 0..rows {
            let i = row0 + r;
            let out_row = &mut out[r * n + j0..r * n + j1];
            for p in 0..k {
                let aik = a[i * k + p];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[p * n + j0..p * n + j1];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// `out = a x b^T` for `a: [m, k]`, `b: [n, k]`, dispatched to the active
/// kernel backend.
pub(crate) fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    crate::simd::gemm_nt_with(crate::simd::active(), a, b, out, m, k, n);
}

/// Scalar reference `a x b^T` without materializing the transpose. Each
/// output element is a contiguous-row dot product whose reduction over `p`
/// runs in increasing order with the lhs zero-skip of [`gemm_rows`], so
/// the result is bitwise identical to `gemm(a, transpose(b))`. Large
/// products split over output-row blocks.
pub(crate) fn gemm_nt_scalar(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let nt = if m * k * n >= PAR_GEMM_FLOPS {
        pool::max_threads().min(m)
    } else {
        1
    };
    if nt <= 1 {
        gemm_nt_rows(a, b, out, 0, k, n);
        return;
    }
    let rows_per = m.div_ceil(nt);
    pool::parallel_chunks_mut(out, rows_per * n, |ci, chunk| {
        gemm_nt_rows(a, b, chunk, ci * rows_per, k, n);
    });
}

fn gemm_nt_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out.len() / n;
    for r in 0..rows {
        let arow = &a[(row0 + r) * k..(row0 + r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                if av == 0.0 {
                    continue;
                }
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// `out = a^T x b` for `a: [k, m]`, `b: [k, n]`, dispatched to the active
/// kernel backend.
pub(crate) fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    crate::simd::gemm_tn_with(crate::simd::active(), a, b, out, m, k, n);
}

/// Scalar reference `a^T x b` without materializing the transpose. The `p`
/// (contraction) loop is outermost so both operand rows stream
/// contiguously; for any output element the reduction over `p` still runs
/// in increasing order with the transposed-lhs zero-skip, bitwise
/// identical to `gemm(transpose(a), b)`. Large products split over
/// output-row blocks.
pub(crate) fn gemm_tn_scalar(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let nt = if m * k * n >= PAR_GEMM_FLOPS {
        pool::max_threads().min(m)
    } else {
        1
    };
    if nt <= 1 {
        gemm_tn_rows(a, b, out, 0, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(nt);
    pool::parallel_chunks_mut(out, rows_per * n, |ci, chunk| {
        gemm_tn_rows(a, b, chunk, ci * rows_per, m, k, n);
    });
}

fn gemm_tn_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, m: usize, k: usize, n: usize) {
    out.fill(0.0);
    let rows = out.len() / n;
    for p in 0..k {
        let brow = &b[p * n..(p + 1) * n];
        for r in 0..rows {
            let av = a[p * m + row0 + r];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[r * n..(r + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul2d(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_fn(vec![2, 2, 3], |i| i as f32);
        let b = Tensor::from_fn(vec![2, 3, 2], |i| (i as f32) * 0.5);
        let c = a.bmm(&b);
        for bi in 0..2 {
            let a2 = Tensor::from_vec(vec![2, 3], a.data()[bi * 6..(bi + 1) * 6].to_vec()).unwrap();
            let b2 = Tensor::from_vec(vec![3, 2], b.data()[bi * 6..(bi + 1) * 6].to_vec()).unwrap();
            let c2 = a2.matmul2d(&b2);
            assert_eq!(&c.data()[bi * 4..(bi + 1) * 4], c2.data());
        }
    }

    #[test]
    fn bmm_nt_bitwise_matches_permuted_bmm() {
        // Includes a size large enough to cross the parallel thresholds and
        // an odd (non-multiple-of-block) shape; equality must be bitwise.
        for (b, m, k, n) in [(1, 2, 3, 4), (3, 7, 5, 9), (2, 96, 64, 96)] {
            let a = Tensor::from_fn(vec![b, m, k], |i| ((i * 37 % 19) as f32 - 9.0) * 0.13);
            let bt = Tensor::from_fn(vec![b, n, k], |i| ((i * 23 % 17) as f32 - 8.0) * 0.07);
            let fused = a.bmm_nt(&bt);
            let composed = a.bmm(&bt.permute(&[0, 2, 1]));
            assert_eq!(fused.shape(), &[b, m, n]);
            for (x, y) in fused.data().iter().zip(composed.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn bmm_tn_bitwise_matches_permuted_bmm() {
        for (b, m, k, n) in [(1, 2, 3, 4), (3, 7, 5, 9), (2, 96, 64, 96)] {
            let a = Tensor::from_fn(vec![b, k, m], |i| ((i * 41 % 23) as f32 - 11.0) * 0.11);
            let bt = Tensor::from_fn(vec![b, k, n], |i| ((i * 29 % 13) as f32 - 6.0) * 0.17);
            let fused = a.bmm_tn(&bt);
            let composed = a.permute(&[0, 2, 1]).bmm(&bt);
            assert_eq!(fused.shape(), &[b, m, n]);
            for (x, y) in fused.data().iter().zip(composed.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn matmul2d_nt_tn_bitwise_match_transposed_matmul() {
        let a = Tensor::from_fn(vec![5, 7], |i| ((i * 31 % 11) as f32 - 5.0) * 0.19);
        let b = Tensor::from_fn(vec![4, 7], |i| ((i * 13 % 9) as f32 - 4.0) * 0.23);
        let nt = a.matmul2d_nt(&b);
        let nt_ref = a.matmul2d(&b.transpose2d());
        for (x, y) in nt.data().iter().zip(nt_ref.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let c = Tensor::from_fn(vec![7, 5], |i| ((i * 17 % 13) as f32 - 6.0) * 0.29);
        let d = Tensor::from_fn(vec![7, 4], |i| ((i * 19 % 15) as f32 - 7.0) * 0.31);
        let tn = c.matmul2d_tn(&d);
        let tn_ref = c.transpose2d().matmul2d(&d);
        for (x, y) in tn.data().iter().zip(tn_ref.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn im2col_into_matches_im2col() {
        let x = Tensor::from_fn(vec![2, 3, 5, 5], |i| (i as f32 * 0.7).sin());
        let cols = x.im2col(3, 3, 1, 1);
        let mut buf = vec![0.0f32; cols.numel()];
        x.im2col_into(3, 3, 1, 1, &mut buf);
        assert_eq!(cols.data(), &buf[..]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_fn(vec![3, 4], |i| i as f32);
        let back = a.transpose2d().transpose2d();
        assert_eq!(back.data(), a.data());
    }

    #[test]
    fn permute_matches_transpose_for_rank2() {
        let a = Tensor::from_fn(vec![3, 4], |i| i as f32);
        assert_eq!(a.permute(&[1, 0]).data(), a.transpose2d().data());
    }

    #[test]
    fn permute_rank4() {
        let a = Tensor::from_fn(vec![2, 3, 4, 5], |i| i as f32);
        let p = a.permute(&[0, 2, 3, 1]);
        assert_eq!(p.shape(), &[2, 4, 5, 3]);
        assert_eq!(p.at(&[1, 2, 3, 1]), a.at(&[1, 1, 2, 3]));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: im2col is just a reshape.
        let a = Tensor::from_fn(vec![1, 2, 3, 3], |i| i as f32);
        let cols = a.im2col(1, 1, 1, 0);
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.data(), a.data());
    }

    #[test]
    fn conv_via_im2col_known_values() {
        // 3x3 input, 2x2 kernel of ones: output = 2x2 block sums.
        let x = Tensor::from_fn(vec![1, 1, 3, 3], |i| i as f32);
        let cols = x.im2col(2, 2, 1, 0);
        let w = Tensor::ones(vec![1, 4]);
        let y = w.matmul2d(&cols);
        assert_eq!(
            y.data(),
            &[
                0. + 1. + 3. + 4.,
                1. + 2. + 4. + 5.,
                3. + 4. + 6. + 7.,
                4. + 5. + 7. + 8.
            ]
        );
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let x = Tensor::from_fn(vec![1, 2, 4, 4], |i| (i as f32 * 0.37).sin());
        let cols = x.im2col(3, 3, 1, 1);
        let y = Tensor::from_fn(cols.shape().to_vec(), |i| (i as f32 * 0.11).cos());
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = y.col2im(1, 2, 4, 4, 3, 3, 1, 1);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_picks_max_and_indices() {
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]).unwrap();
        let (y, arg) = x.maxpool2x2();
        assert_eq!(y.data(), &[5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    fn upsample_downsample_adjoint() {
        let x = Tensor::from_fn(vec![1, 1, 2, 2], |i| i as f32 + 1.0);
        let up = x.upsample2x();
        assert_eq!(up.shape(), &[1, 1, 4, 4]);
        assert_eq!(up.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(up.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(up.at(&[0, 0, 3, 3]), 4.0);
        let down = up.downsample2x_sum();
        assert_eq!(down.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn concat_and_slice_channels_round_trip() {
        let a = Tensor::from_fn(vec![2, 2, 2, 2], |i| i as f32);
        let b = Tensor::from_fn(vec![2, 3, 2, 2], |i| -(i as f32));
        let cat = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 5, 2, 2]);
        assert_eq!(cat.slice_channels(0, 2).data(), a.data());
        assert_eq!(cat.slice_channels(2, 5).data(), b.data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_fn(vec![3, 5], |i| (i as f32) * 0.3 - 2.0);
        let s = x.softmax_lastdim();
        for r in 0..3 {
            let sum: f32 = s.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_out_size_matches_formula() {
        assert_eq!(conv_out_size(8, 8, 3, 3, 1, 1), (8, 8));
        assert_eq!(conv_out_size(8, 8, 3, 3, 2, 1), (4, 4));
        assert_eq!(conv_out_size(7, 7, 3, 3, 2, 1), (4, 4));
    }
}
