//! Slice-level kernel entry points for the compiled inference plan.
//!
//! The plan executor (`mfaplace-infer`) holds every activation in one
//! pre-sized arena and therefore cannot call the [`Tensor`]-typed kernel
//! methods without materializing tensors. The functions here operate on
//! raw `&[f32]` slices plus explicit dimensions and **delegate to the
//! exact same internal kernels** as the `Tensor` methods (`gemm`,
//! `gemm_nt`, `gemm_tn`, the im2col gather, the batched-GEMM dispatch),
//! so results are bitwise identical to the dynamic tape path by
//! construction — including the parallel/serial dispatch thresholds.
//!
//! [`conv_reorder_epilogue`] is the one genuinely new kernel: it folds the
//! conv output reorder (`[OC, B·OH·OW] → [B, OC, OH·OW]`) together with the
//! optional bias / channel-affine / ReLU epilogue into a single pass. The
//! per-element arithmetic sequence (`v = y; v += bias[c]; v = scale[c]*v +
//! shift[c]; v = v.max(0.0)`) is exactly the sequence the tape's separate
//! `AddBiasChannel` → `ChannelAffine` → `Relu` nodes apply, so fusing the
//! loop changes memory traffic, not bits.

use mfaplace_rt::pool;

use crate::kernels::{self, PAR_GEMM_FLOPS};

/// `out = a[m,k] x b[k,n]`, overwriting `out`. Same kernel as
/// [`crate::Tensor::matmul2d_into`].
///
/// # Panics
///
/// Panics on slice-length mismatches.
pub fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_into lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_into rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_into output length mismatch");
    kernels::gemm(a, b, out, m, k, n, false);
}

/// Batched `[bt, m, k] x [bt, k, n] -> [bt, m, n]`, replicating the
/// [`crate::Tensor::bmm`] dispatch (batch-parallel fan-out above the same
/// thresholds, serial per-batch GEMM below them) bitwise.
///
/// # Panics
///
/// Panics on slice-length mismatches.
pub fn bmm_into(a: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), bt * m * k, "bmm_into lhs length mismatch");
    assert_eq!(b.len(), bt * k * n, "bmm_into rhs length mismatch");
    assert_eq!(out.len(), bt * m * n, "bmm_into output length mismatch");
    if bt >= pool::max_threads() && bt * m * k * n >= PAR_GEMM_FLOPS {
        pool::parallel_chunks_mut(out, m * n, |i, chunk| {
            pool::with_threads(1, || {
                kernels::gemm(
                    &a[i * m * k..(i + 1) * m * k],
                    &b[i * k * n..(i + 1) * k * n],
                    chunk,
                    m,
                    k,
                    n,
                    false,
                );
            });
        });
    } else {
        for i in 0..bt {
            kernels::gemm(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
                false,
            );
        }
    }
}

/// Batched `a x b^T`: `[bt, m, k] x [bt, n, k] -> [bt, m, n]`, replicating
/// the [`crate::Tensor::bmm_nt_into`] dispatch bitwise.
///
/// # Panics
///
/// Panics on slice-length mismatches.
pub fn bmm_nt_into(a: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), bt * m * k, "bmm_nt_into lhs length mismatch");
    assert_eq!(b.len(), bt * n * k, "bmm_nt_into rhs length mismatch");
    assert_eq!(out.len(), bt * m * n, "bmm_nt_into output length mismatch");
    if bt >= pool::max_threads() && bt * m * k * n >= PAR_GEMM_FLOPS {
        pool::parallel_chunks_mut(out, m * n, |i, chunk| {
            pool::with_threads(1, || {
                kernels::gemm_nt(
                    &a[i * m * k..(i + 1) * m * k],
                    &b[i * n * k..(i + 1) * n * k],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        });
    } else {
        for i in 0..bt {
            kernels::gemm_nt(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * n * k..(i + 1) * n * k],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }
}

/// Batched `a^T x b`: `[bt, k, m] x [bt, k, n] -> [bt, m, n]`, replicating
/// the [`crate::Tensor::bmm_tn_into`] dispatch bitwise.
///
/// # Panics
///
/// Panics on slice-length mismatches.
pub fn bmm_tn_into(a: &[f32], b: &[f32], out: &mut [f32], bt: usize, m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), bt * k * m, "bmm_tn_into lhs length mismatch");
    assert_eq!(b.len(), bt * k * n, "bmm_tn_into rhs length mismatch");
    assert_eq!(out.len(), bt * m * n, "bmm_tn_into output length mismatch");
    if bt >= pool::max_threads() && bt * m * k * n >= PAR_GEMM_FLOPS {
        pool::parallel_chunks_mut(out, m * n, |i, chunk| {
            pool::with_threads(1, || {
                kernels::gemm_tn(
                    &a[i * k * m..(i + 1) * k * m],
                    &b[i * k * n..(i + 1) * k * n],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        });
    } else {
        for i in 0..bt {
            kernels::gemm_tn(
                &a[i * k * m..(i + 1) * k * m],
                &b[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }
}

/// Slice-level im2col: lowers a `[b, c, h, w]` input slice to the
/// `[c*kh*kw, b*oh*ow]` matrix. `out` **must be zero-filled** (padding
/// positions are never written). Same gather as
/// [`crate::Tensor::im2col_into`].
///
/// # Panics
///
/// Panics on slice-length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    src: &[f32],
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    out: &mut [f32],
) {
    kernels::im2col_slices(src, b, c, h, w, kh, kw, stride, pad, out);
}

/// Reorders a conv GEMM result `y_mat: [oc, b*ohow]` into the `[b, oc,
/// ohow]` output layout, applying the optional fused epilogue in the same
/// pass: `v = y; v += bias[c]; v = scale[c]*v + shift[c]; v = v.max(0.0)` —
/// per element exactly the sequence of the tape's `AddBiasChannel`,
/// `ChannelAffine` and `Relu` nodes, so the fused result is bitwise
/// identical to the composed chain.
///
/// # Panics
///
/// Panics on slice-length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv_reorder_epilogue(
    y_mat: &[f32],
    out: &mut [f32],
    b: usize,
    oc: usize,
    ohow: usize,
    bias: Option<&[f32]>,
    affine: Option<(&[f32], &[f32])>,
    relu: bool,
) {
    assert_eq!(y_mat.len(), oc * b * ohow, "conv epilogue y_mat mismatch");
    assert_eq!(out.len(), b * oc * ohow, "conv epilogue output mismatch");
    if let Some(bv) = bias {
        assert_eq!(bv.len(), oc, "conv epilogue bias length mismatch");
    }
    if let Some((sc, sh)) = affine {
        assert_eq!(sc.len(), oc, "conv epilogue scale length mismatch");
        assert_eq!(sh.len(), oc, "conv epilogue shift length mismatch");
    }
    // The epilogue is elementwise, so the vector backends are bitwise
    // identical to the scalar loop (same IEEE add/mul/add/max per element);
    // dispatching per contiguous run costs one branch per (oc, b) pair.
    let bk = crate::simd::active();
    for ocx in 0..oc {
        let bias_v = bias.map(|bv| bv[ocx]);
        let aff = affine.map(|(sc, sh)| (sc[ocx], sh[ocx]));
        for bi in 0..b {
            let src = &y_mat[(ocx * b + bi) * ohow..(ocx * b + bi + 1) * ohow];
            let dst = &mut out[(bi * oc + ocx) * ohow..(bi * oc + ocx + 1) * ohow];
            crate::simd::conv_epilogue_with(bk, src, dst, bias_v, aff, relu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn tensor(shape: Vec<usize>, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |i| {
            (((i * 2_654_435_761 + seed * 131) % 997) as f32 / 498.0 - 1.0) * 0.6
        })
    }

    #[test]
    fn gemm_into_bitwise_matches_matmul2d() {
        let a = tensor(vec![5, 7], 1);
        let b = tensor(vec![7, 4], 2);
        let reference = a.matmul2d(&b);
        let mut out = vec![f32::NAN; 20];
        gemm_into(a.data(), b.data(), &mut out, 5, 7, 4);
        for (x, y) in out.iter().zip(reference.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn bmm_variants_bitwise_match_tensor_methods() {
        for (bt, m, k, n) in [(2, 3, 4, 5), (3, 16, 8, 16)] {
            let a = tensor(vec![bt, m, k], 3);
            let b = tensor(vec![bt, k, n], 4);
            let mut out = vec![f32::NAN; bt * m * n];
            bmm_into(a.data(), b.data(), &mut out, bt, m, k, n);
            assert_eq!(out, a.bmm(&b).data());

            let bnt = tensor(vec![bt, n, k], 5);
            bmm_nt_into(a.data(), bnt.data(), &mut out, bt, m, k, n);
            assert_eq!(out, a.bmm_nt(&bnt).data());

            let atn = tensor(vec![bt, k, m], 6);
            bmm_tn_into(atn.data(), b.data(), &mut out, bt, m, k, n);
            assert_eq!(out, atn.bmm_tn(&b).data());
        }
    }

    #[test]
    fn im2col_slices_matches_tensor_method() {
        let x = tensor(vec![2, 3, 5, 5], 7);
        let reference = x.im2col(3, 3, 1, 1);
        let mut out = vec![0.0f32; reference.numel()];
        im2col_into(x.data(), 2, 3, 5, 5, 3, 3, 1, 1, &mut out);
        assert_eq!(out, reference.data());
    }

    #[test]
    fn conv_epilogue_matches_composed_chain() {
        let (b, oc, ohow) = (2, 3, 4);
        let y = tensor(vec![oc, b * ohow], 8);
        let bias = [0.3f32, -0.6, 0.1];
        let scale = [1.2f32, -0.8, 0.5];
        let shift = [-0.2f32, 0.4, 0.0];
        // Composed reference: reorder, then +=bias, then affine, then relu.
        let mut reference = vec![0.0f32; b * oc * ohow];
        for o in 0..oc {
            for bi in 0..b {
                for k in 0..ohow {
                    reference[(bi * oc + o) * ohow + k] = y.data()[(o * b + bi) * ohow + k];
                }
            }
        }
        for bi in 0..b {
            for o in 0..oc {
                for k in 0..ohow {
                    let v = &mut reference[(bi * oc + o) * ohow + k];
                    *v += bias[o];
                    *v = scale[o] * *v + shift[o];
                    *v = v.max(0.0);
                }
            }
        }
        let mut out = vec![f32::NAN; b * oc * ohow];
        conv_reorder_epilogue(
            y.data(),
            &mut out,
            b,
            oc,
            ohow,
            Some(&bias),
            Some((&scale, &shift)),
            true,
        );
        for (x, r) in out.iter().zip(&reference) {
            assert_eq!(x.to_bits(), r.to_bits());
        }
    }
}
