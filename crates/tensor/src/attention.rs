//! Fused streamed attention kernels.
//!
//! Computes `softmax(q·kᵀ·scale)·v` in query row-tiles with a per-row score
//! scratch buffer — the `[L, L]` score and softmax matrices are never
//! materialized, dropping peak activation memory from `O(L²)` to
//! `O(tile·L)`. The backward pass recomputes score rows instead of reading
//! a stored softmax.
//!
//! # Bitwise contract
//!
//! For finite inputs, forward outputs and all three input gradients are
//! **bitwise identical** to the composed op sequence
//! (`permute → bmm → scale → softmax → bmm` and its reverse) that the
//! autograd tape would otherwise record, **under whichever kernel backend
//! is active** (`crate::simd`): the scalar arms below are the verbatim
//! reference loops, and the vector arms express the same computation as
//! microkernel tile sequences whose per-element FMA chains coincide with
//! the composed GEMMs run under the same backend. Specifically, for the
//! scalar backend:
//!
//! - every per-element reduction runs over its contraction index in
//!   increasing order, matching the composed GEMM/softmax loops;
//! - the softmax replicates [`Tensor::softmax_lastdim`] exactly (row max
//!   via `f32::max` fold, one exp/sum pass, one divide pass);
//! - the scale factor multiplies the finished dot product, exactly like
//!   the composed elementwise `Scale` node (`x * 1.0` is the bitwise
//!   identity, so callers without a composed scale node pass `1.0`);
//! - GEMM zero-skips differ from the composed path only in *which* exact
//!   ±0.0 product terms are skipped. Under round-to-nearest an `f32`
//!   accumulator that starts at +0.0 can never become -0.0, and adding
//!   ±0.0 to it never changes its bits, so skipping any subset of zero
//!   products is bitwise neutral for finite data.
//!
//! Two memory layouts are provided: **token-major** (`[B, L, D]`,
//! multi-head self-attention and the channel-attention CAM) and
//! **feature-major** (`[B, D, L]`, the position-attention PAM, which keeps
//! channels outermost and attends over spatial positions).

use mfaplace_rt::pool;

use crate::kernels::PAR_GEMM_FLOPS;
use crate::simd::{self, AView, Backend};
use crate::Tensor;

/// Query rows processed per tile: the parallel-dispatch granularity of the
/// forward pass and the recomputation granularity of the backward pass.
pub const ATTN_TILE: usize = 32;

/// Token-major fused attention: `q: [B, Lq, D]`, `k: [B, Lk, D]`,
/// `v: [B, Lk, Dv] -> [B, Lq, Dv]`.
///
/// `out[b, i, d] = Σ_j softmax_j(Σ_p q[b,i,p]·k[b,j,p] · scale) · v[b,j,d]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_tm(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
    let (b, lq) = (q.shape()[0], q.shape()[1]);
    let dv = v.shape()[2];
    let mut out = vec![0.0f32; b * lq * dv];
    attention_tm_into(q, k, v, scale, &mut out);
    Tensor::from_vec(vec![b, lq, dv], out).expect("attention_tm shape")
}

/// [`attention_tm`] writing into a caller-provided buffer.
///
/// `out` **must be zero-filled**: output rows are accumulated over keys in
/// index order (a recycled buffer from the autograd pool is handed out
/// zeroed for exactly this reason).
///
/// # Panics
///
/// Panics on rank/dimension mismatches or if `out.len() != B*Lq*Dv`.
pub fn attention_tm_into(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32, out: &mut [f32]) {
    assert_eq!(q.rank(), 3, "attention_tm q must be rank-3");
    assert_eq!(k.rank(), 3, "attention_tm k must be rank-3");
    assert_eq!(v.rank(), 3, "attention_tm v must be rank-3");
    let (b, lq, d) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let (bk, lk, dk) = (k.shape()[0], k.shape()[1], k.shape()[2]);
    let (bv, lv, dv) = (v.shape()[0], v.shape()[1], v.shape()[2]);
    assert_eq!(b, bk, "attention_tm q/k batch mismatch");
    assert_eq!(b, bv, "attention_tm q/v batch mismatch");
    assert_eq!(d, dk, "attention_tm q/k feature mismatch");
    assert_eq!(lk, lv, "attention_tm k/v length mismatch");
    assert_eq!(
        out.len(),
        b * lq * dv,
        "attention_tm output length mismatch"
    );
    let mut scratch = vec![0.0f32; lk];
    attention_tm_slices(
        q.data(),
        k.data(),
        v.data(),
        b,
        lq,
        lk,
        d,
        dv,
        scale,
        out,
        &mut scratch,
    );
}

/// Slice-level [`attention_tm_into`] with a caller-provided score-row
/// scratch of at least `lk` elements (contents ignored; used by the plan
/// executor so the serial path allocates nothing per forward). The parallel
/// tile path still allocates one score row per tile worker, exactly like
/// the tape path. `out` **must be zero-filled**.
///
/// # Panics
///
/// Panics on slice-length mismatches or if `scratch.len() < lk`.
#[allow(clippy::too_many_arguments)]
pub fn attention_tm_slices(
    qd: &[f32],
    kd: &[f32],
    vd: &[f32],
    b: usize,
    lq: usize,
    lk: usize,
    d: usize,
    dv: usize,
    scale: f32,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    attention_tm_slices_with(
        simd::active(),
        qd,
        kd,
        vd,
        b,
        lq,
        lk,
        d,
        dv,
        scale,
        out,
        scratch,
    );
}

/// Explicit-backend [`attention_tm_slices`] — the differential suite's
/// entry point. The scalar arm is the verbatim reference loop; the vector
/// arms run the same computation as packed microkernel tile sequences
/// (score tile, scale, softmax rows, weighted-value tile), so within a
/// backend the fused result stays bitwise identical to the composed op
/// chain executed under that same backend.
///
/// # Panics
///
/// Panics on slice-length mismatches or if `scratch.len() < lk`.
#[allow(clippy::too_many_arguments)]
pub fn attention_tm_slices_with(
    bk: Backend,
    qd: &[f32],
    kd: &[f32],
    vd: &[f32],
    b: usize,
    lq: usize,
    lk: usize,
    d: usize,
    dv: usize,
    scale: f32,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    assert_eq!(qd.len(), b * lq * d, "attention_tm q length mismatch");
    assert_eq!(kd.len(), b * lk * d, "attention_tm k length mismatch");
    assert_eq!(vd.len(), b * lk * dv, "attention_tm v length mismatch");
    assert_eq!(
        out.len(),
        b * lq * dv,
        "attention_tm output length mismatch"
    );
    assert!(scratch.len() >= lk, "attention_tm scratch too small");
    let scratch = &mut scratch[..lk];
    for bi in 0..b {
        let qb = &qd[bi * lq * d..(bi + 1) * lq * d];
        let kb = &kd[bi * lk * d..(bi + 1) * lk * d];
        let vb = &vd[bi * lk * dv..(bi + 1) * lk * dv];
        let ob = &mut out[bi * lq * dv..(bi + 1) * lq * dv];
        if bk != Backend::Scalar {
            tm_forward_vec(bk, qb, kb, vb, scale, lq, lk, d, dv, ob);
            continue;
        }
        // Query tiles write disjoint output rows, so the per-batch fan-out
        // is bitwise-safe: each row's arithmetic is thread-independent.
        if lq * lk * (d + dv) >= PAR_GEMM_FLOPS && lq > ATTN_TILE {
            pool::parallel_chunks_mut(ob, ATTN_TILE * dv, |ti, chunk| {
                let mut s = vec![0.0f32; lk];
                attn_tm_rows(qb, kb, vb, scale, lk, d, dv, ti * ATTN_TILE, chunk, &mut s);
            });
        } else {
            attn_tm_rows(qb, kb, vb, scale, lk, d, dv, 0, ob, scratch);
        }
    }
}

/// Vector-backend token-major forward for one batch: `k`/`v` are packed
/// once, then each query tile runs score-GEMM → scale → softmax rows →
/// value-GEMM through the microkernel. Per-element chains are identical to
/// the composed `bmm`/`scale`/`softmax`/`bmm` sequence under the same
/// backend, and rows are thread-independent, so the parallel fan-out uses
/// the same policy as the scalar path.
#[allow(clippy::too_many_arguments)]
fn tm_forward_vec(
    bk: Backend,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    scale: f32,
    lq: usize,
    lk: usize,
    d: usize,
    dv: usize,
    ob: &mut [f32],
) {
    simd::with_scratch(|sc| {
        let simd::Scratch {
            pack_a: pk_buf,
            pack_b: pv_buf,
            tile_a: s_buf,
            ..
        } = sc;
        simd::pack_b(kb, d, lk, true, pk_buf); // kᵀ panels for the NT score tile
        simd::pack_b(vb, lk, dv, false, pv_buf); // v panels for the NN value tile
        let pk: &[f32] = pk_buf;
        let pv: &[f32] = pv_buf;
        if lq * lk * (d + dv) >= PAR_GEMM_FLOPS && lq > ATTN_TILE {
            pool::parallel_chunks_mut(ob, ATTN_TILE * dv, |ti, chunk| {
                let rows = chunk.len() / dv;
                let mut s = vec![0.0f32; rows * lk];
                tm_tile_vec(
                    bk,
                    qb,
                    pk,
                    pv,
                    scale,
                    lk,
                    d,
                    dv,
                    ti * ATTN_TILE,
                    rows,
                    chunk,
                    &mut s,
                );
            });
        } else {
            let mut i0 = 0;
            while i0 < lq {
                let rows = ATTN_TILE.min(lq - i0);
                s_buf.clear();
                s_buf.resize(rows * lk, 0.0);
                let chunk = &mut ob[i0 * dv..(i0 + rows) * dv];
                tm_tile_vec(bk, qb, pk, pv, scale, lk, d, dv, i0, rows, chunk, s_buf);
                i0 += rows;
            }
        }
    });
}

/// One vector token-major forward tile: output rows `[i0, i0 + rows)`.
#[allow(clippy::too_many_arguments)]
fn tm_tile_vec(
    bk: Backend,
    qb: &[f32],
    pk: &[f32],
    pv: &[f32],
    scale: f32,
    lk: usize,
    d: usize,
    dv: usize,
    i0: usize,
    rows: usize,
    chunk: &mut [f32],
    s: &mut [f32],
) {
    let s = &mut s[..rows * lk];
    simd::kernel(bk, AView::rows(qb, i0 * d, d), pk, s, rows, d, lk, false);
    for x in s.iter_mut() {
        *x *= scale;
    }
    for r in 0..rows {
        simd::softmax_row_with(bk, &mut s[r * lk..(r + 1) * lk]);
    }
    simd::kernel(bk, AView::rows(s, 0, lk), pv, chunk, rows, lk, dv, false);
}

/// Forward row-tile worker: computes output rows `[i0, i0 + rows)` of one
/// batch, with a single score-row scratch reused across the tile's rows.
#[allow(clippy::too_many_arguments)]
fn attn_tm_rows(
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    scale: f32,
    lk: usize,
    d: usize,
    dv: usize,
    i0: usize,
    chunk: &mut [f32],
    s: &mut [f32],
) {
    let rows = chunk.len() / dv;
    for r in 0..rows {
        let qrow = &qb[(i0 + r) * d..(i0 + r + 1) * d];
        score_row_tm(qrow, kb, scale, lk, d, &mut *s);
        softmax_row(&mut *s);
        let orow = &mut chunk[r * dv..(r + 1) * dv];
        for (j, &wj) in s.iter().enumerate() {
            // Same lhs zero-skip as the composed softmax·v GEMM.
            if wj == 0.0 {
                continue;
            }
            let vrow = &vb[j * dv..(j + 1) * dv];
            for (o, &vv) in orow.iter_mut().zip(vrow) {
                *o += wj * vv;
            }
        }
    }
}

/// One scaled score row `s[j] = (Σ_p qrow[p]·k[j,p]) · scale`, reduction
/// over `p` in increasing order with the composed GEMM's lhs zero-skip.
fn score_row_tm(qrow: &[f32], kb: &[f32], scale: f32, lk: usize, d: usize, s: &mut [f32]) {
    for (j, sj) in s.iter_mut().enumerate().take(lk) {
        let krow = &kb[j * d..(j + 1) * d];
        let mut acc = 0.0f32;
        for (&qv, &kv) in qrow.iter().zip(krow) {
            if qv == 0.0 {
                continue;
            }
            acc += qv * kv;
        }
        *sj = acc * scale;
    }
}

/// In-place softmax of one score row, routed through the active kernel
/// backend. Public so the plan executor's `SoftmaxLast` op,
/// [`Tensor::softmax_lastdim`] and the fused attention paths all share the
/// exact same row loop — whichever backend is active, every softmax in the
/// process computes identical bits for identical input rows.
pub fn softmax_row(s: &mut [f32]) {
    simd::softmax_row_with(simd::active(), s)
}

/// Scalar reference softmax row (max fold, exp/sum pass, divide) — the
/// bitwise-golden loop every pre-existing golden file was produced with.
pub(crate) fn softmax_row_scalar(s: &mut [f32]) {
    let m = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f32;
    for x in s.iter_mut() {
        *x = (*x - m).exp();
        z += *x;
    }
    for x in s.iter_mut() {
        *x /= z;
    }
}

/// Backward of [`attention_tm`]: returns `(dq, dk, dv)` for upstream
/// gradient `dy: [B, Lq, Dv]`.
///
/// Score rows are recomputed tile-by-tile instead of being read from a
/// stored `[Lq, Lk]` softmax. `dk` and `dv` accumulate over the query index
/// in globally increasing order (serial over tiles), matching the composed
/// backward GEMMs bitwise.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_tm_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    scale: f32,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    attention_tm_backward_with(simd::active(), q, k, v, scale, dy)
}

/// Explicit-backend [`attention_tm_backward`] — the differential suite's
/// entry point. `dk`/`dv` accumulate over the query index in globally
/// increasing order on every backend (the vector arm concatenates exact
/// per-tile FMA chain segments via accumulate reloads), matching the
/// composed backward GEMMs bitwise under the same backend.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_tm_backward_with(
    bk: Backend,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    scale: f32,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (b, lq, d) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let (lk, dv) = (k.shape()[1], v.shape()[2]);
    assert_eq!(
        dy.shape(),
        &[b, lq, dv],
        "attention_tm_backward dy shape mismatch"
    );
    let (qd, kd, vd, dyd) = (q.data(), k.data(), v.data(), dy.data());
    let mut dq = vec![0.0f32; b * lq * d];
    let mut dk = vec![0.0f32; b * lk * d];
    let mut dvb_all = vec![0.0f32; b * lk * dv];
    let mut s = vec![0.0f32; lk];
    let mut g = vec![0.0f32; lk];
    for bi in 0..b {
        let qb = &qd[bi * lq * d..(bi + 1) * lq * d];
        let kb = &kd[bi * lk * d..(bi + 1) * lk * d];
        let vb = &vd[bi * lk * dv..(bi + 1) * lk * dv];
        let dyb = &dyd[bi * lq * dv..(bi + 1) * lq * dv];
        let dqb = &mut dq[bi * lq * d..(bi + 1) * lq * d];
        let dkb = &mut dk[bi * lk * d..(bi + 1) * lk * d];
        let dvb = &mut dvb_all[bi * lk * dv..(bi + 1) * lk * dv];
        if bk != Backend::Scalar {
            tm_backward_vec(bk, qb, kb, vb, dyb, scale, lq, lk, d, dv, dqb, dkb, dvb);
            continue;
        }
        for i in 0..lq {
            // Recompute the softmax row exactly as the forward did.
            let qrow = &qb[i * d..(i + 1) * d];
            score_row_tm(qrow, kb, scale, lk, d, &mut s);
            softmax_row(&mut s);
            let dyrow = &dyb[i * dv..(i + 1) * dv];
            // g[j] = Σ_d dy[i,d]·v[j,d] (the composed dy·vᵀ GEMM row).
            for (j, gj) in g.iter_mut().enumerate().take(lk) {
                let vrow = &vb[j * dv..(j + 1) * dv];
                let mut acc = 0.0f32;
                for (&gv, &vv) in dyrow.iter().zip(vrow) {
                    if gv == 0.0 {
                        continue;
                    }
                    acc += gv * vv;
                }
                *gj = acc;
            }
            // dv[j,d] += w[j]·dy[i,d]: query index i strictly increasing.
            for (j, &wj) in s.iter().enumerate() {
                if wj == 0.0 {
                    continue;
                }
                let dvrow = &mut dvb[j * dv..(j + 1) * dv];
                for (o, &gv) in dvrow.iter_mut().zip(dyrow) {
                    *o += wj * gv;
                }
            }
            // Softmax backward then the composed Scale node's backward:
            // gs[j] = (w[j]·(g[j] - dot))·scale, overwriting g in place.
            let dot: f32 = s.iter().zip(&g).map(|(&a, &b)| a * b).sum();
            for (gj, &wj) in g.iter_mut().zip(&s) {
                *gj = (wj * (*gj - dot)) * scale;
            }
            // dq[i,p] += gs[j]·k[j,p], key index j increasing (axpy).
            let dqrow = &mut dqb[i * d..(i + 1) * d];
            for (j, &gs) in g.iter().enumerate() {
                if gs == 0.0 {
                    continue;
                }
                let krow = &kb[j * d..(j + 1) * d];
                for (o, &kv) in dqrow.iter_mut().zip(krow) {
                    *o += gs * kv;
                }
            }
            // dk[j,p] += q[i,p]·gs[j]: query index i strictly increasing.
            for (j, &gs) in g.iter().enumerate() {
                let dkrow = &mut dkb[j * d..(j + 1) * d];
                for (o, &qv) in dkrow.iter_mut().zip(qrow) {
                    *o += qv * gs;
                }
            }
        }
    }
    (
        Tensor::from_vec(vec![b, lq, d], dq).expect("attention_tm dq"),
        Tensor::from_vec(vec![b, lk, d], dk).expect("attention_tm dk"),
        Tensor::from_vec(vec![b, lk, dv], dvb_all).expect("attention_tm dv"),
    )
}

/// Vector-backend token-major backward for one batch. Tiles run serially
/// in increasing query order; the softmax tile is recomputed with exactly
/// the forward's kernel sequence, `dk`/`dv` accumulate per tile (exact
/// chain concatenation), and the softmax+scale backward rows use the same
/// scalar expressions as the tape's `SoftmaxLast`/`Scale` nodes.
#[allow(clippy::too_many_arguments)]
fn tm_backward_vec(
    bk: Backend,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    dyb: &[f32],
    scale: f32,
    lq: usize,
    lk: usize,
    d: usize,
    dv: usize,
    dqb: &mut [f32],
    dkb: &mut [f32],
    dvb: &mut [f32],
) {
    simd::with_scratch(|sc| {
        let simd::Scratch {
            pack_a: pk_nt,
            pack_b: pv_nt,
            pack_c: pk_nn,
            tile_a: s_buf,
            tile_b: g_buf,
            tile_c: bt_buf,
            ..
        } = sc;
        simd::pack_b(kb, d, lk, true, pk_nt); // kᵀ panels: score recompute
        simd::pack_b(vb, dv, lk, true, pv_nt); // vᵀ panels: g = dy·vᵀ
        simd::pack_b(kb, lk, d, false, pk_nn); // k panels: dq = gs·k
        let mut i0 = 0;
        while i0 < lq {
            let rows = ATTN_TILE.min(lq - i0);
            // Recompute the softmax tile exactly as the forward did.
            s_buf.clear();
            s_buf.resize(rows * lk, 0.0);
            simd::kernel(
                bk,
                AView::rows(qb, i0 * d, d),
                pk_nt,
                s_buf,
                rows,
                d,
                lk,
                false,
            );
            for x in s_buf.iter_mut() {
                *x *= scale;
            }
            for r in 0..rows {
                simd::softmax_row_with(bk, &mut s_buf[r * lk..(r + 1) * lk]);
            }
            // g[t,j] = Σ_c dy[i0+t,c]·v[j,c] (the composed dy·vᵀ tile).
            g_buf.clear();
            g_buf.resize(rows * lk, 0.0);
            simd::kernel(
                bk,
                AView::rows(dyb, i0 * dv, dv),
                pv_nt,
                g_buf,
                rows,
                dv,
                lk,
                false,
            );
            // dv[j,c] += Σ_t w[t,j]·dy[i0+t,c]: query index strictly
            // increasing across tiles, chain resumed by the accumulate
            // reload.
            simd::pack_b(&dyb[i0 * dv..(i0 + rows) * dv], rows, dv, false, bt_buf);
            let wview = AView {
                data: s_buf,
                base: 0,
                row_stride: 1,
                p_stride: lk,
            };
            simd::kernel(bk, wview, bt_buf, dvb, lk, rows, dv, true);
            // gs[t,j] = (w[t,j]·(g[t,j] − dot))·scale — the tape's
            // SoftmaxLast backward then the Scale node's backward, row by
            // row in the exact scalar expressions.
            for r in 0..rows {
                let srow = &s_buf[r * lk..(r + 1) * lk];
                let grow = &mut g_buf[r * lk..(r + 1) * lk];
                let dot: f32 = srow.iter().zip(grow.iter()).map(|(&a, &b)| a * b).sum();
                for (gj, &wj) in grow.iter_mut().zip(srow) {
                    *gj = (wj * (*gj - dot)) * scale;
                }
            }
            // dq[i0+t,p] = Σ_j gs[t,j]·k[j,p] (rows written exactly once).
            simd::kernel(
                bk,
                AView::rows(g_buf, 0, lk),
                pk_nn,
                &mut dqb[i0 * d..(i0 + rows) * d],
                rows,
                lk,
                d,
                false,
            );
            // dk[j,p] += Σ_t gs[t,j]·q[i0+t,p]: same accumulate chaining
            // as dv.
            simd::pack_b(&qb[i0 * d..(i0 + rows) * d], rows, d, false, bt_buf);
            let gsview = AView {
                data: g_buf,
                base: 0,
                row_stride: 1,
                p_stride: lk,
            };
            simd::kernel(bk, gsview, bt_buf, dkb, lk, rows, d, true);
            i0 += rows;
        }
    });
}

/// Feature-major fused attention: `q: [B, D, L]`, `k: [B, D, L]`,
/// `v: [B, Dv, L] -> [B, Dv, L]`.
///
/// `out[b, c, y] = Σ_x softmax_x(Σ_p q[b,p,y]·k[b,p,x] · scale) · v[b,c,x]`
/// — the position-attention (PAM) form, where channels stay outermost and
/// attention runs over the spatial index.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_fm(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
    let (b, l) = (q.shape()[0], q.shape()[2]);
    let nv = v.shape()[1];
    let mut out = vec![0.0f32; b * nv * l];
    attention_fm_into(q, k, v, scale, &mut out);
    Tensor::from_vec(vec![b, nv, l], out).expect("attention_fm shape")
}

/// [`attention_fm`] writing into a caller-provided buffer (any contents;
/// every element is overwritten).
///
/// # Panics
///
/// Panics on rank/dimension mismatches or if `out.len() != B*Dv*L`.
pub fn attention_fm_into(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32, out: &mut [f32]) {
    assert_eq!(q.rank(), 3, "attention_fm q must be rank-3");
    assert_eq!(k.rank(), 3, "attention_fm k must be rank-3");
    assert_eq!(v.rank(), 3, "attention_fm v must be rank-3");
    let (b, n, l) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let (bk, nk, lk) = (k.shape()[0], k.shape()[1], k.shape()[2]);
    let (bv, nv, lv) = (v.shape()[0], v.shape()[1], v.shape()[2]);
    assert_eq!(b, bk, "attention_fm q/k batch mismatch");
    assert_eq!(b, bv, "attention_fm q/v batch mismatch");
    assert_eq!(n, nk, "attention_fm q/k feature mismatch");
    assert_eq!(l, lk, "attention_fm q/k length mismatch");
    assert_eq!(l, lv, "attention_fm k/v length mismatch");
    assert_eq!(out.len(), b * nv * l, "attention_fm output length mismatch");
    let mut scratch = vec![0.0f32; l];
    attention_fm_slices(
        q.data(),
        k.data(),
        v.data(),
        b,
        n,
        nv,
        l,
        scale,
        out,
        &mut scratch,
    );
}

/// Slice-level [`attention_fm_into`] with a caller-provided score-row
/// scratch of at least `l` elements (contents ignored; used by the plan
/// executor so the forward allocates nothing). `out` may hold any contents;
/// every element is overwritten.
///
/// # Panics
///
/// Panics on slice-length mismatches or if `scratch.len() < l`.
#[allow(clippy::too_many_arguments)]
pub fn attention_fm_slices(
    qd: &[f32],
    kd: &[f32],
    vd: &[f32],
    b: usize,
    n: usize,
    nv: usize,
    l: usize,
    scale: f32,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    attention_fm_slices_with(simd::active(), qd, kd, vd, b, n, nv, l, scale, out, scratch);
}

/// Explicit-backend [`attention_fm_slices`] — the differential suite's
/// entry point. The vector arm gathers query-column tiles into contiguous
/// buffers and runs the same score → scale → softmax → weighted-value
/// sequence through the microkernel, matching the composed
/// `bmm`/`scale`/`permute`/`softmax`/`bmm` chain bitwise under the same
/// backend.
///
/// # Panics
///
/// Panics on slice-length mismatches or if `scratch.len() < l`.
#[allow(clippy::too_many_arguments)]
pub fn attention_fm_slices_with(
    bk: Backend,
    qd: &[f32],
    kd: &[f32],
    vd: &[f32],
    b: usize,
    n: usize,
    nv: usize,
    l: usize,
    scale: f32,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    assert_eq!(qd.len(), b * n * l, "attention_fm q length mismatch");
    assert_eq!(kd.len(), b * n * l, "attention_fm k length mismatch");
    assert_eq!(vd.len(), b * nv * l, "attention_fm v length mismatch");
    assert_eq!(out.len(), b * nv * l, "attention_fm output length mismatch");
    assert!(scratch.len() >= l, "attention_fm scratch too small");
    // Output columns interleave across queries, so the feature-major
    // forward stays serial within a batch (attention cost here scales with
    // L², far above the L·N channel form, and L-sized rows still stream).
    let s = &mut scratch[..l];
    for bi in 0..b {
        let qb = &qd[bi * n * l..(bi + 1) * n * l];
        let kb = &kd[bi * n * l..(bi + 1) * n * l];
        let vb = &vd[bi * nv * l..(bi + 1) * nv * l];
        let ob = &mut out[bi * nv * l..(bi + 1) * nv * l];
        if bk != Backend::Scalar {
            fm_forward_vec(bk, qb, kb, vb, scale, n, nv, l, ob);
            continue;
        }
        for y in 0..l {
            score_row_fm(qb, kb, scale, n, l, y, &mut *s);
            softmax_row(&mut *s);
            // out[c,y] = Σ_x v[c,x]·w[x] with the composed GEMM's lhs
            // zero-skip on v.
            for c in 0..nv {
                let vrow = &vb[c * l..(c + 1) * l];
                let mut acc = 0.0f32;
                for (&vv, &wx) in vrow.iter().zip(&*s) {
                    if vv == 0.0 {
                        continue;
                    }
                    acc += vv * wx;
                }
                ob[c * l + y] = acc;
            }
        }
    }
}

/// Vector-backend feature-major forward for one batch: `k` is packed once;
/// each query-column tile gathers `q[:, y0..y0+t]` into a contiguous
/// `[n, t]` buffer, computes the `[t, l]` score tile (TN microkernel),
/// scales, softmaxes rows, then produces the `[nv, t]` output tile from a
/// transposed pack of the softmax tile (NT microkernel) and scatters it
/// back into the interleaved output columns.
#[allow(clippy::too_many_arguments)]
fn fm_forward_vec(
    bk: Backend,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    scale: f32,
    n: usize,
    nv: usize,
    l: usize,
    ob: &mut [f32],
) {
    simd::with_scratch(|sc| {
        let simd::Scratch {
            pack_a: pk_buf,
            pack_b: pt_buf,
            tile_a: e_buf,
            tile_b: o_buf,
            tile_c: q_buf,
            ..
        } = sc;
        simd::pack_b(kb, n, l, false, pk_buf); // k panels: score contraction over n
        let mut y0 = 0;
        while y0 < l {
            let t = ATTN_TILE.min(l - y0);
            q_buf.clear();
            q_buf.resize(n * t, 0.0);
            for p in 0..n {
                q_buf[p * t..(p + 1) * t].copy_from_slice(&qb[p * l + y0..p * l + y0 + t]);
            }
            // e[r,x] = Σ_p q[p,y0+r]·k[p,x], then scale and softmax rows.
            e_buf.clear();
            e_buf.resize(t * l, 0.0);
            let qview = AView {
                data: q_buf,
                base: 0,
                row_stride: 1,
                p_stride: t,
            };
            simd::kernel(bk, qview, pk_buf, e_buf, t, n, l, false);
            for x in e_buf.iter_mut() {
                *x *= scale;
            }
            for r in 0..t {
                simd::softmax_row_with(bk, &mut e_buf[r * l..(r + 1) * l]);
            }
            // out[c,y0+r] = Σ_x v[c,x]·w[r,x] via a transposed pack of the
            // softmax tile.
            simd::pack_b(e_buf, l, t, true, pt_buf);
            o_buf.clear();
            o_buf.resize(nv * t, 0.0);
            simd::kernel(bk, AView::rows(vb, 0, l), pt_buf, o_buf, nv, l, t, false);
            for c in 0..nv {
                for r in 0..t {
                    ob[c * l + y0 + r] = o_buf[c * t + r];
                }
            }
            y0 += t;
        }
    });
}

/// One scaled feature-major score row
/// `s[x] = (Σ_p q[p,y]·k[p,x]) · scale` via axpy over `p` (increasing, so
/// per-element reduction order matches the composed GEMM).
fn score_row_fm(qb: &[f32], kb: &[f32], scale: f32, n: usize, l: usize, y: usize, s: &mut [f32]) {
    s.fill(0.0);
    for p in 0..n {
        let qv = qb[p * l + y];
        if qv == 0.0 {
            continue;
        }
        let krow = &kb[p * l..(p + 1) * l];
        for (sx, &kv) in s.iter_mut().zip(krow) {
            *sx += qv * kv;
        }
    }
    for sx in s.iter_mut() {
        *sx *= scale;
    }
}

/// Backward of [`attention_fm`]: returns `(dq, dk, dv)` for upstream
/// gradient `dy: [B, Dv, L]`. Score rows are recomputed per query column;
/// `dk` and `dv` accumulate over the query index in increasing order.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_fm_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    scale: f32,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    attention_fm_backward_with(simd::active(), q, k, v, scale, dy)
}

/// Explicit-backend [`attention_fm_backward`] — the differential suite's
/// entry point. `dk`/`dv` accumulate over the query index in increasing
/// order on every backend; the vector arm recomputes the softmax tile with
/// exactly the forward's kernel sequence.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_fm_backward_with(
    bk: Backend,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    scale: f32,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (b, n, l) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let nv = v.shape()[1];
    assert_eq!(
        dy.shape(),
        &[b, nv, l],
        "attention_fm_backward dy shape mismatch"
    );
    let (qd, kd, vd, dyd) = (q.data(), k.data(), v.data(), dy.data());
    let mut dq = vec![0.0f32; b * n * l];
    let mut dk = vec![0.0f32; b * n * l];
    let mut dv_all = vec![0.0f32; b * nv * l];
    let mut s = vec![0.0f32; l];
    let mut g = vec![0.0f32; l];
    for bi in 0..b {
        let qb = &qd[bi * n * l..(bi + 1) * n * l];
        let kb = &kd[bi * n * l..(bi + 1) * n * l];
        let vb = &vd[bi * nv * l..(bi + 1) * nv * l];
        let dyb = &dyd[bi * nv * l..(bi + 1) * nv * l];
        let dqb = &mut dq[bi * n * l..(bi + 1) * n * l];
        let dkb = &mut dk[bi * n * l..(bi + 1) * n * l];
        let dvb = &mut dv_all[bi * nv * l..(bi + 1) * nv * l];
        if bk != Backend::Scalar {
            fm_backward_vec(bk, qb, kb, vb, dyb, scale, n, nv, l, dqb, dkb, dvb);
            continue;
        }
        for y in 0..l {
            score_row_fm(qb, kb, scale, n, l, y, &mut s);
            softmax_row(&mut s);
            // g[x] = Σ_c v[c,x]·dy[c,y] via axpy over c (increasing).
            g.fill(0.0);
            for c in 0..nv {
                let dyv = dyb[c * l + y];
                if dyv == 0.0 {
                    continue;
                }
                let vrow = &vb[c * l..(c + 1) * l];
                for (gx, &vv) in g.iter_mut().zip(vrow) {
                    *gx += vv * dyv;
                }
            }
            // dv[c,x] += dy[c,y]·w[x]: query index y strictly increasing.
            for c in 0..nv {
                let dyv = dyb[c * l + y];
                if dyv == 0.0 {
                    continue;
                }
                let dvrow = &mut dvb[c * l..(c + 1) * l];
                for (o, &wx) in dvrow.iter_mut().zip(&*s) {
                    *o += dyv * wx;
                }
            }
            // gs[x] = (w[x]·(g[x] - dot))·scale, overwriting g in place.
            let dot: f32 = s.iter().zip(&g).map(|(&a, &b)| a * b).sum();
            for (gx, &wx) in g.iter_mut().zip(&s) {
                *gx = (wx * (*gx - dot)) * scale;
            }
            // dq[p,y] = Σ_x k[p,x]·gs[x] with the composed lhs zero-skip.
            for p in 0..n {
                let krow = &kb[p * l..(p + 1) * l];
                let mut acc = 0.0f32;
                for (&kv, &gs) in krow.iter().zip(&*g) {
                    if kv == 0.0 {
                        continue;
                    }
                    acc += kv * gs;
                }
                dqb[p * l + y] = acc;
            }
            // dk[p,x] += gs[x]·q[p,y]: query index y strictly increasing,
            // zero-skip on gs (the composed GEMM's lhs).
            for p in 0..n {
                let qv = qb[p * l + y];
                let dkrow = &mut dkb[p * l..(p + 1) * l];
                for (o, &gs) in dkrow.iter_mut().zip(&*g) {
                    if gs == 0.0 {
                        continue;
                    }
                    *o += gs * qv;
                }
            }
        }
    }
    (
        Tensor::from_vec(vec![b, n, l], dq).expect("attention_fm dq"),
        Tensor::from_vec(vec![b, n, l], dk).expect("attention_fm dk"),
        Tensor::from_vec(vec![b, nv, l], dv_all).expect("attention_fm dv"),
    )
}

/// Vector-backend feature-major backward for one batch. Query-column tiles
/// run serially in increasing order; `dk`/`dv` chains resume across tiles
/// via accumulate reloads, and the softmax+scale backward rows use the
/// tape's exact scalar expressions.
#[allow(clippy::too_many_arguments)]
fn fm_backward_vec(
    bk: Backend,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    dyb: &[f32],
    scale: f32,
    n: usize,
    nv: usize,
    l: usize,
    dqb: &mut [f32],
    dkb: &mut [f32],
    dvb: &mut [f32],
) {
    simd::with_scratch(|sc| {
        let simd::Scratch {
            pack_a: pk_buf,
            pack_b: pv_buf,
            pack_c: pt_buf,
            tile_a: e_buf,
            tile_b: g_buf,
            tile_c: q_buf,
            tile_d: dy_buf,
        } = sc;
        simd::pack_b(kb, n, l, false, pk_buf); // k panels: score recompute
        simd::pack_b(vb, nv, l, false, pv_buf); // v panels: g = vᵀ·dy
        let mut y0 = 0;
        while y0 < l {
            let t = ATTN_TILE.min(l - y0);
            // Recompute the softmax tile exactly as the forward did.
            q_buf.clear();
            q_buf.resize(n * t, 0.0);
            for p in 0..n {
                q_buf[p * t..(p + 1) * t].copy_from_slice(&qb[p * l + y0..p * l + y0 + t]);
            }
            e_buf.clear();
            e_buf.resize(t * l, 0.0);
            let qview = AView {
                data: q_buf,
                base: 0,
                row_stride: 1,
                p_stride: t,
            };
            simd::kernel(bk, qview, pk_buf, e_buf, t, n, l, false);
            for x in e_buf.iter_mut() {
                *x *= scale;
            }
            for r in 0..t {
                simd::softmax_row_with(bk, &mut e_buf[r * l..(r + 1) * l]);
            }
            // Gather dy[:, y0..y0+t] into a contiguous [nv, t] tile.
            dy_buf.clear();
            dy_buf.resize(nv * t, 0.0);
            for c in 0..nv {
                dy_buf[c * t..(c + 1) * t].copy_from_slice(&dyb[c * l + y0..c * l + y0 + t]);
            }
            // g[r,x] = Σ_c dy[c,y0+r]·v[c,x].
            g_buf.clear();
            g_buf.resize(t * l, 0.0);
            let dyview = AView {
                data: dy_buf,
                base: 0,
                row_stride: 1,
                p_stride: t,
            };
            simd::kernel(bk, dyview, pv_buf, g_buf, t, nv, l, false);
            // dv[c,x] += Σ_r dy[c,y0+r]·w[r,x]: accumulate chaining over
            // tiles keeps the query index globally increasing.
            simd::pack_b(e_buf, t, l, false, pt_buf);
            simd::kernel(bk, AView::rows(dy_buf, 0, t), pt_buf, dvb, nv, t, l, true);
            // gs[r,x] = (w[r,x]·(g[r,x] − dot))·scale, tape expressions.
            for r in 0..t {
                let srow = &e_buf[r * l..(r + 1) * l];
                let grow = &mut g_buf[r * l..(r + 1) * l];
                let dot: f32 = srow.iter().zip(grow.iter()).map(|(&a, &b)| a * b).sum();
                for (gx, &wx) in grow.iter_mut().zip(srow) {
                    *gx = (wx * (*gx - dot)) * scale;
                }
            }
            // dq[p,y0+r] = Σ_x k[p,x]·gs[r,x] via a transposed pack of gs;
            // the [n, t] tile reuses the dy buffer, then scatters back.
            simd::pack_b(g_buf, l, t, true, pt_buf);
            dy_buf.clear();
            dy_buf.resize(n * t, 0.0);
            simd::kernel(bk, AView::rows(kb, 0, l), pt_buf, dy_buf, n, l, t, false);
            for p in 0..n {
                for r in 0..t {
                    dqb[p * l + y0 + r] = dy_buf[p * t + r];
                }
            }
            // dk[p,x] += Σ_r q[p,y0+r]·gs[r,x]: same accumulate chaining.
            simd::pack_b(g_buf, t, l, false, pt_buf);
            simd::kernel(bk, AView::rows(q_buf, 0, t), pt_buf, dkb, n, t, l, true);
            y0 += t;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(shape: Vec<usize>, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |i| {
            (((i * 2_654_435_761 + seed * 97) % 1000) as f32 / 499.5 - 1.0) * 0.7
        })
    }

    /// Composed token-major reference: permute → bmm → scale → softmax →
    /// bmm, exactly the op chain the tape records without fusion.
    fn composed_tm(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
        let kt = k.permute(&[0, 2, 1]);
        let scores = q.bmm(&kt).scale(scale);
        scores.softmax_lastdim().bmm(v)
    }

    /// Composed feature-major (PAM) reference: `bᵗ·c` scores, transposed
    /// row-softmax, `v·pᵗ` output.
    fn composed_fm(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
        let bt = k.permute(&[0, 2, 1]);
        let e = bt.bmm(q).scale(scale);
        let p = e.permute(&[0, 2, 1]).softmax_lastdim();
        v.bmm(&p.permute(&[0, 2, 1]))
    }

    fn assert_bitwise(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn tm_forward_bitwise_matches_composed() {
        // Odd lengths (not multiples of ATTN_TILE), rectangular q/k, and a
        // size big enough to engage the tiled parallel path.
        for (b, lq, lk, d, dv) in [(1, 3, 5, 4, 2), (2, 33, 7, 5, 3), (1, 129, 129, 16, 16)] {
            let q = tensor(vec![b, lq, d], 1);
            let k = tensor(vec![b, lk, d], 2);
            let v = tensor(vec![b, lk, dv], 3);
            for scale in [1.0, 0.37] {
                assert_bitwise(
                    &attention_tm(&q, &k, &v, scale),
                    &composed_tm(&q, &k, &v, scale),
                );
            }
        }
    }

    #[test]
    fn fm_forward_bitwise_matches_composed() {
        for (b, n, nv, l) in [(1, 2, 3, 5), (2, 3, 3, 33), (1, 4, 4, 100)] {
            let q = tensor(vec![b, n, l], 4);
            let k = tensor(vec![b, n, l], 5);
            let v = tensor(vec![b, nv, l], 6);
            for scale in [1.0, 0.37] {
                assert_bitwise(
                    &attention_fm(&q, &k, &v, scale),
                    &composed_fm(&q, &k, &v, scale),
                );
            }
        }
    }

    #[test]
    fn tm_backward_shapes_and_zero_dy() {
        let q = tensor(vec![2, 5, 3], 7);
        let k = tensor(vec![2, 4, 3], 8);
        let v = tensor(vec![2, 4, 6], 9);
        let dy = Tensor::zeros(vec![2, 5, 6]);
        let (dq, dk, dv) = attention_tm_backward(&q, &k, &v, 0.5, &dy);
        assert_eq!(dq.shape(), q.shape());
        assert_eq!(dk.shape(), k.shape());
        assert_eq!(dv.shape(), v.shape());
        assert!(dq.data().iter().all(|&x| x == 0.0));
        assert!(dk.data().iter().all(|&x| x == 0.0));
        assert!(dv.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fm_backward_shapes() {
        let q = tensor(vec![1, 3, 7], 10);
        let k = tensor(vec![1, 3, 7], 11);
        let v = tensor(vec![1, 2, 7], 12);
        let dy = tensor(vec![1, 2, 7], 13);
        let (dq, dk, dv) = attention_fm_backward(&q, &k, &v, 1.0, &dy);
        assert_eq!(dq.shape(), q.shape());
        assert_eq!(dk.shape(), k.shape());
        assert_eq!(dv.shape(), v.shape());
    }

    #[test]
    fn tm_into_requires_zeroed_and_matches() {
        let q = tensor(vec![1, 4, 3], 14);
        let k = tensor(vec![1, 5, 3], 15);
        let v = tensor(vec![1, 5, 2], 16);
        let base = attention_tm(&q, &k, &v, 0.25);
        let mut buf = vec![0.0f32; base.numel()];
        attention_tm_into(&q, &k, &v, 0.25, &mut buf);
        assert_eq!(base.data(), &buf[..]);
    }
}
