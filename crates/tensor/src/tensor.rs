use std::fmt;

use mfaplace_rt::rng::Rng;

use crate::{numel, strides_for, TensorError};

/// A dense, row-major, heap-allocated `f32` tensor of arbitrary rank.
///
/// A rank-0 tensor (shape `[]`) holds a single scalar.
///
/// # Example
///
/// ```
/// use mfaplace_tensor::Tensor;
///
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elements])", self.data.len())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(vec![])
    }
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the number of elements implied by `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected = numel(&shape);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = numel(&shape);
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(&shape);
        Tensor {
            shape,
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Samples each element from `N(0, std^2)` using the Box–Muller transform.
    pub fn randn(shape: Vec<usize>, std: f32, rng: &mut impl Rng) -> Self {
        let n = numel(&shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// Samples each element uniformly from `[lo, hi)`.
    pub fn uniform(shape: Vec<usize>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        Tensor::from_fn(shape, |_| rng.gen_range(lo..hi))
    }

    // ------------------------------------------------------------ accessors

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Tensor rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Read-only view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The scalar value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor"
        );
        self.data[0]
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let i = self.flat_index(idx);
        self.data[i] = value;
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let strides = strides_for(&self.shape);
        idx.iter()
            .zip(&self.shape)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for axis of size {d}");
                i * s
            })
            .sum()
    }

    // ----------------------------------------------------------- reshaping

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Self, TensorError> {
        let expected = numel(&shape);
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`Tensor::reshape`] that only swaps the shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: Vec<usize>) -> Self {
        assert_eq!(numel(&shape), self.data.len(), "reshape element mismatch");
        self.shape = shape;
        self
    }

    // --------------------------------------------------------- element-wise

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two same-shape tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, c: f32) -> Self {
        self.map(|x| x * c)
    }

    /// Sums a list of same-shaped tensors with a **fixed-order pairwise
    /// tree reduction**: adjacent pairs are combined bottom-up
    /// (`((t0+t1)+(t2+t3))+…`), an odd leftover is promoted unchanged.
    ///
    /// The reduction order is a pure function of the list — it does not
    /// depend on how the tensors were produced or on any worker count — so
    /// data-parallel gradient combination through this function is bitwise
    /// identical for any sharding of the work. Returns `None` for an empty
    /// list. Panics on shape mismatch.
    pub fn tree_sum(mut level: Vec<Tensor>) -> Option<Tensor> {
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(a.add(&b)),
                    None => next.push(a),
                }
            }
            level = next;
        }
        level.pop()
    }

    /// Adds `other * c` into `self` in place. Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, c: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * c;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first on ties); `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.data.iter().enumerate() {
            if best.is_none_or(|(_, b)| x > b) {
                best = Some((i, x));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(vec![2, 3], vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
        assert!(Tensor::from_vec(vec![2, 3], vec![1.0; 6]).is_ok());
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.data()[12 + 2 * 4 + 3], 7.5);
    }

    #[test]
    fn scalar_tensor() {
        let t = Tensor::scalar(3.0);
        assert_eq!(t.rank(), 0);
        assert_eq!(t.item(), 3.0);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![4], vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(a.sum(), 2.5);
        assert_eq!(a.mean(), 0.625);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), Some(2));
    }

    #[test]
    fn randn_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn(vec![10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::zeros(vec![2, 3]);
        assert!(t.reshape(vec![3, 2]).is_ok());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn tree_sum_fixed_pairwise_order() {
        // Values chosen so float addition order is observable: summing
        // left-to-right vs pairwise gives different bit patterns.
        let vals = [1.0e8f32, 1.0, -1.0e8, 0.25, 3.0];
        let parts: Vec<Tensor> = vals.iter().map(|&v| Tensor::scalar(v)).collect();
        let got = Tensor::tree_sum(parts).unwrap().item();
        let expect = ((1.0e8f32 + 1.0) + (-1.0e8 + 0.25)) + 3.0;
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn tree_sum_edge_cases() {
        assert!(Tensor::tree_sum(Vec::new()).is_none());
        let one = Tensor::from_vec(vec![2], vec![1.5, -2.0]).unwrap();
        assert_eq!(Tensor::tree_sum(vec![one.clone()]).unwrap(), one);
    }
}
