//! Weight initialization schemes.

use mfaplace_rt::rng::Rng;

use crate::Tensor;

/// Kaiming (He) normal initialization for ReLU networks: `N(0, sqrt(2/fan_in))`.
///
/// `fan_in` is the number of input connections per output unit (for a conv
/// layer, `in_channels * kh * kw`).
///
/// ```
/// use mfaplace_tensor::kaiming_normal;
/// use mfaplace_rt::rng::{SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let w = kaiming_normal(vec![16, 8, 3, 3], 8 * 9, &mut rng);
/// assert_eq!(w.shape(), &[16, 8, 3, 3]);
/// ```
pub fn kaiming_normal(shape: Vec<usize>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(shape, std, rng)
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Used for linear/attention projections.
pub fn xavier_uniform(
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = kaiming_normal(vec![20_000], 50, &mut rng);
        let var = w.sq_norm() / w.numel() as f32;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.15, "var {var}");
    }

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(vec![1000], 30, 30, &mut rng);
        let a = (6.0f32 / 60.0).sqrt();
        assert!(w.max() <= a && w.min() >= -a);
    }
}
