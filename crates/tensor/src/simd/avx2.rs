//! AVX2 + FMA microkernels (x86_64).
//!
//! Every function in this module is `unsafe` and carries
//! `#[target_feature(enable = "avx2", enable = "fma")]`: callers must have
//! verified support via `is_x86_feature_detected!` (the dispatch layer in
//! `simd::mod` does this once per process).
//!
//! The GEMM microkernel computes `MR x NR` output tiles from broadcast-A /
//! packed-B panels: per output element the contraction is a single FMA
//! chain over `p` in increasing order, so lane position and tile shape
//! never change an element's bits (see the `simd` module docs for why this
//! is the load-bearing property). Column tails run the same full-width
//! panel arithmetic against zero-padded lanes and store through a stack
//! buffer; row tails drop to a 1 x NR variant of the identical chain.

use core::arch::x86_64::*;

use super::{AView, MR, NR};

/// Packed-panel GEMM tile loop. See [`super::kernel`] for the contract;
/// bounds are asserted there.
///
/// # Safety
///
/// Requires AVX2 + FMA. `packed` must hold `ceil(n/NR)` panels of `k*NR`
/// elements; `out` must be `rows * n`; the A view must be in bounds for
/// all `(row, p)` pairs.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn gemm_packed(
    a: AView<'_>,
    packed: &[f32],
    out: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let ad = a.data.as_ptr();
    let nb = n.div_ceil(NR);
    for jb in 0..nb {
        let j0 = jb * NR;
        let width = NR.min(n - j0);
        let panel = packed.as_ptr().add(jb * k * NR);
        let mut r = 0;
        while r + MR <= rows {
            gemm_tile::<MR>(ad, &a, r, panel, out, j0, width, k, n, accumulate);
            r += MR;
        }
        while r < rows {
            gemm_tile::<1>(ad, &a, r, panel, out, j0, width, k, n, accumulate);
            r += 1;
        }
    }
}

/// One `R x NR` tile: R row accumulator pairs walking the panel over `p`.
/// Full-width tiles load/store `out` directly; column tails bounce through
/// a zero-padded stack buffer so the arithmetic (and therefore every
/// element's FMA chain) is identical to the full-width path.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_tile<const R: usize>(
    ad: *const f32,
    a: &AView<'_>,
    r0: usize,
    panel: *const f32,
    out: &mut [f32],
    j0: usize,
    width: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let full = width == NR;
    let mut acc = [[_mm256_setzero_ps(); 2]; R];
    if accumulate {
        if full {
            for (i, accr) in acc.iter_mut().enumerate() {
                let orow = out.as_ptr().add((r0 + i) * n + j0);
                accr[0] = _mm256_loadu_ps(orow);
                accr[1] = _mm256_loadu_ps(orow.add(8));
            }
        } else {
            let mut buf = [0.0f32; NR];
            for (i, accr) in acc.iter_mut().enumerate() {
                let orow = out.as_ptr().add((r0 + i) * n + j0);
                buf[width..].fill(0.0);
                for (lane, b) in buf.iter_mut().enumerate().take(width) {
                    *b = *orow.add(lane);
                }
                accr[0] = _mm256_loadu_ps(buf.as_ptr());
                accr[1] = _mm256_loadu_ps(buf.as_ptr().add(8));
            }
        }
    }
    for p in 0..k {
        let b0 = _mm256_loadu_ps(panel.add(p * NR));
        let b1 = _mm256_loadu_ps(panel.add(p * NR + 8));
        for (i, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ad.add(a.base + (r0 + i) * a.row_stride + p * a.p_stride));
            accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
            accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
        }
    }
    if full {
        for (i, accr) in acc.iter().enumerate() {
            let orow = out.as_mut_ptr().add((r0 + i) * n + j0);
            _mm256_storeu_ps(orow, accr[0]);
            _mm256_storeu_ps(orow.add(8), accr[1]);
        }
    } else {
        let mut buf = [0.0f32; NR];
        for (i, accr) in acc.iter().enumerate() {
            let orow = out.as_mut_ptr().add((r0 + i) * n + j0);
            _mm256_storeu_ps(buf.as_mut_ptr(), accr[0]);
            _mm256_storeu_ps(buf.as_mut_ptr().add(8), accr[1]);
            for (lane, &b) in buf.iter().enumerate().take(width) {
                *orow.add(lane) = b;
            }
        }
    }
}

// --------------------------------------------------------------- softmax

use super::exp::{
    exp_scalar, EXP_C1, EXP_C2, EXP_HI, EXP_LO, EXP_P0, EXP_P1, EXP_P2, EXP_P3, EXP_P4, EXP_P5,
    LOG2EF,
};

/// Polynomial `exp` of 8 lanes (Cephes coefficients, FMA evaluation).
///
/// # Safety
///
/// Requires AVX2 + FMA.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp8(x: __m256) -> __m256 {
    let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
    let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
    let fx = _mm256_floor_ps(_mm256_fmadd_ps(
        x,
        _mm256_set1_ps(LOG2EF),
        _mm256_set1_ps(0.5),
    ));
    let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(EXP_C1), x);
    let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(EXP_C2), x);
    let z = _mm256_mul_ps(x, x);
    let mut y = _mm256_set1_ps(EXP_P0);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P1));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P2));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P3));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P4));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P5));
    y = _mm256_add_ps(_mm256_fmadd_ps(y, z, x), _mm256_set1_ps(1.0));
    let emm0 = _mm256_slli_epi32(
        _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(127)),
        23,
    );
    _mm256_mul_ps(y, _mm256_castsi256_ps(emm0))
}

/// In-place softmax of one row: exact max, polynomial exp (vector body +
/// scalar-twin tail), fixed-tree lane sum + in-order tail sum, exact
/// divide. Deterministic for a given row regardless of surrounding shape.
///
/// # Safety
///
/// Requires AVX2 + FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let n = row.len();
    let body = n / 8 * 8;
    let ptr = row.as_mut_ptr();
    // Row max (exact, so reduction shape is irrelevant for finite data).
    let mut m = f32::NEG_INFINITY;
    if body > 0 {
        let mut mv = _mm256_loadu_ps(ptr);
        for i in (8..body).step_by(8) {
            mv = _mm256_max_ps(mv, _mm256_loadu_ps(ptr.add(i)));
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
        for &l in &lanes {
            m = m.max(l);
        }
    }
    for i in body..n {
        m = m.max(*ptr.add(i));
    }
    // exp(x - m) and the sum: lane partials in a fixed tree, then the tail
    // in index order.
    let mv = _mm256_set1_ps(m);
    let mut zv = _mm256_setzero_ps();
    for i in (0..body).step_by(8) {
        let e = exp8(_mm256_sub_ps(_mm256_loadu_ps(ptr.add(i)), mv));
        _mm256_storeu_ps(ptr.add(i), e);
        zv = _mm256_add_ps(zv, e);
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), zv);
    let mut z = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for i in body..n {
        let e = exp_scalar(*ptr.add(i) - m);
        *ptr.add(i) = e;
        z += e;
    }
    let zvec = _mm256_set1_ps(z);
    for i in (0..body).step_by(8) {
        _mm256_storeu_ps(ptr.add(i), _mm256_div_ps(_mm256_loadu_ps(ptr.add(i)), zvec));
    }
    for i in body..n {
        *ptr.add(i) /= z;
    }
}

// ------------------------------------------------------------ layer norm

/// Layer norm over rows of width `d` with optional `xhat`/`inv_std`
/// capture for the tape backward. Mean and variance are lane-parallel
/// reductions (one FMA chain per lane for the variance) combined in a
/// fixed tree plus an in-order scalar tail; the normalize stage is one
/// FMA per element, with `f32::mul_add` on the row tail so every element
/// of a row sees identical arithmetic. Deterministic per row.
///
/// # Safety
///
/// Requires AVX2 + FMA. Slice lengths are asserted by the dispatching
/// caller (`layer_norm_rows_with`).
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn layer_norm_rows(
    src: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    d: usize,
    out: &mut [f32],
    mut xhat: Option<&mut [f32]>,
    mut inv_std: Option<&mut [f32]>,
) {
    let rows = src.len() / d;
    let body = d / 8 * 8;
    let gp = gamma.as_ptr();
    let bp = beta.as_ptr();
    for r in 0..rows {
        let rp = src.as_ptr().add(r * d);
        // Row sum: lane partials, fixed-tree combine, in-order tail.
        let mut sv = _mm256_setzero_ps();
        for i in (0..body).step_by(8) {
            sv = _mm256_add_ps(sv, _mm256_loadu_ps(rp.add(i)));
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), sv);
        let mut sum = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
            + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
        for i in body..d {
            sum += *rp.add(i);
        }
        let mean = sum / d as f32;
        // Σ (x - mean)²: one FMA chain per lane, same combine shape.
        let mv = _mm256_set1_ps(mean);
        let mut vv = _mm256_setzero_ps();
        for i in (0..body).step_by(8) {
            let dv = _mm256_sub_ps(_mm256_loadu_ps(rp.add(i)), mv);
            vv = _mm256_fmadd_ps(dv, dv, vv);
        }
        _mm256_storeu_ps(lanes.as_mut_ptr(), vv);
        let mut varsum = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
            + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
        for i in body..d {
            let dv = *rp.add(i) - mean;
            varsum = dv.mul_add(dv, varsum);
        }
        let var = varsum / d as f32;
        let is = 1.0 / (var + eps).sqrt();
        if let Some(buf) = inv_std.as_deref_mut() {
            buf[r] = is;
        }
        // Normalize + affine: xh = (x - mean) * is, out = fma(g, xh, b).
        let op = out.as_mut_ptr().add(r * d);
        let isv = _mm256_set1_ps(is);
        let xh_ptr = xhat.as_deref_mut().map(|buf| buf.as_mut_ptr().add(r * d));
        for i in (0..body).step_by(8) {
            let xh = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(rp.add(i)), mv), isv);
            if let Some(xp) = xh_ptr {
                _mm256_storeu_ps(xp.add(i), xh);
            }
            let o = _mm256_fmadd_ps(_mm256_loadu_ps(gp.add(i)), xh, _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(op.add(i), o);
        }
        for i in body..d {
            let xh = (*rp.add(i) - mean) * is;
            if let Some(xp) = xh_ptr {
                *xp.add(i) = xh;
            }
            *op.add(i) = (*gp.add(i)).mul_add(xh, *bp.add(i));
        }
    }
}

// --------------------------------------------------------- conv epilogue

/// Fused bias/affine/ReLU run. Per element this is the same IEEE
/// add / mul / add / max sequence as the scalar reference (the affine
/// stage is deliberately mul-then-add, **not** FMA), so the result is
/// bitwise identical to scalar — which keeps the compiled plan bitwise
/// equal to the tape under every backend.
///
/// # Safety
///
/// Requires AVX2 + FMA. `src.len() == dst.len()` (asserted by the caller).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn conv_epilogue(
    src: &[f32],
    dst: &mut [f32],
    bias: Option<f32>,
    affine: Option<(f32, f32)>,
    relu: bool,
) {
    let n = src.len();
    let body = n / 8 * 8;
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let bv = _mm256_set1_ps(bias.unwrap_or(0.0));
    let (sc, sh) = affine.unwrap_or((0.0, 0.0));
    let scv = _mm256_set1_ps(sc);
    let shv = _mm256_set1_ps(sh);
    let zero = _mm256_setzero_ps();
    for i in (0..body).step_by(8) {
        let mut v = _mm256_loadu_ps(sp.add(i));
        if bias.is_some() {
            v = _mm256_add_ps(v, bv);
        }
        if affine.is_some() {
            v = _mm256_add_ps(_mm256_mul_ps(scv, v), shv);
        }
        if relu {
            v = _mm256_max_ps(v, zero);
        }
        _mm256_storeu_ps(dp.add(i), v);
    }
    for i in body..n {
        let mut v = *sp.add(i);
        if let Some(b) = bias {
            v += b;
        }
        if let Some((sc, sh)) = affine {
            v = sc * v + sh;
        }
        if relu {
            v = v.max(0.0);
        }
        *dp.add(i) = v;
    }
}

// -------------------------------------------------------------- int8 GEMM

/// Exact int8 GEMM over full rows: `out[r, j] = Σ_p a[r,p] · b[p,j]` in
/// i32, `a` row-major `[m, k]`, `b` row-major `[k, n]`.
///
/// Pairs of contraction rows are sign-extended to i16 lanes, interleaved
/// with `unpacklo/hi_epi16` and combined by `_mm256_madd_epi16` — the
/// `maddubs`-style pair-accumulate shape, but on i16 inputs so nothing can
/// saturate (|q| ≤ 127 keeps each pair sum ≤ 2·127², far below the i32
/// madd result range). Every output element is an exact integer sum, so
/// this kernel is **bitwise identical** to the scalar reference and the
/// NEON twin — a stronger contract than the f32 kernels carry.
///
/// # Safety
///
/// Requires AVX2. `a` must hold `m*k`, `b` `k*n`, `out` `m*n` elements.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn i8_gemm(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    #[inline]
    unsafe fn load16(b: &[i8], off: usize, width: usize) -> __m128i {
        if width == 16 {
            _mm_loadu_si128(b.as_ptr().add(off) as *const __m128i)
        } else {
            let mut buf = [0i8; 16];
            buf[..width].copy_from_slice(&b[off..off + width]);
            _mm_loadu_si128(buf.as_ptr() as *const __m128i)
        }
    }

    for r in 0..m {
        let arow = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        let mut j0 = 0usize;
        while j0 < n {
            let width = (n - j0).min(16);
            let mut acc_lo = _mm256_setzero_si256();
            let mut acc_hi = _mm256_setzero_si256();
            let mut p = 0usize;
            while p < k {
                let pair = p + 1 < k;
                let w0 = _mm256_cvtepi8_epi16(load16(b, p * n + j0, width));
                let w1 = if pair {
                    _mm256_cvtepi8_epi16(load16(b, (p + 1) * n + j0, width))
                } else {
                    _mm256_setzero_si256()
                };
                // Interleave rows p and p+1 so each i32 madd lane holds one
                // column's (b[p,j], b[p+1,j]) pair.
                let lo = _mm256_unpacklo_epi16(w0, w1);
                let hi = _mm256_unpackhi_epi16(w0, w1);
                let a0 = u32::from(arow[p] as i16 as u16);
                let a1 = if pair {
                    u32::from(arow[p + 1] as i16 as u16)
                } else {
                    0
                };
                let apair = _mm256_set1_epi32((a0 | (a1 << 16)) as i32);
                acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(apair, lo));
                acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(apair, hi));
                p += 2;
            }
            // acc_lo i32 lanes are columns j0+{0..3 | 8..11}, acc_hi
            // j0+{4..7 | 12..15}; permute back to column order.
            let res0 = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x20);
            let res1 = _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31);
            if width == 16 {
                _mm256_storeu_si256(orow.as_mut_ptr().add(j0) as *mut __m256i, res0);
                _mm256_storeu_si256(orow.as_mut_ptr().add(j0 + 8) as *mut __m256i, res1);
            } else {
                let mut buf = [0i32; 16];
                _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, res0);
                _mm256_storeu_si256(buf.as_mut_ptr().add(8) as *mut __m256i, res1);
                orow[j0..j0 + width].copy_from_slice(&buf[..width]);
            }
            j0 += 16;
        }
    }
}
