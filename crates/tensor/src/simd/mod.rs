//! Runtime-dispatched SIMD microkernels.
//!
//! The hot inner loops of the tensor crate — the GEMM family
//! (`matmul2d`/`bmm`/`bmm_nt`/`bmm_tn` and the plan executor's slice entry
//! points), softmax rows, the fused conv epilogue and the fused attention
//! tiles — route through one of three backends selected **once per
//! process**:
//!
//! - [`Backend::Scalar`] — the original scalar loops, kept verbatim in
//!   `kernels.rs`/`attention.rs`/`lowlevel.rs`. This is the **bitwise
//!   reference**: every golden file and every pre-existing equivalence
//!   suite pins its results to this backend.
//! - [`Backend::Avx2`] — AVX2 + FMA packed-panel microkernels (x86_64),
//!   detected via `is_x86_feature_detected!`.
//! - [`Backend::Neon`] — NEON microkernels (aarch64, always available).
//!
//! The backend is chosen from the `MFAPLACE_KERNELS` environment variable
//! (`auto` | `scalar` | `avx2` | `neon`, default `auto`) on first kernel
//! use, or forced programmatically via [`force`] (the CLI `--kernels`
//! flag). Forcing an unsupported backend through the environment falls
//! back to auto-detection with a warning; forcing through [`force`]
//! returns an error so the CLI can reject it cleanly.
//!
//! # Numeric contract
//!
//! The vector backends do **not** promise bitwise equality with the scalar
//! reference — vectorized reductions use FMA chains (one rounding per
//! multiply-add instead of two) and the vector softmax uses a polynomial
//! `exp`. They promise something more structured:
//!
//! 1. **Per-element contraction-order chains.** Every GEMM-family output
//!    element is produced by a single accumulator walking the contraction
//!    index in increasing order (an FMA chain), vectorized across
//!    *independent output columns*. Column position, row blocking, panel
//!    packing, batch size and thread count never change an element's
//!    chain, so every *within-backend* bitwise contract in the codebase —
//!    fused-vs-composed attention (values and gradients), plan-vs-tape,
//!    batched-vs-single, serial-vs-parallel, `bmm_nt`/`bmm_tn` vs composed
//!    permute — holds under the vector backends exactly as it does under
//!    scalar. Only *scalar-vs-vector* comparisons need a tolerance.
//! 2. **Tolerance vs. scalar.** Vector results stay within `1e-5` of the
//!    output scale of the scalar reference in max-norm (the `fold_bn`
//!    precedent, relaxed from `1e-6` because FMA contraction differences
//!    grow with reduction length). `crates/tensor/tests/simd_equivalence.rs`
//!    enforces this per kernel; `crates/core/tests/kernel_tolerance.rs`
//!    enforces it end-to-end per zoo architecture, where the predictor-level
//!    acceptance is "the 8-class argmax congestion level map is unchanged".
//! 3. **Elementwise ops stay bitwise.** The fused conv epilogue
//!    (bias/affine/ReLU) is elementwise; its vector form performs the same
//!    IEEE ops per element and remains bitwise identical to scalar.

use std::sync::atomic::{AtomicU8, Ordering};

use mfaplace_rt::pool;

use crate::kernels;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod exp;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Kernel backend identifier. See the module docs for the numeric
/// contract each backend carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops — the bitwise-golden reference.
    Scalar,
    /// AVX2 + FMA microkernels (x86_64).
    Avx2,
    /// NEON microkernels (aarch64).
    Neon,
}

impl Backend {
    /// Stable lowercase name (`scalar` / `avx2` / `neon`) used by the CLI,
    /// `model-info`, the `mfaplace_kernel_backend` metrics gauge and bench
    /// labels.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parses a knob value. `auto` (or empty) parses to `None`, meaning
    /// "detect the best supported backend".
    pub fn parse(s: &str) -> Result<Option<Backend>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(None),
            "scalar" => Ok(Some(Backend::Scalar)),
            "avx2" => Ok(Some(Backend::Avx2)),
            "neon" => Ok(Some(Backend::Neon)),
            other => Err(format!(
                "unknown kernel backend '{other}' (expected auto|scalar|avx2|neon)"
            )),
        }
    }

    /// Whether this backend can execute on the current host.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => true,
            #[cfg(not(target_arch = "aarch64"))]
            Backend::Neon => false,
        }
    }
}

/// Best backend the current host supports.
pub fn detect() -> Backend {
    if Backend::Avx2.is_supported() {
        Backend::Avx2
    } else if Backend::Neon.is_supported() {
        Backend::Neon
    } else {
        Backend::Scalar
    }
}

/// Every backend the current host supports, scalar first.
pub fn supported() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if Backend::Avx2.is_supported() {
        v.push(Backend::Avx2);
    }
    if Backend::Neon.is_supported() {
        v.push(Backend::Neon);
    }
    v
}

/// Process-global active backend: 0 = uninitialized, else `Backend as u8
/// + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
        Backend::Neon => 3,
    }
}

fn decode(v: u8) -> Option<Backend> {
    match v {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Avx2),
        3 => Some(Backend::Neon),
        _ => None,
    }
}

/// The active backend, initializing from `MFAPLACE_KERNELS` on first use.
///
/// An unknown or host-unsupported value in the environment prints one
/// warning to stderr and falls back to auto-detection — kernels must keep
/// working under a typo'd service environment. Use [`force`] for strict
/// validation.
pub fn active() -> Backend {
    if let Some(b) = decode(ACTIVE.load(Ordering::Relaxed)) {
        return b;
    }
    let requested = std::env::var("MFAPLACE_KERNELS").unwrap_or_default();
    let chosen = match Backend::parse(&requested) {
        Ok(None) => detect(),
        Ok(Some(b)) if b.is_supported() => b,
        Ok(Some(b)) => {
            eprintln!(
                "warning: MFAPLACE_KERNELS={} is not supported on this host; using {}",
                b.name(),
                detect().name()
            );
            detect()
        }
        Err(e) => {
            eprintln!("warning: {e}; using {}", detect().name());
            detect()
        }
    };
    // A racing initializer computes the same value; last store wins.
    ACTIVE.store(encode(chosen), Ordering::Relaxed);
    chosen
}

/// Forces the active backend for the rest of the process (`None` =
/// auto-detect). Returns the backend that is now active, or an error if
/// the requested backend is not supported on this host.
pub fn force(choice: Option<Backend>) -> Result<Backend, String> {
    let chosen = match choice {
        None => detect(),
        Some(b) if b.is_supported() => b,
        Some(b) => {
            return Err(format!(
                "kernel backend '{}' is not supported on this host (detected: {})",
                b.name(),
                detect().name()
            ))
        }
    };
    ACTIVE.store(encode(chosen), Ordering::Relaxed);
    Ok(chosen)
}

// --------------------------------------------------------------- scratch

/// Vector-lane panel width of the packed-B microkernels. Both ISAs pack
/// `NR`-column panels (AVX2 consumes them as two 8-lane registers, NEON as
/// four 4-lane registers); the per-element FMA chain is identical either
/// way, so the two vector backends produce bitwise-identical GEMM results.
pub(crate) const NR: usize = 16;

/// Output rows per microkernel step.
const MR: usize = 4;

/// Per-thread reusable buffers for panel packing and attention tiles, so
/// the steady-state vector path allocates nothing per call (matching the
/// plan executor's amortized zero-allocation property).
#[derive(Default)]
pub(crate) struct Scratch {
    pub pack_a: Vec<f32>,
    pub pack_b: Vec<f32>,
    pub pack_c: Vec<f32>,
    pub tile_a: Vec<f32>,
    pub tile_b: Vec<f32>,
    pub tile_c: Vec<f32>,
    pub tile_d: Vec<f32>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

/// Runs `f` with this thread's kernel scratch. Do not nest.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

// ------------------------------------------------------------ B packing

/// Packs `b` into `ceil(n / NR)` column panels of `k` rows each
/// (`panel[jb][p][lane] = b[p, jb*NR + lane]`), zero-padding lanes past
/// `n`. With `trans`, `b` is `[n, k]` and the packed panel reads
/// `b[jb*NR + lane, p]` — the packed result is the transpose, which turns
/// an NT product into the NN microkernel without changing any output
/// element's contraction order.
pub(crate) fn pack_b(src: &[f32], k: usize, n: usize, trans: bool, buf: &mut Vec<f32>) {
    let nb = n.div_ceil(NR);
    buf.clear();
    buf.resize(nb * k * NR, 0.0);
    for jb in 0..nb {
        let j0 = jb * NR;
        let width = NR.min(n - j0);
        let panel = &mut buf[jb * k * NR..(jb + 1) * k * NR];
        if trans {
            for lane in 0..width {
                let col = &src[(j0 + lane) * k..(j0 + lane + 1) * k];
                for (p, &v) in col.iter().enumerate() {
                    panel[p * NR + lane] = v;
                }
            }
        } else {
            for (p, prow) in panel.chunks_mut(NR).enumerate() {
                let brow = &src[p * n + j0..p * n + j0 + width];
                prow[..width].copy_from_slice(brow);
            }
        }
    }
}

// ----------------------------------------------------------- microkernel

/// Strided view of the A operand of [`kernel`]: element `(row, p)` of the
/// product reads `a[base + row * row_stride + p * p_stride]`. Covers NN
/// (`row_stride = k, p_stride = 1`), TN (`row_stride = 1, p_stride = m`)
/// and packed attention tiles without copying A.
#[derive(Clone, Copy)]
pub(crate) struct AView<'a> {
    pub data: &'a [f32],
    pub base: usize,
    pub row_stride: usize,
    pub p_stride: usize,
}

impl<'a> AView<'a> {
    pub(crate) fn rows(data: &'a [f32], base: usize, k: usize) -> Self {
        AView {
            data,
            base,
            row_stride: k,
            p_stride: 1,
        }
    }
}

/// Packed-panel GEMM microkernel: `out[r, j] (+)= Σ_p A(row0+r, p) ·
/// panel[j, p]` over `rows x n` outputs, `out` row-major with stride `n`.
///
/// Each output element is one FMA chain over `p` in increasing order —
/// lane position, row grouping and column-tail handling never change an
/// element's arithmetic, which is what keeps every within-backend bitwise
/// contract intact (see module docs). With `accumulate`, chains start from
/// the existing `out` value (an exact f32 reload), so tiled accumulation
/// over a leading index is bitwise identical to one long chain.
///
/// # Panics
///
/// Panics if `bk == Backend::Scalar` (callers dispatch the scalar
/// reference in `kernels.rs` instead), or on slice-length mismatches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn kernel(
    bk: Backend,
    a: AView<'_>,
    packed: &[f32],
    out: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if rows == 0 || n == 0 {
        return;
    }
    assert_eq!(out.len(), rows * n, "simd kernel output length mismatch");
    assert!(
        packed.len() >= n.div_ceil(NR) * k * NR,
        "simd kernel packed panel too small"
    );
    if k > 0 {
        let last = a.base + (rows - 1) * a.row_stride + (k - 1) * a.p_stride;
        assert!(last < a.data.len(), "simd kernel A view out of bounds");
    }
    match bk {
        Backend::Scalar => panic!("simd kernel called with scalar backend"),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only ever active()/forced when
        // `is_x86_feature_detected!` confirmed avx2+fma; bounds asserted
        // above.
        Backend::Avx2 => unsafe { avx2::gemm_packed(a, packed, out, rows, k, n, accumulate) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; bounds asserted above.
        Backend::Neon => unsafe { neon::gemm_packed(a, packed, out, rows, k, n, accumulate) },
        #[allow(unreachable_patterns)]
        other => panic!(
            "kernel backend {} not compiled on this target",
            other.name()
        ),
    }
}

// ------------------------------------------------- dispatched GEMM entry

/// Vector-backend GEMM `out (+)= a[m,k] * b[k,n]` with the same
/// row-parallel fan-out policy as the scalar [`kernels::gemm`]. Packs `b`
/// once into this thread's scratch; worker rows share the packed panels.
#[allow(clippy::too_many_arguments)]
fn gemm_vec(
    bk: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    trans_b: bool,
    a_tn: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    with_scratch(|sc| {
        pack_b(b, k, n, trans_b, &mut sc.pack_a);
        let packed: &[f32] = &sc.pack_a;
        let aview = |row0: usize| {
            if a_tn {
                AView {
                    data: a,
                    base: row0,
                    row_stride: 1,
                    p_stride: m,
                }
            } else {
                AView::rows(a, row0 * k, k)
            }
        };
        let nt = if m * k * n >= kernels::PAR_GEMM_FLOPS {
            pool::max_threads().min(m)
        } else {
            1
        };
        if nt <= 1 {
            kernel(bk, aview(0), packed, out, m, k, n, accumulate);
            return;
        }
        let rows_per = m.div_ceil(nt);
        pool::parallel_chunks_mut(out, rows_per * n, |ci, chunk| {
            let rows = chunk.len() / n;
            kernel(
                bk,
                aview(ci * rows_per),
                packed,
                chunk,
                rows,
                k,
                n,
                accumulate,
            );
        });
    });
}

/// Explicit-backend `out (+)= a[m,k] x b[k,n]` — the differential test
/// suite's entry point; the dispatched [`kernels::gemm`] calls this with
/// [`active`]. Scalar delegates to the verbatim reference loops.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with(
    bk: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    match bk {
        Backend::Scalar => kernels::gemm_scalar(a, b, out, m, k, n, accumulate),
        bk => gemm_vec(bk, a, b, out, m, k, n, accumulate, false, false),
    }
}

/// Explicit-backend `out = a[m,k] x b[n,k]^T`. See [`gemm_with`].
pub fn gemm_nt_with(
    bk: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm_nt lhs length mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt output length mismatch");
    match bk {
        Backend::Scalar => kernels::gemm_nt_scalar(a, b, out, m, k, n),
        bk => gemm_vec(bk, a, b, out, m, k, n, false, true, false),
    }
}

/// Explicit-backend `out = a[k,m]^T x b[k,n]`. See [`gemm_with`].
pub fn gemm_tn_with(
    bk: Backend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_tn output length mismatch");
    match bk {
        Backend::Scalar => kernels::gemm_tn_scalar(a, b, out, m, k, n),
        bk => gemm_vec(bk, a, b, out, m, k, n, false, false, true),
    }
}

// --------------------------------------------------------------- softmax

/// Explicit-backend in-place softmax of one row. The scalar backend is the
/// verbatim reference loop (max fold, `f32::exp` + sum pass, divide); the
/// vector backends use an exact max, a polynomial `exp` (Cephes
/// coefficients, FMA evaluation, identical per element between the vector
/// body and the scalar-code tail), a fixed-tree lane sum plus in-order
/// tail sum, and an exact IEEE divide. Deterministic per backend.
pub fn softmax_row_with(bk: Backend, row: &mut [f32]) {
    match bk {
        Backend::Scalar => crate::attention::softmax_row_scalar(row),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only active when detection confirmed avx2+fma.
        Backend::Avx2 => unsafe { avx2::softmax_row(row) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Backend::Neon => unsafe { neon::softmax_row(row) },
        #[allow(unreachable_patterns)]
        other => panic!(
            "kernel backend {} not compiled on this target",
            other.name()
        ),
    }
}

// ------------------------------------------------------------ layer norm

/// Explicit-backend layer norm over rows of width `d`:
/// `out[r,k] = gamma[k] * (src[r,k] - mean_r) * inv_std_r + beta[k]`.
///
/// Optional `xhat` (`rows*d`) and `inv_std` (`rows`) outputs serve the
/// tape's backward pass; filling them never changes `out`. The scalar
/// backend is the verbatim reference loop (in-order sums, mul-then-add
/// affine); the vector backends use lane-parallel FMA reduction chains
/// for the mean/variance sums (fixed-tree lane combine plus in-order
/// scalar tail) and one FMA per element for the affine, with the
/// row-tail elements computed by `f32::mul_add` so every element of a row
/// sees identical arithmetic. Deterministic per backend; scalar-vs-vector
/// differences stay within the module-level tolerance contract.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_rows_with(
    bk: Backend,
    src: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    d: usize,
    out: &mut [f32],
    xhat: Option<&mut [f32]>,
    inv_std: Option<&mut [f32]>,
) {
    assert!(d > 0, "layer norm row width must be positive");
    assert_eq!(src.len() % d, 0, "layer norm input not a multiple of d");
    assert_eq!(src.len(), out.len(), "layer norm output length mismatch");
    assert!(
        gamma.len() >= d && beta.len() >= d,
        "layer norm affine too short"
    );
    let rows = src.len() / d;
    if let Some(xh) = &xhat {
        assert_eq!(xh.len(), src.len(), "layer norm xhat length mismatch");
    }
    if let Some(is) = &inv_std {
        assert_eq!(is.len(), rows, "layer norm inv_std length mismatch");
    }
    match bk {
        Backend::Scalar => layer_norm_rows_scalar(src, gamma, beta, eps, d, out, xhat, inv_std),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only active when detection confirmed avx2+fma;
        // lengths asserted above.
        Backend::Avx2 => unsafe {
            avx2::layer_norm_rows(src, gamma, beta, eps, d, out, xhat, inv_std)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; lengths asserted above.
        Backend::Neon => unsafe {
            neon::layer_norm_rows(src, gamma, beta, eps, d, out, xhat, inv_std)
        },
        #[allow(unreachable_patterns)]
        other => panic!(
            "kernel backend {} not compiled on this target",
            other.name()
        ),
    }
}

/// Scalar reference layer norm — the exact per-element arithmetic the
/// tape recorded before vectorization (golden files pin this path).
#[allow(clippy::too_many_arguments)]
pub(crate) fn layer_norm_rows_scalar(
    src: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    d: usize,
    out: &mut [f32],
    mut xhat: Option<&mut [f32]>,
    mut inv_std: Option<&mut [f32]>,
) {
    let rows = src.len() / d;
    for r in 0..rows {
        let row = &src[r * d..(r + 1) * d];
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let is = 1.0 / (var + eps).sqrt();
        if let Some(buf) = inv_std.as_deref_mut() {
            buf[r] = is;
        }
        for k in 0..d {
            let xh = (row[k] - mean) * is;
            if let Some(buf) = xhat.as_deref_mut() {
                buf[r * d + k] = xh;
            }
            out[r * d + k] = gamma[k] * xh + beta[k];
        }
    }
}

// --------------------------------------------------------- conv epilogue

/// Explicit-backend fused conv epilogue over one contiguous run:
/// `dst = relu(scale*(src + bias) + shift)` with each stage optional.
/// Elementwise, so **bitwise identical across all backends** — the vector
/// form issues the same IEEE add/mul/add/max per element as the scalar
/// loop (`mul` + `add` for the affine stage, deliberately *not* FMA).
pub fn conv_epilogue_with(
    bk: Backend,
    src: &[f32],
    dst: &mut [f32],
    bias: Option<f32>,
    affine: Option<(f32, f32)>,
    relu: bool,
) {
    assert_eq!(src.len(), dst.len(), "conv epilogue length mismatch");
    match bk {
        Backend::Scalar => conv_epilogue_scalar(src, dst, bias, affine, relu),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only active when detection confirmed avx2+fma.
        Backend::Avx2 => unsafe { avx2::conv_epilogue(src, dst, bias, affine, relu) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        Backend::Neon => unsafe { neon::conv_epilogue(src, dst, bias, affine, relu) },
        #[allow(unreachable_patterns)]
        other => panic!(
            "kernel backend {} not compiled on this target",
            other.name()
        ),
    }
}

/// Scalar reference epilogue run — the exact per-element sequence of the
/// tape's `AddBiasChannel` → `ChannelAffine` → `Relu` nodes.
pub(crate) fn conv_epilogue_scalar(
    src: &[f32],
    dst: &mut [f32],
    bias: Option<f32>,
    affine: Option<(f32, f32)>,
    relu: bool,
) {
    for (o, &yv) in dst.iter_mut().zip(src) {
        let mut v = yv;
        if let Some(bv) = bias {
            v += bv;
        }
        if let Some((sc, sh)) = affine {
            v = sc * v + sh;
        }
        if relu {
            v = v.max(0.0);
        }
        *o = v;
    }
}

// ------------------------------------------------------------- int8 GEMM

/// Largest contraction length the exact int8 GEMM accepts: i32
/// accumulation of |q| ≤ 127 products cannot overflow while
/// `k ≤ i32::MAX / 127²` (≈ 133k — far above any captured conv/matmul).
pub const I8_GEMM_MAX_K: usize = (i32::MAX as usize) / (127 * 127);

/// Scalar reference int8 GEMM: `out[r, j] = Σ_p a[r,p] · b[p,j]` with i32
/// accumulation in increasing-`p` order. Integer sums are exact, so every
/// backend reproduces this result **bitwise** (unlike the f32 kernels,
/// which only promise the tolerance contract).
fn i8_gemm_scalar(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    for r in 0..m {
        let arow = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        orow.fill(0);
        for (p, &av) in arow.iter().enumerate() {
            let av = i32::from(av);
            let brow = &b[p * n..p * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * i32::from(bv);
            }
        }
    }
}

/// Explicit-backend exact int8 GEMM `out[m,n] = a[m,k] × b[k,n]` with i32
/// accumulators — the quantized plan executor's conv/matmul core and the
/// differential suite's entry point. All backends are bitwise identical.
pub fn i8_gemm_with(
    bk: Backend,
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "i8 gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "i8 gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "i8 gemm output length mismatch");
    assert!(
        k <= I8_GEMM_MAX_K,
        "i8 gemm contraction too long for exact i32"
    );
    if m == 0 || n == 0 {
        return;
    }
    match bk {
        Backend::Scalar => i8_gemm_scalar(a, b, out, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only ever active()/forced when
        // `is_x86_feature_detected!` confirmed avx2; lengths asserted.
        Backend::Avx2 => unsafe { avx2::i8_gemm(a, b, out, m, k, n) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; lengths asserted.
        Backend::Neon => unsafe { neon::i8_gemm(a, b, out, m, k, n) },
        #[allow(unreachable_patterns)]
        other => panic!(
            "kernel backend {} not compiled on this target",
            other.name()
        ),
    }
}

/// Dispatched [`i8_gemm_with`] over the active backend, with the same
/// row-parallel fan-out policy as the f32 GEMM. Safe at any worker count:
/// rows are independent exact integer chains, so partitioning can never
/// change a bit.
pub fn i8_gemm(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    let bk = active();
    let nt = if m * k * n >= kernels::PAR_GEMM_FLOPS {
        pool::max_threads().min(m)
    } else {
        1
    };
    if nt <= 1 || m <= 1 {
        return i8_gemm_with(bk, a, b, out, m, k, n);
    }
    let rows_per = m.div_ceil(nt);
    pool::parallel_chunks_mut(out, rows_per * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let r0 = ci * rows_per;
        i8_gemm_with(bk, &a[r0 * k..(r0 + rows) * k], b, chunk, rows, k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip_and_auto() {
        assert_eq!(Backend::parse("auto").unwrap(), None);
        assert_eq!(Backend::parse("").unwrap(), None);
        assert_eq!(Backend::parse("Scalar").unwrap(), Some(Backend::Scalar));
        assert_eq!(Backend::parse("AVX2").unwrap(), Some(Backend::Avx2));
        assert_eq!(Backend::parse("neon").unwrap(), Some(Backend::Neon));
        assert!(Backend::parse("sse9").is_err());
        for b in supported() {
            assert_eq!(Backend::parse(b.name()).unwrap(), Some(b));
            assert!(b.is_supported());
        }
    }

    #[test]
    fn detect_is_supported_and_listed() {
        let d = detect();
        assert!(d.is_supported());
        assert!(supported().contains(&d));
        assert_eq!(supported()[0], Backend::Scalar);
    }

    #[test]
    fn pack_b_pads_column_tails_with_zeros() {
        // k = 2, n = 3: one NR-wide panel, lanes 3.. zero.
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut buf = Vec::new();
        pack_b(&b, 2, 3, false, &mut buf);
        assert_eq!(buf.len(), 2 * NR);
        assert_eq!(&buf[..3], &[1.0, 2.0, 3.0]);
        assert!(buf[3..NR].iter().all(|&x| x == 0.0));
        assert_eq!(&buf[NR..NR + 3], &[4.0, 5.0, 6.0]);
        // Transposed pack of the same data viewed as [n=2, k=3].
        pack_b(&b, 3, 2, true, &mut buf);
        assert_eq!(buf.len(), 3 * NR);
        assert_eq!(buf[0], 1.0); // b[0*k+0]
        assert_eq!(buf[1], 4.0); // b[1*k+0]
        assert_eq!(buf[NR], 2.0); // p=1 lane 0
    }

    #[test]
    fn gemm_with_scalar_matches_reference_and_vector_within_tolerance() {
        let (m, k, n) = (5, 7, 19); // n crosses one NR panel
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.13)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 29 % 19) as f32 - 9.0) * 0.07)
            .collect();
        let mut reference = vec![0.0f32; m * n];
        gemm_with(Backend::Scalar, &a, &b, &mut reference, m, k, n, false);
        for bk in supported() {
            let mut out = vec![f32::NAN; m * n];
            gemm_with(bk, &a, &b, &mut out, m, k, n, false);
            let scale = reference.iter().fold(0.0f32, |acc, x| acc.max(x.abs()));
            for (x, y) in out.iter().zip(&reference) {
                assert!((x - y).abs() <= 1e-5 * scale.max(1.0), "{bk:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        for bk in supported() {
            let mut out = vec![0.0f32; 0];
            gemm_with(bk, &[], &[], &mut out, 0, 3, 0, false);
            let mut out1 = vec![7.0f32; 4];
            // k = 0: accumulate leaves out unchanged, overwrite zeroes it.
            gemm_with(bk, &[], &[], &mut out1, 2, 0, 2, true);
            assert_eq!(out1, vec![7.0; 4]);
            gemm_with(bk, &[], &[], &mut out1, 2, 0, 2, false);
            assert_eq!(out1, vec![0.0; 4]);
        }
    }
}
