//! Polynomial `exp` shared by the vector softmax backends.
//!
//! Cephes `expf` coefficients (the classic `exp_ps` constants): range
//! reduction `x = x - fx*ln2` with `fx = floor(x*log2(e) + 0.5)` split
//! into a high/low `ln2` pair, a degree-5 polynomial on the reduced
//! argument, and `2^fx` reassembled through the exponent bits. Absolute
//! relative error is ~2e-7 over the clamped range — well inside the
//! kernel layer's 1e-5-of-scale contract.
//!
//! [`exp_scalar`] is the scalar twin used for row tails: each step is the
//! same operation a vector lane performs (`f32::mul_add` for every FMA),
//! so a tail element gets the same bits it would get in a full lane.

pub(super) const EXP_HI: f32 = 88.376_26;
pub(super) const EXP_LO: f32 = -88.376_26;
pub(super) const LOG2EF: f32 = std::f32::consts::LOG2_E;
pub(super) const EXP_C1: f32 = 0.693_359_4;
pub(super) const EXP_C2: f32 = -2.121_944_4e-4;
pub(super) const EXP_P0: f32 = 1.987_569_1e-4;
pub(super) const EXP_P1: f32 = 1.398_199_9e-3;
pub(super) const EXP_P2: f32 = 8.333_452e-3;
pub(super) const EXP_P3: f32 = 4.166_579_6e-2;
pub(super) const EXP_P4: f32 = 1.666_666_5e-1;
// Cephes publishes 5.0000001201e-1, which rounds to exactly 0.5 in f32.
pub(super) const EXP_P5: f32 = 0.5;

/// Scalar twin of the vector `exp` lanes. See module docs.
// Not `clamp`: min-then-max in this order is the exact operation sequence
// of the vector lanes (min_ps then max_ps), including NaN propagation.
#[allow(clippy::manual_clamp)]
pub(super) fn exp_scalar(x: f32) -> f32 {
    let x = x.min(EXP_HI).max(EXP_LO);
    let fx = x.mul_add(LOG2EF, 0.5).floor();
    let x = fx.mul_add(-EXP_C1, x);
    let x = fx.mul_add(-EXP_C2, x);
    let z = x * x;
    let mut y = EXP_P0;
    y = y.mul_add(x, EXP_P1);
    y = y.mul_add(x, EXP_P2);
    y = y.mul_add(x, EXP_P3);
    y = y.mul_add(x, EXP_P4);
    y = y.mul_add(x, EXP_P5);
    y = y.mul_add(z, x) + 1.0;
    let pow2n = f32::from_bits((((fx as i32) + 127) << 23) as u32);
    y * pow2n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_scalar_tracks_libm_exp() {
        // Stay above the 2^-126 denormal cliff, where the bit-reassembled
        // `2^fx` flushes to zero (and real softmax terms are dead anyway).
        for i in -780..=800 {
            let x = i as f32 * 0.11;
            let reference = x.exp();
            let got = exp_scalar(x);
            let rel = if reference == 0.0 {
                got.abs()
            } else {
                ((got - reference) / reference).abs()
            };
            assert!(rel < 2e-6, "x={x}: {got} vs {reference}");
        }
        assert_eq!(exp_scalar(0.0), 1.0);
    }
}
