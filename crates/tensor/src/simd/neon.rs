//! NEON microkernels (aarch64).
//!
//! Structurally identical to the AVX2 backend: the same `MR x NR` packed
//! panel walk with per-element FMA chains over the contraction index (four
//! 4-lane registers per row instead of two 8-lane ones), the same
//! polynomial softmax with the shared scalar tail twin, and the same
//! bitwise elementwise conv epilogue. Because GEMM outputs are pure
//! per-element FMA chains on both vector ISAs, NEON and AVX2 GEMM results
//! are bitwise identical to each other; only the softmax lane-sum tree
//! differs (8-lane vs 4-lane partials), which the tolerance contract
//! covers.
//!
//! NEON is baseline on aarch64, so these functions are `unsafe` only for
//! the raw-pointer arithmetic; the dispatch layer still routes through the
//! same `Backend` checks as AVX2.

use core::arch::aarch64::*;

use super::exp::{
    exp_scalar, EXP_C1, EXP_C2, EXP_HI, EXP_LO, EXP_P0, EXP_P1, EXP_P2, EXP_P3, EXP_P4, EXP_P5,
    LOG2EF,
};
use super::{AView, MR, NR};

/// Packed-panel GEMM tile loop. See `super::kernel` for the contract.
///
/// # Safety
///
/// `packed` must hold `ceil(n/NR)` panels of `k*NR` elements; `out` must
/// be `rows * n`; the A view must be in bounds for all `(row, p)` pairs.
pub(crate) unsafe fn gemm_packed(
    a: AView<'_>,
    packed: &[f32],
    out: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let ad = a.data.as_ptr();
    let nb = n.div_ceil(NR);
    for jb in 0..nb {
        let j0 = jb * NR;
        let width = NR.min(n - j0);
        let panel = packed.as_ptr().add(jb * k * NR);
        let mut r = 0;
        while r + MR <= rows {
            gemm_tile::<MR>(ad, &a, r, panel, out, j0, width, k, n, accumulate);
            r += MR;
        }
        while r < rows {
            gemm_tile::<1>(ad, &a, r, panel, out, j0, width, k, n, accumulate);
            r += 1;
        }
    }
}

/// One `R x NR` tile: per output element a single FMA chain over `p`,
/// exactly like the AVX2 tile. Column tails bounce through a zero-padded
/// stack buffer.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_tile<const R: usize>(
    ad: *const f32,
    a: &AView<'_>,
    r0: usize,
    panel: *const f32,
    out: &mut [f32],
    j0: usize,
    width: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let full = width == NR;
    let mut acc = [[vdupq_n_f32(0.0); 4]; R];
    if accumulate {
        if full {
            for (i, accr) in acc.iter_mut().enumerate() {
                let orow = out.as_ptr().add((r0 + i) * n + j0);
                for (q, accq) in accr.iter_mut().enumerate() {
                    *accq = vld1q_f32(orow.add(4 * q));
                }
            }
        } else {
            let mut buf = [0.0f32; NR];
            for (i, accr) in acc.iter_mut().enumerate() {
                let orow = out.as_ptr().add((r0 + i) * n + j0);
                buf[width..].fill(0.0);
                for (lane, b) in buf.iter_mut().enumerate().take(width) {
                    *b = *orow.add(lane);
                }
                for (q, accq) in accr.iter_mut().enumerate() {
                    *accq = vld1q_f32(buf.as_ptr().add(4 * q));
                }
            }
        }
    }
    for p in 0..k {
        let b = [
            vld1q_f32(panel.add(p * NR)),
            vld1q_f32(panel.add(p * NR + 4)),
            vld1q_f32(panel.add(p * NR + 8)),
            vld1q_f32(panel.add(p * NR + 12)),
        ];
        for (i, accr) in acc.iter_mut().enumerate() {
            let av = vdupq_n_f32(*ad.add(a.base + (r0 + i) * a.row_stride + p * a.p_stride));
            for (q, accq) in accr.iter_mut().enumerate() {
                *accq = vfmaq_f32(*accq, av, b[q]);
            }
        }
    }
    if full {
        for (i, accr) in acc.iter().enumerate() {
            let orow = out.as_mut_ptr().add((r0 + i) * n + j0);
            for (q, accq) in accr.iter().enumerate() {
                vst1q_f32(orow.add(4 * q), *accq);
            }
        }
    } else {
        let mut buf = [0.0f32; NR];
        for (i, accr) in acc.iter().enumerate() {
            let orow = out.as_mut_ptr().add((r0 + i) * n + j0);
            for (q, accq) in accr.iter().enumerate() {
                vst1q_f32(buf.as_mut_ptr().add(4 * q), *accq);
            }
            for (lane, &b) in buf.iter().enumerate().take(width) {
                *orow.add(lane) = b;
            }
        }
    }
}

// --------------------------------------------------------------- softmax

/// Polynomial `exp` of 4 lanes — the shared Cephes sequence with NEON FMA.
///
/// # Safety
///
/// NEON baseline; no extra requirements.
unsafe fn exp4(x: float32x4_t) -> float32x4_t {
    let x = vminq_f32(x, vdupq_n_f32(EXP_HI));
    let x = vmaxq_f32(x, vdupq_n_f32(EXP_LO));
    let fx = vrndmq_f32(vfmaq_f32(vdupq_n_f32(0.5), x, vdupq_n_f32(LOG2EF)));
    let x = vfmsq_f32(x, fx, vdupq_n_f32(EXP_C1));
    let x = vfmsq_f32(x, fx, vdupq_n_f32(EXP_C2));
    let z = vmulq_f32(x, x);
    let mut y = vdupq_n_f32(EXP_P0);
    y = vfmaq_f32(vdupq_n_f32(EXP_P1), y, x);
    y = vfmaq_f32(vdupq_n_f32(EXP_P2), y, x);
    y = vfmaq_f32(vdupq_n_f32(EXP_P3), y, x);
    y = vfmaq_f32(vdupq_n_f32(EXP_P4), y, x);
    y = vfmaq_f32(vdupq_n_f32(EXP_P5), y, x);
    y = vaddq_f32(vfmaq_f32(x, y, z), vdupq_n_f32(1.0));
    let emm0 = vshlq_n_s32::<23>(vaddq_s32(vcvtq_s32_f32(fx), vdupq_n_s32(127)));
    vmulq_f32(y, vreinterpretq_f32_s32(emm0))
}

/// In-place softmax of one row: exact max, polynomial exp (vector body +
/// scalar-twin tail), fixed 4-lane sum tree plus in-order tail sum, exact
/// divide.
///
/// # Safety
///
/// NEON baseline; no extra requirements.
pub(crate) unsafe fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let n = row.len();
    let body = n / 4 * 4;
    let ptr = row.as_mut_ptr();
    let mut m = f32::NEG_INFINITY;
    if body > 0 {
        let mut mv = vld1q_f32(ptr);
        for i in (4..body).step_by(4) {
            mv = vmaxq_f32(mv, vld1q_f32(ptr.add(i)));
        }
        m = m.max(vmaxvq_f32(mv));
    }
    for i in body..n {
        m = m.max(*ptr.add(i));
    }
    let mv = vdupq_n_f32(m);
    let mut zv = vdupq_n_f32(0.0);
    for i in (0..body).step_by(4) {
        let e = exp4(vsubq_f32(vld1q_f32(ptr.add(i)), mv));
        vst1q_f32(ptr.add(i), e);
        zv = vaddq_f32(zv, e);
    }
    let mut lanes = [0.0f32; 4];
    vst1q_f32(lanes.as_mut_ptr(), zv);
    let mut z = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for i in body..n {
        let e = exp_scalar(*ptr.add(i) - m);
        *ptr.add(i) = e;
        z += e;
    }
    let zvec = vdupq_n_f32(z);
    for i in (0..body).step_by(4) {
        vst1q_f32(ptr.add(i), vdivq_f32(vld1q_f32(ptr.add(i)), zvec));
    }
    for i in body..n {
        *ptr.add(i) /= z;
    }
}

// ------------------------------------------------------------ layer norm

/// Layer norm over rows of width `d` with optional `xhat`/`inv_std`
/// capture. Mirrors the AVX2 kernel: lane-parallel mean/variance
/// reductions (one FMA chain per lane) combined in a fixed tree plus an
/// in-order scalar tail, then one FMA per element for the affine with
/// `f32::mul_add` on the row tail. Deterministic per row.
///
/// # Safety
///
/// NEON baseline. Slice lengths are asserted by the dispatching caller
/// (`layer_norm_rows_with`).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn layer_norm_rows(
    src: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    d: usize,
    out: &mut [f32],
    mut xhat: Option<&mut [f32]>,
    mut inv_std: Option<&mut [f32]>,
) {
    let rows = src.len() / d;
    let body = d / 4 * 4;
    let gp = gamma.as_ptr();
    let bp = beta.as_ptr();
    for r in 0..rows {
        let rp = src.as_ptr().add(r * d);
        let mut sv = vdupq_n_f32(0.0);
        for i in (0..body).step_by(4) {
            sv = vaddq_f32(sv, vld1q_f32(rp.add(i)));
        }
        let mut lanes = [0.0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), sv);
        let mut sum = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        for i in body..d {
            sum += *rp.add(i);
        }
        let mean = sum / d as f32;
        let mv = vdupq_n_f32(mean);
        let mut vv = vdupq_n_f32(0.0);
        for i in (0..body).step_by(4) {
            let dv = vsubq_f32(vld1q_f32(rp.add(i)), mv);
            vv = vfmaq_f32(vv, dv, dv);
        }
        vst1q_f32(lanes.as_mut_ptr(), vv);
        let mut varsum = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        for i in body..d {
            let dv = *rp.add(i) - mean;
            varsum = dv.mul_add(dv, varsum);
        }
        let var = varsum / d as f32;
        let is = 1.0 / (var + eps).sqrt();
        if let Some(buf) = inv_std.as_deref_mut() {
            buf[r] = is;
        }
        let op = out.as_mut_ptr().add(r * d);
        let isv = vdupq_n_f32(is);
        let xh_ptr = xhat.as_deref_mut().map(|buf| buf.as_mut_ptr().add(r * d));
        for i in (0..body).step_by(4) {
            let xh = vmulq_f32(vsubq_f32(vld1q_f32(rp.add(i)), mv), isv);
            if let Some(xp) = xh_ptr {
                vst1q_f32(xp.add(i), xh);
            }
            let o = vfmaq_f32(vld1q_f32(bp.add(i)), vld1q_f32(gp.add(i)), xh);
            vst1q_f32(op.add(i), o);
        }
        for i in body..d {
            let xh = (*rp.add(i) - mean) * is;
            if let Some(xp) = xh_ptr {
                *xp.add(i) = xh;
            }
            *op.add(i) = (*gp.add(i)).mul_add(xh, *bp.add(i));
        }
    }
}

// --------------------------------------------------------- conv epilogue

/// Fused bias/affine/ReLU run — same IEEE add / mul / add / max sequence
/// per element as the scalar reference, so bitwise identical to scalar.
///
/// # Safety
///
/// NEON baseline. `src.len() == dst.len()` (asserted by the caller).
pub(crate) unsafe fn conv_epilogue(
    src: &[f32],
    dst: &mut [f32],
    bias: Option<f32>,
    affine: Option<(f32, f32)>,
    relu: bool,
) {
    let n = src.len();
    let body = n / 4 * 4;
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let bv = vdupq_n_f32(bias.unwrap_or(0.0));
    let (sc, sh) = affine.unwrap_or((0.0, 0.0));
    let scv = vdupq_n_f32(sc);
    let shv = vdupq_n_f32(sh);
    let zero = vdupq_n_f32(0.0);
    for i in (0..body).step_by(4) {
        let mut v = vld1q_f32(sp.add(i));
        if bias.is_some() {
            v = vaddq_f32(v, bv);
        }
        if affine.is_some() {
            v = vaddq_f32(vmulq_f32(scv, v), shv);
        }
        if relu {
            v = vmaxq_f32(v, zero);
        }
        vst1q_f32(dp.add(i), v);
    }
    for i in body..n {
        let mut v = *sp.add(i);
        if let Some(b) = bias {
            v += b;
        }
        if let Some((sc, sh)) = affine {
            v = sc * v + sh;
        }
        if relu {
            v = v.max(0.0);
        }
        *dp.add(i) = v;
    }
}

// -------------------------------------------------------------- int8 GEMM

/// Exact int8 GEMM over full rows: `out[r, j] = Σ_p a[r,p] · b[p,j]` in
/// i32, `a` row-major `[m, k]`, `b` row-major `[k, n]`.
///
/// Each contraction step widens one B row to i16 (`vmovl_s8` — the
/// `smull` family) and accumulates with the widening `vmlal_s16`, i.e.
/// i16×i16 products added straight into i32 lanes. Integer accumulation
/// is exact and order-independent, so the result is **bitwise identical**
/// to the scalar reference and the AVX2 twin.
///
/// # Safety
///
/// `a` must hold `m*k`, `b` `k*n`, `out` `m*n` elements (NEON itself is
/// baseline on aarch64).
pub(crate) unsafe fn i8_gemm(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    #[inline]
    unsafe fn load8(b: &[i8], off: usize, width: usize) -> int8x8_t {
        if width == 8 {
            vld1_s8(b.as_ptr().add(off))
        } else {
            let mut buf = [0i8; 8];
            buf[..width].copy_from_slice(&b[off..off + width]);
            vld1_s8(buf.as_ptr())
        }
    }

    for r in 0..m {
        let arow = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        let mut j0 = 0usize;
        while j0 < n {
            let width = (n - j0).min(8);
            let mut acc_lo = vdupq_n_s32(0); // columns j0..j0+4
            let mut acc_hi = vdupq_n_s32(0); // columns j0+4..j0+8
            for (p, &av) in arow.iter().enumerate() {
                let b16 = vmovl_s8(load8(b, p * n + j0, width));
                let a16 = vdup_n_s16(i16::from(av));
                acc_lo = vmlal_s16(acc_lo, vget_low_s16(b16), a16);
                acc_hi = vmlal_s16(acc_hi, vget_high_s16(b16), a16);
            }
            if width == 8 {
                vst1q_s32(orow.as_mut_ptr().add(j0), acc_lo);
                vst1q_s32(orow.as_mut_ptr().add(j0 + 4), acc_hi);
            } else {
                let mut buf = [0i32; 8];
                vst1q_s32(buf.as_mut_ptr(), acc_lo);
                vst1q_s32(buf.as_mut_ptr().add(4), acc_hi);
                orow[j0..j0 + width].copy_from_slice(&buf[..width]);
            }
            j0 += 8;
        }
    }
}
