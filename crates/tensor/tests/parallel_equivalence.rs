//! Parallel-vs-serial kernel equivalence: every pooled kernel must be
//! **bitwise identical** to its serial path at any worker count. The
//! sizes below exceed the kernels' parallel-dispatch thresholds, and the
//! worker count is pinned with `pool::with_threads`, so the parallel path
//! genuinely executes even on a single-core host.

use mfaplace_rt::check::run_cases;
use mfaplace_rt::pool;
use mfaplace_tensor::Tensor;

/// Runs `f` serially and at several forced worker counts; all results
/// must agree exactly, element for element (no tolerance).
fn assert_bitwise_equal_across_threads(label: &str, f: impl Fn() -> Tensor) {
    let serial = pool::with_threads(1, &f);
    for nt in [2, 3, 4, 8] {
        let parallel = pool::with_threads(nt, &f);
        assert_eq!(
            parallel.shape(),
            serial.shape(),
            "{label}: shape at nt={nt}"
        );
        let bits_equal = parallel
            .data()
            .iter()
            .zip(serial.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bits_equal, "{label}: parallel result differs at nt={nt}");
    }
}

#[test]
fn gemm_parallel_matches_serial_bitwise() {
    run_cases("gemm_parallel_matches_serial", 4, 0xE9_01, |case, rng| {
        // 96x64 * 64x96 exceeds the GEMM parallel threshold (~590k MACs).
        let a = Tensor::randn(vec![96, 64], 1.0, rng);
        let b = Tensor::randn(vec![64, 96], 1.0, rng);
        let _ = case;
        assert_bitwise_equal_across_threads("gemm", || a.matmul2d(&b));
    });
}

#[test]
fn bmm_parallel_matches_serial_bitwise() {
    run_cases("bmm_parallel_matches_serial", 2, 0xE9_02, |_case, rng| {
        let a = Tensor::randn(vec![16, 32, 48], 1.0, rng);
        let b = Tensor::randn(vec![16, 48, 32], 1.0, rng);
        assert_bitwise_equal_across_threads("bmm", || a.bmm(&b));
    });
}

#[test]
fn im2col_parallel_matches_serial_bitwise() {
    run_cases(
        "im2col_parallel_matches_serial",
        2,
        0xE9_03,
        |_case, rng| {
            // rows = 8*9 = 72, cols = 4*64*64 = 16384 -> 1.18M elements.
            let x = Tensor::randn(vec![4, 8, 64, 64], 1.0, rng);
            assert_bitwise_equal_across_threads("im2col", || x.im2col(3, 3, 1, 1));
        },
    );
}

#[test]
fn col2im_parallel_matches_serial_bitwise() {
    run_cases(
        "col2im_parallel_matches_serial",
        2,
        0xE9_04,
        |_case, rng| {
            let x = Tensor::randn(vec![4, 8, 64, 64], 1.0, rng);
            let cols = x.im2col(3, 3, 1, 1);
            assert_bitwise_equal_across_threads("col2im", || cols.col2im(4, 8, 64, 64, 3, 3, 1, 1));
        },
    );
}

#[test]
fn conv_forward_backward_parallel_matches_serial_bitwise() {
    // Full conv lowering round trip: im2col -> GEMM -> col2im, as the nn
    // layer's forward/backward passes compose them.
    run_cases("conv_parallel_matches_serial", 2, 0xE9_05, |_case, rng| {
        let x = Tensor::randn(vec![2, 8, 64, 64], 1.0, rng);
        let w = Tensor::randn(vec![16, 8 * 9], 0.1, rng);
        assert_bitwise_equal_across_threads("conv_forward", || {
            let cols = x.im2col(3, 3, 1, 1);
            w.matmul2d(&cols)
        });
        let wt = w.transpose2d();
        assert_bitwise_equal_across_threads("conv_backward_data", || {
            let cols = x.im2col(3, 3, 1, 1);
            let grad_cols = wt.matmul2d(&w.matmul2d(&cols));
            grad_cols.col2im(2, 8, 64, 64, 3, 3, 1, 1)
        });
    });
}

#[test]
fn pooling_and_upsample_parallel_match_serial_bitwise() {
    run_cases(
        "pool_up_parallel_matches_serial",
        2,
        0xE9_06,
        |_case, rng| {
            let x = Tensor::randn(vec![4, 16, 64, 64], 1.0, rng);
            assert_bitwise_equal_across_threads("maxpool", || x.maxpool2x2().0);
            assert_bitwise_equal_across_threads("upsample", || x.upsample2x());
            assert_bitwise_equal_across_threads("downsample", || x.downsample2x_sum());
            // Argmax indices must agree too.
            let serial = pool::with_threads(1, || x.maxpool2x2().1);
            let parallel = pool::with_threads(4, || x.maxpool2x2().1);
            assert_eq!(serial, parallel, "maxpool argmax indices");
        },
    );
}

#[test]
fn transpose_blocked_matches_reference() {
    run_cases(
        "transpose_blocked_matches_reference",
        4,
        0xE9_07,
        |_case, rng| {
            // Sizes straddling the 32-wide tile, including non-multiples.
            for (m, n) in [(31, 33), (64, 64), (1, 97), (100, 3)] {
                let t = Tensor::randn(vec![m, n], 1.0, rng);
                let tt = t.transpose2d();
                assert_eq!(tt.shape(), &[n, m]);
                for i in 0..m {
                    for j in 0..n {
                        assert_eq!(tt.at(&[j, i]).to_bits(), t.at(&[i, j]).to_bits());
                    }
                }
            }
        },
    );
}
