//! Differential scalar-vs-vector kernel suite.
//!
//! Every vectorized kernel is driven over randomized shapes (via the `rt`
//! check harness) against the scalar reference backend and must land
//! within the documented tolerance: max-norm error ≤ `1e-5` of the scalar
//! output's max-norm scale (`crate::simd` module docs). Shapes are drawn
//! to cross the microkernel's blocking boundaries — column tails that are
//! not a multiple of the 16-lane panel width, row tails off the 4-row
//! group, `K = 0` / `K = 1` contractions, and single-row/column outputs —
//! plus the aliased `q = k = v` self-attention case.
//!
//! Two invariants are checked bitwise rather than with a tolerance:
//! accumulate-chaining (a split-K GEMM accumulated in two calls equals the
//! one-shot GEMM under the same vector backend) and the elementwise conv
//! epilogue (identical IEEE ops per element on every backend).

use mfaplace_rt::check::{run_cases, vec_f32};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::simd::{self, Backend};
use mfaplace_tensor::{
    attention_fm_backward_with, attention_fm_slices_with, attention_tm_backward_with,
    attention_tm_slices_with, Tensor,
};

/// Backends to differentiate against scalar (empty on a scalar-only host,
/// which leaves the suite trivially green rather than failing).
fn vector_backends() -> Vec<Backend> {
    simd::supported()
        .into_iter()
        .filter(|&b| b != Backend::Scalar)
        .collect()
}

/// Max-norm tolerance from the kernel layer's numeric contract.
fn assert_close(tag: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
    let scale = want.iter().fold(0.0f32, |a, &x| a.max(x.abs())).max(1.0);
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-5 * scale,
            "{tag}: element {i}: {g} vs {w} (scale {scale})"
        );
    }
}

#[test]
fn gemm_family_matches_scalar_over_random_shapes() {
    let backends = vector_backends();
    run_cases("gemm_family", 64, 0x51D0, |case, rng| {
        // Bias the draw toward blocking boundaries: lane tails, row-group
        // tails, and degenerate contractions.
        let edge = [0usize, 1, 2, 3, 4, 5, 15, 16, 17, 31, 32, 33];
        let dim = |rng: &mut _| {
            if Rng::gen_range::<u32, _>(rng, 0..2) == 0 {
                edge[Rng::gen_range::<usize, _>(rng, 0..edge.len())]
            } else {
                Rng::gen_range::<usize, _>(rng, 1..48)
            }
        };
        let (m, k, n) = (dim(rng), dim(rng), dim(rng));
        let a = vec_f32(rng, m * k, -1.0, 1.0);
        let b = vec_f32(rng, k * n, -1.0, 1.0);
        let accumulate = case % 3 == 0;
        let seed_out = vec_f32(rng, m * n, -1.0, 1.0);
        let mut want = if accumulate {
            seed_out.clone()
        } else {
            vec![0.0f32; m * n]
        };
        simd::gemm_with(Backend::Scalar, &a, &b, &mut want, m, k, n, accumulate);
        for &bk in &backends {
            let mut got = if accumulate {
                seed_out.clone()
            } else {
                vec![f32::NAN; m * n]
            };
            simd::gemm_with(bk, &a, &b, &mut got, m, k, n, accumulate);
            assert_close(&format!("gemm {m}x{k}x{n} {bk:?}"), &got, &want);
        }
        // NT: b viewed as [n, k]; TN: a viewed as [k, m].
        let bt = vec_f32(rng, n * k, -1.0, 1.0);
        let mut want_nt = vec![0.0f32; m * n];
        simd::gemm_nt_with(Backend::Scalar, &a, &bt, &mut want_nt, m, k, n);
        let at = vec_f32(rng, k * m, -1.0, 1.0);
        let mut want_tn = vec![0.0f32; m * n];
        simd::gemm_tn_with(Backend::Scalar, &at, &b, &mut want_tn, m, k, n);
        for &bk in &backends {
            let mut got = vec![f32::NAN; m * n];
            simd::gemm_nt_with(bk, &a, &bt, &mut got, m, k, n);
            assert_close(&format!("gemm_nt {m}x{k}x{n} {bk:?}"), &got, &want_nt);
            let mut got = vec![f32::NAN; m * n];
            simd::gemm_tn_with(bk, &at, &b, &mut got, m, k, n);
            assert_close(&format!("gemm_tn {m}x{k}x{n} {bk:?}"), &got, &want_tn);
        }
    });
}

#[test]
fn split_k_accumulate_is_bitwise_chained() {
    // Accumulate restarts each element's FMA chain from the exact stored
    // f32, so a K-split accumulation must be bitwise identical to the
    // one-shot product under the same backend.
    run_cases("split_k", 16, 0xACC0, |_case, rng| {
        let (m, k1, k2, n) = (
            Rng::gen_range::<usize, _>(rng, 1..8),
            Rng::gen_range::<usize, _>(rng, 1..24),
            Rng::gen_range::<usize, _>(rng, 1..24),
            Rng::gen_range::<usize, _>(rng, 1..40),
        );
        let k = k1 + k2;
        let a = vec_f32(rng, m * k, -1.0, 1.0);
        let b = vec_f32(rng, k * n, -1.0, 1.0);
        // Column-split a into contiguous [m, k1] / [m, k2] halves.
        let a1: Vec<f32> = (0..m).flat_map(|r| a[r * k..r * k + k1].to_vec()).collect();
        let a2: Vec<f32> = (0..m)
            .flat_map(|r| a[r * k + k1..(r + 1) * k].to_vec())
            .collect();
        let (b1, b2) = b.split_at(k1 * n);
        for bk in vector_backends() {
            let mut full = vec![0.0f32; m * n];
            simd::gemm_with(bk, &a, &b, &mut full, m, k, n, false);
            let mut split = vec![0.0f32; m * n];
            simd::gemm_with(bk, &a1, b1, &mut split, m, k1, n, false);
            simd::gemm_with(bk, &a2, b2, &mut split, m, k2, n, true);
            for (x, y) in split.iter().zip(&full) {
                assert_eq!(x.to_bits(), y.to_bits(), "{bk:?}: {x} vs {y}");
            }
        }
    });
}

#[test]
fn softmax_rows_match_scalar_within_tolerance() {
    let backends = vector_backends();
    run_cases("softmax_row", 48, 0x50F7, |case, rng| {
        // Lengths crossing the vector body/tail split, including 0 and 1.
        let n = match case % 6 {
            0 => 0,
            1 => 1,
            2 => Rng::gen_range::<usize, _>(rng, 2..8),
            _ => Rng::gen_range::<usize, _>(rng, 8..100),
        };
        let row = vec_f32(rng, n, -6.0, 6.0);
        let mut want = row.clone();
        simd::softmax_row_with(Backend::Scalar, &mut want);
        for &bk in &backends {
            let mut got = row.clone();
            simd::softmax_row_with(bk, &mut got);
            assert_close(&format!("softmax n={n} {bk:?}"), &got, &want);
            if n > 0 {
                let z: f32 = got.iter().sum();
                assert!((z - 1.0).abs() < 1e-5, "{bk:?}: softmax sums to {z}");
            }
        }
    });
}

#[test]
fn conv_epilogue_is_bitwise_on_every_backend() {
    run_cases("conv_epilogue", 32, 0xC0E7, |case, rng| {
        let n = Rng::gen_range::<usize, _>(rng, 0..70);
        let src = vec_f32(rng, n, -2.0, 2.0);
        let bias = (case % 2 == 0).then(|| Rng::gen_range::<f32, _>(rng, -1.0..1.0));
        let affine = (case % 3 != 1).then(|| {
            (
                Rng::gen_range::<f32, _>(rng, -2.0..2.0),
                Rng::gen_range::<f32, _>(rng, -1.0..1.0),
            )
        });
        let relu = case % 4 != 2;
        let mut want = vec![f32::NAN; n];
        simd::conv_epilogue_with(Backend::Scalar, &src, &mut want, bias, affine, relu);
        for bk in simd::supported() {
            let mut got = vec![f32::NAN; n];
            simd::conv_epilogue_with(bk, &src, &mut got, bias, affine, relu);
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.to_bits(), y.to_bits(), "{bk:?}: {x} vs {y}");
            }
        }
    });
}

#[test]
fn layer_norm_rows_match_scalar_within_tolerance() {
    let backends = vector_backends();
    run_cases("layer_norm", 48, 0x1A7E, |case, rng| {
        // Cross the 8-lane AVX2 / 4-lane NEON body-tail split, including
        // d = 1 (zero variance, the eps path carries the normalization).
        let d = match case % 6 {
            0 => 1,
            1 => Rng::gen_range::<usize, _>(rng, 2..8),
            _ => Rng::gen_range::<usize, _>(rng, 8..80),
        };
        let rows = Rng::gen_range::<usize, _>(rng, 1..6);
        let eps = 1e-5;
        let src = vec_f32(rng, rows * d, -2.0, 2.0);
        let gamma = vec_f32(rng, d, -1.5, 1.5);
        let beta = vec_f32(rng, d, -1.0, 1.0);
        let with_aux = case % 2 == 0;

        let mut want = vec![f32::NAN; rows * d];
        let mut want_xhat = vec![f32::NAN; rows * d];
        let mut want_is = vec![f32::NAN; rows];
        simd::layer_norm_rows_with(
            Backend::Scalar,
            &src,
            &gamma,
            &beta,
            eps,
            d,
            &mut want,
            with_aux.then_some(&mut want_xhat[..]),
            with_aux.then_some(&mut want_is[..]),
        );
        for &bk in &backends {
            let mut got = vec![f32::NAN; rows * d];
            let mut got_xhat = vec![f32::NAN; rows * d];
            let mut got_is = vec![f32::NAN; rows];
            simd::layer_norm_rows_with(
                bk,
                &src,
                &gamma,
                &beta,
                eps,
                d,
                &mut got,
                with_aux.then_some(&mut got_xhat[..]),
                with_aux.then_some(&mut got_is[..]),
            );
            assert_close(&format!("ln {rows}x{d} {bk:?}"), &got, &want);
            if with_aux {
                assert_close(&format!("ln xhat {rows}x{d} {bk:?}"), &got_xhat, &want_xhat);
                assert_close(&format!("ln inv_std {rows}x{d} {bk:?}"), &got_is, &want_is);
            }
        }
    });
}

#[test]
fn attention_tm_forward_and_backward_match_scalar() {
    let backends = vector_backends();
    run_cases("attention_tm", 24, 0xA77A, |case, rng| {
        // Cross the ATTN_TILE=32 boundary and exercise K = 1 edges.
        let b = Rng::gen_range::<usize, _>(rng, 1..3);
        let lq = Rng::gen_range::<usize, _>(rng, 1..70);
        let lk = Rng::gen_range::<usize, _>(rng, 1..70);
        let d = if case % 5 == 0 {
            1
        } else {
            Rng::gen_range::<usize, _>(rng, 1..20)
        };
        let dv = Rng::gen_range::<usize, _>(rng, 1..20);
        let scale = Rng::gen_range::<f32, _>(rng, 0.1..1.3);
        let q = Tensor::from_vec(vec![b, lq, d], vec_f32(rng, b * lq * d, -1.0, 1.0)).unwrap();
        let k = Tensor::from_vec(vec![b, lk, d], vec_f32(rng, b * lk * d, -1.0, 1.0)).unwrap();
        let v = Tensor::from_vec(vec![b, lk, dv], vec_f32(rng, b * lk * dv, -1.0, 1.0)).unwrap();
        let dy = Tensor::from_vec(vec![b, lq, dv], vec_f32(rng, b * lq * dv, -1.0, 1.0)).unwrap();
        let mut want = vec![0.0f32; b * lq * dv];
        let mut scratch = vec![0.0f32; lk];
        attention_tm_slices_with(
            Backend::Scalar,
            q.data(),
            k.data(),
            v.data(),
            b,
            lq,
            lk,
            d,
            dv,
            scale,
            &mut want,
            &mut scratch,
        );
        let (wdq, wdk, wdv) = attention_tm_backward_with(Backend::Scalar, &q, &k, &v, scale, &dy);
        for &bk in &backends {
            let mut got = vec![0.0f32; b * lq * dv];
            attention_tm_slices_with(
                bk,
                q.data(),
                k.data(),
                v.data(),
                b,
                lq,
                lk,
                d,
                dv,
                scale,
                &mut got,
                &mut scratch,
            );
            assert_close(&format!("tm fwd {lq}x{lk}x{d} {bk:?}"), &got, &want);
            let (dq, dk, dv_) = attention_tm_backward_with(bk, &q, &k, &v, scale, &dy);
            assert_close(&format!("tm dq {bk:?}"), dq.data(), wdq.data());
            assert_close(&format!("tm dk {bk:?}"), dk.data(), wdk.data());
            assert_close(&format!("tm dv {bk:?}"), dv_.data(), wdv.data());
        }
    });
}

#[test]
fn attention_tm_aliased_qkv_matches_scalar() {
    // Self-attention with one buffer serving as q, k and v — the kernels
    // only read the operands, so aliasing must be handled on all backends.
    run_cases("attention_tm_aliased", 8, 0xA11A, |_case, rng| {
        let (b, l, d) = (
            Rng::gen_range::<usize, _>(rng, 1..3),
            Rng::gen_range::<usize, _>(rng, 1..40),
            Rng::gen_range::<usize, _>(rng, 1..12),
        );
        let x = vec_f32(rng, b * l * d, -1.0, 1.0);
        let mut scratch = vec![0.0f32; l];
        let mut want = vec![0.0f32; b * l * d];
        attention_tm_slices_with(
            Backend::Scalar,
            &x,
            &x,
            &x,
            b,
            l,
            l,
            d,
            d,
            0.5,
            &mut want,
            &mut scratch,
        );
        for bk in vector_backends() {
            let mut got = vec![0.0f32; b * l * d];
            attention_tm_slices_with(bk, &x, &x, &x, b, l, l, d, d, 0.5, &mut got, &mut scratch);
            assert_close(&format!("tm aliased {bk:?}"), &got, &want);
        }
    });
}

#[test]
fn attention_fm_forward_and_backward_match_scalar() {
    let backends = vector_backends();
    run_cases("attention_fm", 24, 0xFA77, |case, rng| {
        let b = Rng::gen_range::<usize, _>(rng, 1..3);
        let n = if case % 5 == 0 {
            1
        } else {
            Rng::gen_range::<usize, _>(rng, 1..12)
        };
        let nv = Rng::gen_range::<usize, _>(rng, 1..12);
        let l = Rng::gen_range::<usize, _>(rng, 1..70);
        let scale = Rng::gen_range::<f32, _>(rng, 0.1..1.3);
        let q = Tensor::from_vec(vec![b, n, l], vec_f32(rng, b * n * l, -1.0, 1.0)).unwrap();
        let k = Tensor::from_vec(vec![b, n, l], vec_f32(rng, b * n * l, -1.0, 1.0)).unwrap();
        let v = Tensor::from_vec(vec![b, nv, l], vec_f32(rng, b * nv * l, -1.0, 1.0)).unwrap();
        let dy = Tensor::from_vec(vec![b, nv, l], vec_f32(rng, b * nv * l, -1.0, 1.0)).unwrap();
        let mut scratch = vec![0.0f32; l];
        let mut want = vec![f32::NAN; b * nv * l];
        attention_fm_slices_with(
            Backend::Scalar,
            q.data(),
            k.data(),
            v.data(),
            b,
            n,
            nv,
            l,
            scale,
            &mut want,
            &mut scratch,
        );
        let (wdq, wdk, wdv) = attention_fm_backward_with(Backend::Scalar, &q, &k, &v, scale, &dy);
        for &bk in &backends {
            let mut got = vec![f32::NAN; b * nv * l];
            attention_fm_slices_with(
                bk,
                q.data(),
                k.data(),
                v.data(),
                b,
                n,
                nv,
                l,
                scale,
                &mut got,
                &mut scratch,
            );
            assert_close(&format!("fm fwd {n}x{nv}x{l} {bk:?}"), &got, &want);
            let (dq, dk, dv_) = attention_fm_backward_with(bk, &q, &k, &v, scale, &dy);
            assert_close(&format!("fm dq {bk:?}"), dq.data(), wdq.data());
            assert_close(&format!("fm dk {bk:?}"), dk.data(), wdk.data());
            assert_close(&format!("fm dv {bk:?}"), dv_.data(), wdv.data());
        }
    });
}

#[test]
fn i8_gemm_is_bitwise_identical_on_every_backend() {
    // Integer accumulation is exact, so the int8 GEMM carries a *bitwise*
    // cross-backend contract — stronger than the f32 tolerance above.
    let backends = vector_backends();
    run_cases("i8_gemm", 64, 0x18D0, |_case, rng| {
        let edge = [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33];
        let dim = |rng: &mut _| {
            if Rng::gen_range::<u32, _>(rng, 0..2) == 0 {
                edge[Rng::gen_range::<usize, _>(rng, 0..edge.len())]
            } else {
                Rng::gen_range::<usize, _>(rng, 1..48)
            }
        };
        let (m, k, n) = (dim(rng), dim(rng), dim(rng));
        let draw = |rng: &mut _, len: usize| -> Vec<i8> {
            (0..len)
                .map(|_| Rng::gen_range::<i8, _>(rng, -127..=127))
                .collect()
        };
        let a = draw(rng, m * k);
        let b = draw(rng, k * n);
        let mut want = vec![0i32; m * n];
        simd::i8_gemm_with(Backend::Scalar, &a, &b, &mut want, m, k, n);
        // Cross-check the scalar twin against a widened reference sum.
        for r in 0..m {
            for j in 0..n {
                let sum: i64 = (0..k)
                    .map(|p| i64::from(a[r * k + p]) * i64::from(b[p * n + j]))
                    .sum();
                assert_eq!(
                    i64::from(want[r * n + j]),
                    sum,
                    "scalar i8 gemm at ({r},{j})"
                );
            }
        }
        for &bk in &backends {
            let mut got = vec![i32::MIN; m * n];
            simd::i8_gemm_with(bk, &a, &b, &mut got, m, k, n);
            assert_eq!(got, want, "i8 gemm {m}x{k}x{n} {bk:?} must be bitwise");
        }
        // The dispatched entry (row-parallel fan-out) must agree too.
        let mut got = vec![i32::MIN; m * n];
        simd::i8_gemm(&a, &b, &mut got, m, k, n);
        assert_eq!(got, want, "dispatched i8 gemm {m}x{k}x{n} must be bitwise");
    });
}

#[test]
fn f16_storage_round_trips_and_bounds_error() {
    use mfaplace_tensor::half::{f16_slice_to_f32, f32_slice_to_f16};
    run_cases("f16_round_trip", 16, 0xF16, |_case, rng| {
        let len = Rng::gen_range::<usize, _>(rng, 1..257);
        let src = vec_f32(rng, len, -100.0, 100.0);
        let mut bits = vec![0u16; len];
        let mut back = vec![0.0f32; len];
        f32_slice_to_f16(&src, &mut bits);
        f16_slice_to_f32(&bits, &mut back);
        for (&s, &b) in src.iter().zip(&back) {
            // Relative error of one f16 rounding: ≤ 2^-11 of the value.
            assert!((s - b).abs() <= s.abs() * 4.8829e-4 + 1e-6, "{s} -> {b}");
        }
        // A second store/load of the same bits is the identity.
        let mut bits2 = vec![0u16; len];
        f32_slice_to_f16(&back, &mut bits2);
        assert_eq!(bits, bits2, "f16 re-store must be stable");
    });
}
