//! Randomized tests of the tensor kernels (fixed seeds, in-tree harness).

use mfaplace_rt::check::{run_cases, vec_f32};
use mfaplace_rt::rng::Rng;
use mfaplace_tensor::Tensor;

fn small_dims(rng: &mut mfaplace_rt::rng::StdRng) -> (usize, usize) {
    (rng.gen_range(1usize..6), rng.gen_range(1usize..6))
}

#[test]
fn reshape_preserves_data() {
    run_cases("reshape_preserves_data", 32, 0x7E_01, |_case, rng| {
        let t = Tensor::from_vec(vec![6, 6], vec_f32(rng, 36, -10.0, 10.0)).unwrap();
        let r = t.reshape(vec![4, 9]).unwrap();
        assert_eq!(r.data(), t.data());
        assert_eq!(r.reshape(vec![6, 6]).unwrap(), t);
    });
}

#[test]
fn transpose_is_involution() {
    run_cases("transpose_is_involution", 64, 0x7E_02, |_case, rng| {
        let (m, n) = small_dims(rng);
        let seed = rng.gen_range(0u64..1000);
        let t = Tensor::from_fn(vec![m, n], |i| ((i as u64 * 31 + seed) % 17) as f32);
        assert_eq!(t.transpose2d().transpose2d(), t);
    });
}

#[test]
fn matmul_identity_is_noop() {
    run_cases("matmul_identity_is_noop", 64, 0x7E_03, |_case, rng| {
        let (m, n) = small_dims(rng);
        let seed = rng.gen_range(0u64..1000);
        let t = Tensor::from_fn(vec![m, n], |i| ((i as u64 * 13 + seed) % 23) as f32 - 11.0);
        let i = Tensor::eye(n);
        assert_eq!(t.matmul2d(&i).data(), t.data());
        let il = Tensor::eye(m);
        assert_eq!(il.matmul2d(&t).data(), t.data());
    });
}

#[test]
fn matmul_distributes_over_addition() {
    run_cases(
        "matmul_distributes_over_addition",
        32,
        0x7E_04,
        |_case, rng| {
            let seed = rng.gen_range(0u64..500);
            let a = Tensor::from_fn(vec![3, 4], |i| ((i as u64 + seed) % 7) as f32 - 3.0);
            let b = Tensor::from_fn(vec![4, 2], |i| ((i as u64 * 3 + seed) % 5) as f32 - 2.0);
            let c = Tensor::from_fn(vec![4, 2], |i| ((i as u64 * 5 + seed) % 9) as f32 - 4.0);
            let lhs = a.matmul2d(&b.add(&c));
            let rhs = a.matmul2d(&b).add(&a.matmul2d(&c));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                assert!((x - y).abs() < 1e-3);
            }
        },
    );
}

#[test]
fn permute_inverse_restores() {
    run_cases("permute_inverse_restores", 64, 0x7E_05, |_case, rng| {
        let seed = rng.gen_range(0u64..1000);
        let t = Tensor::from_fn(vec![2, 3, 4], |i| ((i as u64 ^ seed) % 19) as f32);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.permute(&[1, 2, 0]), t);
    });
}

#[test]
fn im2col_col2im_adjoint() {
    run_cases("im2col_col2im_adjoint", 48, 0x7E_06, |_case, rng| {
        let kh = rng.gen_range(1usize..4);
        let stride = rng.gen_range(1usize..3);
        let pad = rng.gen_range(0usize..2);
        let seed = rng.gen_range(0u64..100);
        let h = 6usize;
        if h + 2 * pad < kh {
            return;
        }
        let x = Tensor::from_fn(vec![1, 2, h, h], |i| {
            (((i as u64 * 7) ^ seed) % 13) as f32 - 6.0
        });
        let cols = x.im2col(kh, kh, stride, pad);
        let y = Tensor::from_fn(cols.shape().to_vec(), |i| {
            (((i as u64 * 11) ^ seed) % 9) as f32 - 4.0
        });
        let lhs: f64 = cols
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let back = y.col2im(1, 2, h, h, kh, kh, stride, pad);
        let rhs: f64 = x
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    });
}

#[test]
fn softmax_rows_are_distributions() {
    run_cases(
        "softmax_rows_are_distributions",
        48,
        0x7E_07,
        |_case, rng| {
            let rows = rng.gen_range(1usize..5);
            let cols = rng.gen_range(1usize..6);
            let seed = rng.gen_range(0u64..100);
            let t = Tensor::from_fn(vec![rows, cols], |i| {
                (((i as u64 * 3) ^ seed) % 11) as f32 - 5.0
            });
            let s = t.softmax_lastdim();
            for row in s.data().chunks(cols) {
                let sum: f32 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
                assert!(row.iter().all(|&v| v >= 0.0));
            }
        },
    );
}

#[test]
fn concat_slice_roundtrip() {
    run_cases("concat_slice_roundtrip", 48, 0x7E_08, |_case, rng| {
        let c1 = rng.gen_range(1usize..4);
        let c2 = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..100);
        let a = Tensor::from_fn(vec![2, c1, 3, 3], |i| ((i as u64 ^ seed) % 7) as f32);
        let b = Tensor::from_fn(vec![2, c2, 3, 3], |i| ((i as u64 ^ (seed * 3)) % 5) as f32);
        let cat = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(cat.slice_channels(0, c1), a);
        assert_eq!(cat.slice_channels(c1, c1 + c2), b);
    });
}

#[test]
fn upsample_quadruples_mass() {
    run_cases("upsample_quadruples_mass", 48, 0x7E_09, |_case, rng| {
        let seed = rng.gen_range(0u64..100);
        let x = Tensor::from_fn(vec![1, 2, 3, 3], |i| ((i as u64 ^ seed) % 9) as f32);
        let up = x.upsample2x();
        assert!((up.sum() - 4.0 * x.sum()).abs() < 1e-3);
        assert_eq!(up.downsample2x_sum().scale(0.25), x);
    });
}

#[test]
fn maxpool_upper_bounds_mean() {
    run_cases("maxpool_upper_bounds_mean", 48, 0x7E_0A, |_case, rng| {
        let seed = rng.gen_range(0u64..100);
        let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| ((i as u64 ^ seed) % 31) as f32);
        let (pooled, _) = x.maxpool2x2();
        assert!(pooled.mean() >= x.mean() - 1e-6);
        assert!(pooled.max() == x.max());
    });
}
