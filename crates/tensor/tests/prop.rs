//! Property-based tests of the tensor kernels.

use mfaplace_tensor::Tensor;
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..6, 1usize..6)
}

proptest! {
    #[test]
    fn reshape_preserves_data((m, n) in small_dims(), data in proptest::collection::vec(-10.0f32..10.0, 36)) {
        let t = Tensor::from_vec(vec![6, 6], data).unwrap();
        let _ = (m, n);
        let r = t.reshape(vec![4, 9]).unwrap();
        prop_assert_eq!(r.data(), t.data());
        prop_assert_eq!(r.reshape(vec![6, 6]).unwrap(), t);
    }

    #[test]
    fn transpose_is_involution((m, n) in small_dims(), seed in 0u64..1000) {
        let t = Tensor::from_fn(vec![m, n], |i| ((i as u64 * 31 + seed) % 17) as f32);
        prop_assert_eq!(t.transpose2d().transpose2d(), t);
    }

    #[test]
    fn matmul_identity_is_noop((m, n) in small_dims(), seed in 0u64..1000) {
        let t = Tensor::from_fn(vec![m, n], |i| ((i as u64 * 13 + seed) % 23) as f32 - 11.0);
        let i = Tensor::eye(n);
        let right = t.matmul2d(&i);
        prop_assert_eq!(right.data(), t.data());
        let il = Tensor::eye(m);
        let left = il.matmul2d(&t);
        prop_assert_eq!(left.data(), t.data());
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let a = Tensor::from_fn(vec![3, 4], |i| ((i as u64 + seed) % 7) as f32 - 3.0);
        let b = Tensor::from_fn(vec![4, 2], |i| ((i as u64 * 3 + seed) % 5) as f32 - 2.0);
        let c = Tensor::from_fn(vec![4, 2], |i| ((i as u64 * 5 + seed) % 9) as f32 - 4.0);
        let lhs = a.matmul2d(&b.add(&c));
        let rhs = a.matmul2d(&b).add(&a.matmul2d(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn permute_inverse_restores(seed in 0u64..1000) {
        let t = Tensor::from_fn(vec![2, 3, 4], |i| ((i as u64 ^ seed) % 19) as f32);
        let p = t.permute(&[2, 0, 1]);
        let back = p.permute(&[1, 2, 0]);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn im2col_col2im_adjoint(kh in 1usize..4, stride in 1usize..3, pad in 0usize..2, seed in 0u64..100) {
        let h = 6usize;
        if h + 2 * pad < kh { return Ok(()); }
        let x = Tensor::from_fn(vec![1, 2, h, h], |i| (((i as u64 * 7) ^ seed) % 13) as f32 - 6.0);
        let cols = x.im2col(kh, kh, stride, pad);
        let y = Tensor::from_fn(cols.shape().to_vec(), |i| (((i as u64 * 11) ^ seed) % 9) as f32 - 4.0);
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        let back = y.col2im(1, 2, h, h, kh, kh, stride, pad);
        let rhs: f64 = x.data().iter().zip(back.data()).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..6, seed in 0u64..100) {
        let t = Tensor::from_fn(vec![rows, cols], |i| (((i as u64 * 3) ^ seed) % 11) as f32 - 5.0);
        let s = t.softmax_lastdim();
        for row in s.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn concat_slice_roundtrip(c1 in 1usize..4, c2 in 1usize..4, seed in 0u64..100) {
        let a = Tensor::from_fn(vec![2, c1, 3, 3], |i| ((i as u64 ^ seed) % 7) as f32);
        let b = Tensor::from_fn(vec![2, c2, 3, 3], |i| ((i as u64 ^ (seed * 3)) % 5) as f32);
        let cat = Tensor::concat_channels(&[&a, &b]);
        prop_assert_eq!(cat.slice_channels(0, c1), a);
        prop_assert_eq!(cat.slice_channels(c1, c1 + c2), b);
    }

    #[test]
    fn upsample_quadruples_mass(seed in 0u64..100) {
        let x = Tensor::from_fn(vec![1, 2, 3, 3], |i| ((i as u64 ^ seed) % 9) as f32);
        let up = x.upsample2x();
        prop_assert!((up.sum() - 4.0 * x.sum()).abs() < 1e-3);
        prop_assert_eq!(up.downsample2x_sum().scale(0.25), x);
    }

    #[test]
    fn maxpool_upper_bounds_mean(seed in 0u64..100) {
        let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| ((i as u64 ^ seed) % 31) as f32);
        let (pooled, _) = x.maxpool2x2();
        prop_assert!(pooled.mean() >= x.mean() - 1e-6);
        prop_assert!(pooled.max() == x.max());
    }
}
