//! Fixed-width table rendering for the experiment harnesses (Tables I and
//! II of the paper).

/// A simple left-aligned-first-column table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c == 0 {
                    line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
                } else {
                    line.push_str(&format!("  {:>width$}", cells[c], width = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Design", "ACC", "R2"]);
        t.add_row(vec!["Design_116".into(), "0.885".into(), "0.890".into()]);
        t.add_row(vec!["D2".into(), "0.9".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Design"));
        assert!(lines[2].starts_with("Design_116"));
        // all lines same length
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(vec!["x".into()]);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 3), "1.235");
        assert_eq!(fmt(2.0, 2), "2.00");
    }
}
