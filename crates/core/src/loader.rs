//! Loading trained models from `.mfaw` checkpoints into ready-to-serve
//! predictors.
//!
//! A version-2 checkpoint is self-describing (model name + config ints in
//! its metadata section), so [`load_predictor`] can rebuild the exact
//! architecture from the file alone. Version-1 files carry no metadata;
//! for those the caller must supply the architecture (and grid) out of
//! band — in the CLI that is the `--arch`/`--grid` flags.

use std::sync::Arc;

use mfaplace_autograd::Graph;
use mfaplace_infer::{PlanCache, PlanSource, QuantOptions};
use mfaplace_models::{AnyModel, Arch, ArchSpec, CongestionModel};
use mfaplace_nn::checkpoint::{self, Checkpoint, CheckpointMeta};
use mfaplace_rt::rng::{SeedableRng, StdRng};

use crate::compile;
use crate::predictor::{Engine, ModelPredictor};

/// How to interpret a checkpoint that lacks (or should override) metadata.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Architecture to assume for v1 files (ignored when the file has
    /// metadata).
    pub arch: Option<Arch>,
    /// Grid side to assume for v1 files (ignored when the file has
    /// metadata).
    pub grid: Option<usize>,
    /// Base channel count to assume for v1 files (ignored when the file
    /// has metadata).
    pub base_channels: Option<usize>,
}

/// Loads a checkpoint and rebuilds its model, returning the architecture
/// spec actually used plus a ready [`ModelPredictor`].
///
/// # Errors
///
/// Returns a human-readable error when the file is malformed, the
/// architecture cannot be determined (v1 file without `opts.arch`), or the
/// stored tensors do not match the rebuilt model's parameters.
pub fn load_predictor(
    path: &str,
    opts: LoadOptions,
) -> Result<(ArchSpec, ModelPredictor<AnyModel>), String> {
    load_predictor_with_cache(path, opts, &Arc::new(PlanCache::from_env()))
}

/// FNV-1a 64 hash of the file's bytes — the checkpoint's *content*
/// identity. Two paths holding byte-identical checkpoints hash equal, so
/// predictors loaded from either share compiled plans in a common cache.
///
/// # Errors
///
/// Returns a human-readable error naming the file if it cannot be read.
pub fn content_hash(path: &str) -> Result<u64, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(h)
}

/// Like [`load_predictor`], but the predictor compiles its inference plans
/// into (and out of) `plan_cache`, keyed by the checkpoint file's content
/// hash — so any number of predictors loaded from byte-identical files
/// share one compiled plan set instead of duplicating it.
///
/// Also accepts a quantized serving artifact (`MFAQART1`, written by
/// [`crate::compile::compile_for_serving`]): the embedded checkpoint is
/// rebuilt, the embedded calibration attached, BN folding restored, and
/// the quant engine selected — unless `MFAPLACE_ENGINE` explicitly picks
/// another engine. Byte-identical artifact files share plans the same
/// way checkpoints do.
///
/// # Errors
///
/// Same failure modes as [`load_predictor`], plus artifact corruption.
pub fn load_predictor_with_cache(
    path: &str,
    opts: LoadOptions,
    plan_cache: &Arc<PlanCache>,
) -> Result<(ArchSpec, ModelPredictor<AnyModel>), String> {
    let source = PlanSource::Content(content_hash(path)?);
    if compile::is_artifact(path) {
        let art = compile::read_artifact(path)?;
        let ckpt = checkpoint::read_checkpoint_bytes(&art.checkpoint)
            .map_err(|e| format!("{path}: {e}"))?;
        let (spec, mut predictor) =
            predictor_from_checkpoint(ckpt, path, opts, plan_cache, source)?;
        predictor.set_fold_bn(art.fold_bn);
        predictor.set_calibration(
            Arc::new(art.calibration),
            QuantOptions {
                precision: art.precision,
            },
        );
        // The artifact's reason to exist is quantized serving: default to
        // the quant engine, but let an explicit MFAPLACE_ENGINE win.
        let env = std::env::var("MFAPLACE_ENGINE")
            .ok()
            .and_then(|v| Engine::parse(&v));
        predictor.set_engine(env.unwrap_or(Engine::Quant));
        return Ok((spec, predictor));
    }
    let ckpt = checkpoint::read_checkpoint(path).map_err(|e| format!("{path}: {e}"))?;
    predictor_from_checkpoint(ckpt, path, opts, plan_cache, source)
}

/// Rebuilds the model a parsed checkpoint describes and wraps it in a
/// cache-sharing predictor (`path` only labels error messages).
fn predictor_from_checkpoint(
    ckpt: Checkpoint,
    path: &str,
    opts: LoadOptions,
    plan_cache: &Arc<PlanCache>,
    source: PlanSource,
) -> Result<(ArchSpec, ModelPredictor<AnyModel>), String> {
    let spec = match &ckpt.meta {
        Some(meta) => ArchSpec::from_meta(meta).map_err(|e| format!("{path}: {e}"))?,
        None => {
            let arch = opts.arch.ok_or_else(|| {
                format!("{path}: v1 checkpoint has no metadata; pass --arch (and --grid)")
            })?;
            let mut spec = ArchSpec::new(arch, opts.grid.unwrap_or(32));
            if let Some(c) = opts.base_channels {
                spec.base_channels = c;
            }
            spec
        }
    };
    // Seed is irrelevant: every parameter is overwritten by the file.
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = spec
        .build(&mut g, &mut rng)
        .map_err(|e| format!("{path}: {e}"))?;
    checkpoint::assign_params(&mut g, &model.params(), ckpt.tensors)
        .map_err(|e| format!("{path}: {e} (wrong --arch/--grid/--channels for this file?)"))?;
    // v3 checkpoints carry batch-norm running statistics (they are state,
    // not parameters); restore them so inference matches the trainer's
    // in-memory model exactly. v1/v2 files fall back to init stats.
    if let Some(train) = &ckpt.train {
        let mut bns = model.batch_norms();
        if bns.len() == train.bn_stats.len() {
            for (bn, (m, v)) in bns.iter_mut().zip(&train.bn_stats) {
                bn.set_running_stats(m, v);
            }
        }
    }
    Ok((
        spec,
        ModelPredictor::with_plan_cache(g, model, plan_cache.clone(), source),
    ))
}

/// Saves `model`'s parameters as a self-describing v2 checkpoint with
/// `spec`'s metadata.
///
/// # Errors
///
/// Returns a human-readable error on I/O failure.
pub fn save_predictor(
    g: &Graph,
    model: &impl CongestionModel,
    spec: &ArchSpec,
    path: &str,
) -> Result<(), String> {
    checkpoint::save_checkpoint(g, &model.params(), &spec.to_meta(), path)
        .map_err(|e| format!("{path}: {e}"))
}

/// Builds a freshly initialized model and saves it as a v2 checkpoint —
/// handy for spinning up a server or demo without a training run.
///
/// # Errors
///
/// Returns a human-readable error if the spec is unbuildable or the file
/// cannot be written.
pub fn init_checkpoint(spec: &ArchSpec, seed: u64, path: &str) -> Result<(), String> {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = spec.build(&mut g, &mut rng)?;
    save_predictor(&g, &model, spec, path)
}

/// Reads just the metadata of a checkpoint file (for display/validation).
///
/// # Errors
///
/// Returns a human-readable error if the header is malformed.
pub fn peek_meta(path: &str) -> Result<Option<CheckpointMeta>, String> {
    checkpoint::read_meta(path).map_err(|e| format!("{path}: {e}"))
}

/// Reads the mid-run training state of a v3 checkpoint, if present:
/// `(optimizer steps, epoch, completed-epoch losses)`. `None` for v1/v2
/// files (weights only).
///
/// # Errors
///
/// Returns an error naming the file if it cannot be read or parsed.
pub fn peek_train_state(path: &str) -> Result<Option<(u64, u64, Vec<f32>)>, String> {
    let ckpt = checkpoint::read_checkpoint(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(ckpt.train.map(|t| (t.steps, t.epoch, t.epoch_losses)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("mfaplace_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn small_spec(arch: Arch) -> ArchSpec {
        let mut spec = ArchSpec::new(arch, 32);
        spec.base_channels = 4;
        spec.vit_layers = 1;
        spec.vit_heads = 2;
        spec
    }

    #[test]
    fn init_then_load_round_trips_spec_and_weights() {
        let path = temp_path("init_ours.mfaw");
        let spec = small_spec(Arch::Ours);
        init_checkpoint(&spec, 11, &path).unwrap();

        let (loaded_spec, mut predictor) = load_predictor(&path, LoadOptions::default()).unwrap();
        assert_eq!(loaded_spec, spec);
        assert_eq!(predictor.model().name(), "Ours");

        // Weights must equal a fresh build with the same seed.
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(11);
        let reference = spec.build(&mut g, &mut rng).unwrap();
        let loaded_params = predictor.model().params();
        // Compare through a tiny forward instead of raw vars: both models
        // predict identically on the same input.
        assert_eq!(loaded_params.len(), reference.params().len());
        let x = mfaplace_tensor::Tensor::full(vec![6, 32, 32], 0.25);
        let out_loaded = predictor
            .predict_batch_tensors(std::slice::from_ref(&x))
            .pop()
            .unwrap();
        let mut reference_pred = ModelPredictor::new(g, reference);
        let out_ref = reference_pred
            .predict_batch_tensors(std::slice::from_ref(&x))
            .pop()
            .unwrap();
        assert_eq!(out_loaded.data(), out_ref.data());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v1_file_needs_arch_override() {
        let path = temp_path("v1_unet.mfaw");
        let spec = small_spec(Arch::UNet);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut g, &mut rng).unwrap();
        mfaplace_nn::checkpoint::save_params(&g, &model.params(), &path).unwrap();

        let err = load_predictor(&path, LoadOptions::default()).err().unwrap();
        assert!(err.contains("--arch"), "{err}");

        let (loaded_spec, _) = load_predictor(
            &path,
            LoadOptions {
                arch: Some(Arch::UNet),
                grid: Some(32),
                base_channels: Some(4),
            },
        )
        .unwrap();
        assert_eq!(loaded_spec.arch, Arch::UNet);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_arch_reports_mismatch() {
        let path = temp_path("mismatch_arch.mfaw");
        let spec = small_spec(Arch::UNet);
        init_checkpoint(&spec, 0, &path).unwrap();
        // Force a different arch for a file whose meta says UNet: meta wins,
        // so strip it by writing v1.
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = spec.build(&mut g, &mut rng).unwrap();
        mfaplace_nn::checkpoint::save_params(&g, &model.params(), &path).unwrap();
        let err = load_predictor(
            &path,
            LoadOptions {
                arch: Some(Arch::Pros2),
                grid: Some(32),
                base_channels: Some(4),
            },
        )
        .err()
        .unwrap();
        assert!(err.contains("mismatch"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
