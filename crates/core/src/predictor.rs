//! Adapts a trained congestion model to the placer's predictor interface —
//! the paper's key integration point: the learned map replaces RUDY in the
//! instance-inflation step (Sec. IV).
//!
//! Besides the single-snapshot [`CongestionPredictor`] path used inside the
//! placement loop, [`ModelPredictor`] exposes a batched path
//! ([`ModelPredictor::predict_batch_tensors`]) that runs one `[N, C, H, W]`
//! forward for N requests. Per-sample results are bitwise identical to the
//! batch-1 path (the kernels compute each output element with a fixed
//! reduction order independent of the batch dimension), which is what lets
//! the serve subsystem coalesce concurrent requests without changing
//! anyone's answer.

use mfaplace_autograd::Graph;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_fpga::placement::Placement;
use mfaplace_models::{expected_levels, CongestionModel};
use mfaplace_placer::CongestionPredictor;
use mfaplace_tensor::Tensor;

/// A trained model plus its graph, usable inside a placement flow.
pub struct ModelPredictor<M: CongestionModel> {
    graph: Graph,
    model: M,
    name: String,
}

impl<M: CongestionModel> ModelPredictor<M> {
    /// Wraps a trained `(graph, model)` pair (e.g. from
    /// [`crate::Trainer::into_parts`]).
    pub fn new(graph: Graph, model: M) -> Self {
        let name = model.name().to_string();
        let mut graph = graph;
        // Inference-only: forwards recorded from here on skip gradient
        // bookkeeping and drop backward-only storage (conv im2col buffers)
        // at creation instead of retaining it on the tape.
        graph.set_grad_enabled(false);
        ModelPredictor { graph, model, name }
    }

    /// Borrows the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Runs one batched forward over `inputs` (each a `[C, H, W]` feature
    /// stack of identical shape) and returns the per-tile expected
    /// congestion level of each, shaped `[H, W]`.
    ///
    /// Output `i` is bitwise identical to what a single-item call on
    /// `inputs[i]` produces; batching only amortizes per-forward overhead.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or the stacks disagree in shape.
    pub fn predict_batch_tensors(&mut self, inputs: &[Tensor]) -> Vec<Tensor> {
        assert!(!inputs.is_empty(), "predict_batch_tensors: empty batch");
        let shape = inputs[0].shape().to_vec();
        assert_eq!(shape.len(), 3, "inputs must be [C, H, W], got {shape:?}");
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let n = inputs.len();
        let mut data = Vec::with_capacity(n * c * h * w);
        for x in inputs {
            assert_eq!(x.shape(), &shape[..], "batch inputs disagree in shape");
            data.extend_from_slice(x.data());
        }
        let batch = Tensor::from_vec(vec![n, c, h, w], data).expect("stacked batch");

        let mark = self.graph.mark();
        let xv = self.graph.constant(batch);
        let logits_var = self.model.forward(&mut self.graph, xv, false);
        let logits = self.graph.value(logits_var).clone();
        self.graph.truncate(mark);
        let levels = expected_levels(&logits); // [N, H, W]
        let hw = h * w;
        let src = levels.data();
        (0..n)
            .map(|i| {
                Tensor::from_vec(vec![h, w], src[i * hw..(i + 1) * hw].to_vec())
                    .expect("per-sample level map")
            })
            .collect()
    }

    /// Featurizes each `(design, placement)` snapshot and predicts all of
    /// them in one batched forward.
    pub fn predict_batch(
        &mut self,
        jobs: &[(&Design, &Placement)],
        grid_w: usize,
        grid_h: usize,
    ) -> Vec<GridMap> {
        let inputs: Vec<Tensor> = jobs
            .iter()
            .map(|(d, p)| FeatureStack::extract(d, p, grid_w, grid_h).to_tensor())
            .collect();
        self.predict_batch_tensors(&inputs)
            .into_iter()
            .map(|t| GridMap::from_vec(grid_w, grid_h, t.into_vec()))
            .collect()
    }
}

impl<M: CongestionModel> CongestionPredictor for ModelPredictor<M> {
    fn predict(
        &mut self,
        design: &Design,
        placement: &Placement,
        grid_w: usize,
        grid_h: usize,
    ) -> GridMap {
        let features = FeatureStack::extract(design, placement, grid_w, grid_h);
        let levels = self
            .predict_batch_tensors(std::slice::from_ref(&features.to_tensor()))
            .pop()
            .expect("one output per input");
        GridMap::from_vec(grid_w, grid_h, levels.into_vec())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_models::{OursConfig, OursModel};
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    fn small_predictor(seed: u64) -> ModelPredictor<OursModel> {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = OursModel::new(
            &mut g,
            OursConfig {
                grid: 32,
                base_channels: 4,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        ModelPredictor::new(g, model)
    }

    #[test]
    fn predictor_outputs_level_scale_map() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let mut predictor = small_predictor(0);
        let map = predictor.predict(&d, &p, 32, 32);
        assert_eq!(map.width(), 32);
        // Expected-level outputs live in [0, 7].
        assert!(map.max() <= 7.0);
        assert!(map.data().iter().all(|&v| v >= 0.0));
        assert_eq!(predictor.name(), "Ours");
    }

    #[test]
    fn repeated_predictions_do_not_grow_graph() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let mut predictor = small_predictor(1);
        let a = predictor.predict(&d, &p, 32, 32);
        let b = predictor.predict(&d, &p, 32, 32);
        assert_eq!(a, b, "inference must be pure");
    }

    #[test]
    fn batched_outputs_bitwise_match_single_item_inference() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let placements: Vec<_> = (0..5).map(|s| d.random_placement(s)).collect();
        let inputs: Vec<Tensor> = placements
            .iter()
            .map(|p| FeatureStack::extract(&d, p, 32, 32).to_tensor())
            .collect();

        let mut predictor = small_predictor(2);
        let batched = predictor.predict_batch_tensors(&inputs);
        assert_eq!(batched.len(), inputs.len());
        for (i, x) in inputs.iter().enumerate() {
            let single = predictor
                .predict_batch_tensors(std::slice::from_ref(x))
                .pop()
                .unwrap();
            assert_eq!(
                single.data(),
                batched[i].data(),
                "sample {i}: batched inference must be bitwise identical to single-item"
            );
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p0 = d.random_placement(3);
        let p1 = d.random_placement(4);
        let mut predictor = small_predictor(3);
        let batched = predictor.predict_batch(&[(&d, &p0), (&d, &p1)], 32, 32);
        assert_eq!(batched[0], predictor.predict(&d, &p0, 32, 32));
        assert_eq!(batched[1], predictor.predict(&d, &p1, 32, 32));
    }
}
