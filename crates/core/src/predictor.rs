//! Adapts a trained congestion model to the placer's predictor interface —
//! the paper's key integration point: the learned map replaces RUDY in the
//! instance-inflation step (Sec. IV).

use mfaplace_autograd::Graph;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_fpga::placement::Placement;
use mfaplace_models::{expected_levels, CongestionModel};
use mfaplace_placer::CongestionPredictor;

/// A trained model plus its graph, usable inside a placement flow.
pub struct ModelPredictor<M: CongestionModel> {
    graph: Graph,
    model: M,
    name: String,
}

impl<M: CongestionModel> ModelPredictor<M> {
    /// Wraps a trained `(graph, model)` pair (e.g. from
    /// [`crate::Trainer::into_parts`]).
    pub fn new(graph: Graph, model: M) -> Self {
        let name = model.name().to_string();
        ModelPredictor { graph, model, name }
    }

    /// Borrows the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: CongestionModel> CongestionPredictor for ModelPredictor<M> {
    fn predict(
        &mut self,
        design: &Design,
        placement: &Placement,
        grid_w: usize,
        grid_h: usize,
    ) -> GridMap {
        let features = FeatureStack::extract(design, placement, grid_w, grid_h);
        let x = features.to_tensor();
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let x = x.reshaped(vec![1, c, h, w]);
        let mark = self.graph.mark();
        let xv = self.graph.constant(x);
        let logits_var = self.model.forward(&mut self.graph, xv, false);
        let logits = self.graph.value(logits_var).clone();
        self.graph.truncate(mark);
        let levels = expected_levels(&logits); // [1, H, W]
        GridMap::from_vec(grid_w, grid_h, levels.into_vec())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_models::{OursConfig, OursModel};
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    #[test]
    fn predictor_outputs_level_scale_map() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = OursModel::new(
            &mut g,
            OursConfig {
                grid: 32,
                base_channels: 4,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        let mut predictor = ModelPredictor::new(g, model);
        let map = predictor.predict(&d, &p, 32, 32);
        assert_eq!(map.width(), 32);
        // Expected-level outputs live in [0, 7].
        assert!(map.max() <= 7.0);
        assert!(map.data().iter().all(|&v| v >= 0.0));
        assert_eq!(predictor.name(), "Ours");
    }

    #[test]
    fn repeated_predictions_do_not_grow_graph() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = OursModel::new(
            &mut g,
            OursConfig {
                grid: 32,
                base_channels: 4,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        let mut predictor = ModelPredictor::new(g, model);
        let a = predictor.predict(&d, &p, 32, 32);
        let b = predictor.predict(&d, &p, 32, 32);
        assert_eq!(a, b, "inference must be pure");
    }
}
