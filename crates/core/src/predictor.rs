//! Adapts a trained congestion model to the placer's predictor interface —
//! the paper's key integration point: the learned map replaces RUDY in the
//! instance-inflation step (Sec. IV).
//!
//! Besides the single-snapshot [`CongestionPredictor`] path used inside the
//! placement loop, [`ModelPredictor`] exposes a batched path
//! ([`ModelPredictor::predict_batch_tensors`]) that runs one `[N, C, H, W]`
//! forward for N requests. Per-sample results are bitwise identical to the
//! batch-1 path (the kernels compute each output element with a fixed
//! reduction order independent of the batch dimension), which is what lets
//! the serve subsystem coalesce concurrent requests without changing
//! anyone's answer.
//!
//! Two interchangeable [`Engine`]s drive the forward: the dynamic autograd
//! tape (reference) and compiled [`mfaplace_infer`] plans (default) — a
//! static op list per input shape executed allocation-free from a
//! liveness-packed arena. Plan outputs are bitwise identical to the tape's
//! (test-enforced), so switching engines never changes an answer; if a
//! recorded tape cannot be compiled the predictor falls back to the tape
//! permanently and reports why via [`ModelPredictor::plan_broken`].

use std::collections::HashMap;
use std::sync::Arc;

use mfaplace_autograd::Graph;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_fpga::placement::Placement;
use mfaplace_infer::{
    run_plan_workers, run_quant_plan, Calibration, Plan, PlanCache, PlanKey, PlanOptions,
    PlanPrecision, PlanSource, PlanStats, QuantOptions, QuantPlan, QuantStats,
};
use mfaplace_models::{expected_levels, CongestionModel};
use mfaplace_placer::CongestionPredictor;
use mfaplace_rt::timer::ScopeTimer;
use mfaplace_tensor::Tensor;

/// Which machinery runs the inference forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Replay the model through the dynamic autograd tape (reference
    /// implementation; allocates nodes and re-derives shapes per forward).
    Tape,
    /// Execute a compiled, shape-specialized [`mfaplace_infer::Plan`]
    /// (fused kernels, zero allocations per forward). Bitwise identical
    /// outputs to [`Engine::Tape`].
    Plan,
    /// Execute a quantized [`mfaplace_infer::QuantPlan`] — int8/f16
    /// activation arena, int8 GEMM compute — built from the f32 plan plus
    /// an offline [`Calibration`]. Requires calibration to be attached
    /// (via [`ModelPredictor::set_calibration`] or
    /// [`ModelPredictor::calibrate`]); without it, or if the quantized
    /// build fails, forwards silently fall back to the f32 plan (then the
    /// tape), so selecting this engine never breaks a predictor.
    Quant,
}

impl Engine {
    /// Parses `"tape"` / `"plan"` / `"quant"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Engine> {
        match s.to_ascii_lowercase().as_str() {
            "tape" => Some(Engine::Tape),
            "plan" => Some(Engine::Plan),
            "quant" => Some(Engine::Quant),
            _ => None,
        }
    }

    /// Reads `MFAPLACE_ENGINE` (`tape`, `plan` or `quant`); defaults to
    /// [`Engine::Plan`] when unset or unrecognized.
    pub fn from_env() -> Engine {
        std::env::var("MFAPLACE_ENGINE")
            .ok()
            .and_then(|v| Engine::parse(&v))
            .unwrap_or(Engine::Plan)
    }

    /// Stable lowercase name (`"tape"` / `"plan"` / `"quant"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tape => "tape",
            Engine::Plan => "plan",
            Engine::Quant => "quant",
        }
    }
}

/// A trained model plus its graph, usable inside a placement flow.
pub struct ModelPredictor<M: CongestionModel> {
    graph: Graph,
    model: M,
    name: String,
    engine: Engine,
    /// Shared, byte-bounded cache of compiled plans; predictors loaded
    /// from the same checkpoint file (same [`PlanSource::Content`]) share
    /// entries, so a fleet of N identical slots compiles each shape once.
    plan_cache: Arc<PlanCache>,
    /// This predictor's weight identity in the cache key.
    plan_source: PlanSource,
    /// One activation arena reused across every plan this predictor runs
    /// (grown to the largest plan seen, never shrunk). Safe because every
    /// plan op fully overwrites or explicitly clears its destination span.
    arena: Vec<f32>,
    /// Stats of the largest-arena plan resolved so far (peak memory).
    peak_stats: Option<PlanStats>,
    /// Parameter snapshots shared across the per-shape plans.
    weight_cache: HashMap<usize, Arc<Tensor>>,
    /// Set on the first failed capture; the predictor then stays on the
    /// tape (the error is surfaced via metrics/CLI, never a panic).
    plan_broken: Option<String>,
    /// Compile plans with inference-mode BN folded into conv weights
    /// (keyed separately in the cache; outputs agree with the tape to
    /// 1e-6 of output scale instead of bitwise).
    fold_bn: bool,
    /// Offline calibration + quantization options. `None` means
    /// uncalibrated: [`Engine::Quant`] then falls back to the f32 plan.
    quant: Option<(Arc<Calibration>, QuantOptions)>,
    /// Byte arena (u64-backed for alignment) reused across quant plans.
    qarena: Vec<u64>,
    /// Set on the first failed quantized build; quant forwards then stay
    /// on the f32 fallback (surfaced via metrics/CLI, never a panic).
    quant_broken: Option<String>,
    /// Quant counters of the largest-arena quantized plan so far.
    peak_quant: Option<QuantStats>,
    /// Plan counters of that same quantized plan (arena/weight bytes
    /// reflect quantized storage).
    peak_quant_plan: Option<PlanStats>,
    /// Level-scheduler worker count for plan forwards (`1` = serial
    /// replay; outputs are bitwise identical either way). Defaults to
    /// `MFAPLACE_PLAN_WORKERS`, falling back to the pool thread budget.
    plan_workers: usize,
}

impl<M: CongestionModel> ModelPredictor<M> {
    /// Wraps a trained `(graph, model)` pair (e.g. from
    /// [`crate::Trainer::into_parts`]). The forward engine comes from
    /// `MFAPLACE_ENGINE` (default: compiled plans); plans land in a
    /// private cache sized by `MFAPLACE_PLAN_CACHE_MB`. Use
    /// [`ModelPredictor::with_plan_cache`] to share plans across
    /// predictors built from identical weights.
    pub fn new(graph: Graph, model: M) -> Self {
        Self::with_plan_cache(
            graph,
            model,
            Arc::new(PlanCache::from_env()),
            PlanSource::unique(),
        )
    }

    /// Like [`ModelPredictor::new`], but compiled plans go into (and come
    /// from) `plan_cache` under `plan_source`. Callers must only pass the
    /// same `plan_source` for predictors with bitwise-identical weights —
    /// the loader derives it from the checkpoint file's content hash.
    pub fn with_plan_cache(
        graph: Graph,
        model: M,
        plan_cache: Arc<PlanCache>,
        plan_source: PlanSource,
    ) -> Self {
        let name = model.name().to_string();
        let mut graph = graph;
        // Inference-only: forwards recorded from here on skip gradient
        // bookkeeping and drop backward-only storage (conv im2col buffers)
        // at creation instead of retaining it on the tape.
        graph.set_grad_enabled(false);
        ModelPredictor {
            graph,
            model,
            name,
            engine: Engine::from_env(),
            plan_cache,
            plan_source,
            arena: Vec::new(),
            peak_stats: None,
            weight_cache: HashMap::new(),
            plan_broken: None,
            fold_bn: false,
            quant: None,
            qarena: Vec::new(),
            quant_broken: None,
            peak_quant: None,
            peak_quant_plan: None,
            plan_workers: mfaplace_infer::plan_workers_from_env(),
        }
    }

    /// Sets the level-scheduler worker count for plan forwards (`1` =
    /// serial replay). Purely a latency knob: outputs are bitwise
    /// identical at any count.
    pub fn set_plan_workers(&mut self, workers: usize) {
        self.plan_workers = workers.max(1);
    }

    /// The configured level-scheduler worker count.
    pub fn plan_workers(&self) -> usize {
        self.plan_workers
    }

    /// Borrows the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The active forward engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Switches the forward engine. Compiled plans are kept (switching
    /// back to [`Engine::Plan`] reuses them).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Why plan compilation failed, if it did (the predictor is then
    /// permanently on the tape fallback).
    pub fn plan_broken(&self) -> Option<&str> {
        self.plan_broken.as_deref()
    }

    /// Why the quantized build failed, if it did (quant forwards then
    /// stay on the f32 plan fallback).
    pub fn quant_broken(&self) -> Option<&str> {
        self.quant_broken.as_deref()
    }

    /// Enables/disables BN folding for plans compiled *after* this call.
    /// Folded and unfolded plans live under distinct cache keys, so
    /// toggling never serves a stale flavour.
    pub fn set_fold_bn(&mut self, fold: bool) {
        self.fold_bn = fold;
    }

    /// Whether plans are compiled with BN folding.
    pub fn fold_bn(&self) -> bool {
        self.fold_bn
    }

    /// Attaches an offline calibration (e.g. from a serving artifact) so
    /// [`Engine::Quant`] forwards can build quantized plans without
    /// re-calibrating. Clears any previous quant failure.
    pub fn set_calibration(&mut self, calibration: Arc<Calibration>, options: QuantOptions) {
        self.quant = Some((calibration, options));
        self.quant_broken = None;
    }

    /// The attached calibration, if any.
    pub fn calibration(&self) -> Option<&Arc<Calibration>> {
        self.quant.as_ref().map(|(c, _)| c)
    }

    /// The attached quantization options, if calibrated.
    pub fn quant_options(&self) -> Option<QuantOptions> {
        self.quant.as_ref().map(|(_, o)| *o)
    }

    /// The numeric precision forwards currently run at: the calibration
    /// precision when the quant engine is active and usable, `f32`
    /// otherwise.
    pub fn precision(&self) -> PlanPrecision {
        match (self.engine, &self.quant) {
            (Engine::Quant, Some((_, opts))) if self.quant_broken.is_none() => {
                opts.precision.into()
            }
            _ => PlanPrecision::F32,
        }
    }

    /// Runs the offline calibration pass: compiles (or fetches) the f32
    /// plan for a single-sample `[1, C, H, W]` forward, replays it
    /// serially over every representative input (each a `[C, H, W]`
    /// feature stack), records per-step activation abs-max ranges, and
    /// attaches the result. Deterministic: the same inputs in the same
    /// order produce a bitwise-identical calibration.
    pub fn calibrate(
        &mut self,
        inputs: &[Tensor],
        options: QuantOptions,
    ) -> Result<Arc<Calibration>, String> {
        let first = inputs
            .first()
            .ok_or_else(|| "calibrate: no representative inputs".to_string())?;
        let shape = first.shape();
        if shape.len() != 3 {
            return Err(format!(
                "calibrate: inputs must be [C, H, W], got {shape:?}"
            ));
        }
        let plan_shape = vec![1, shape[0], shape[1], shape[2]];
        let plan = self.resolve_plan(&plan_shape)?;
        let calib = Calibration::collect(&plan, inputs.iter().map(|t| t.data()))?;
        let calib = Arc::new(calib);
        self.set_calibration(calib.clone(), options);
        Ok(calib)
    }

    /// The plan cache this predictor resolves through.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// This predictor's weight identity in the plan-cache key.
    pub fn plan_source(&self) -> PlanSource {
        self.plan_source
    }

    /// Stats of the largest-arena plan this predictor has resolved so far
    /// (the peak-memory plan), if any forward has been compiled. For
    /// quantized plans the stats reflect the quantized arena/weight
    /// bytes; op structure counters always match the f32 plan.
    pub fn plan_stats(&self) -> Option<PlanStats> {
        self.peak_stats.clone()
    }

    /// Quantization counters of the largest-arena quantized plan resolved
    /// so far, if any quant forward has compiled one.
    pub fn quant_plan_stats(&self) -> Option<QuantStats> {
        self.peak_quant.clone()
    }

    /// Plan stats as the active engine experiences them: the quantized
    /// plan's counters (int8/f16 arena and weight bytes) when the quant
    /// engine is serving a quantized plan, the f32 plan's otherwise —
    /// what the serve layer publishes as `mfaplace_infer_plan_*` gauges.
    pub fn active_plan_stats(&self) -> Option<PlanStats> {
        if self.engine == Engine::Quant && self.quant_broken.is_none() {
            if let Some(s) = &self.peak_quant_plan {
                return Some(s.clone());
            }
        }
        self.peak_stats.clone()
    }

    /// The batch size a request batch of `n` samples is padded to before
    /// plan lookup: `{1, 2, 4}` exactly, then the next multiple of 8.
    ///
    /// Bucketing keeps the shared plan cache bounded under adversarial
    /// batch sizes — at most 3 + ⌈max_batch/8⌉ plans per model shape —
    /// at the cost of up to 7 padded (wasted) samples per forward. The
    /// padded samples are sliced off before anyone sees them, and batched
    /// forwards are per-sample bitwise independent, so bucketing never
    /// changes an answer.
    pub fn bucketed_batch(n: usize) -> usize {
        match n {
            0 | 1 => 1,
            2 => 2,
            3 | 4 => 4,
            _ => n.div_ceil(8) * 8,
        }
    }

    /// Compiles (or fetches from the shared cache) the plan for a
    /// `[n, c, h, w]` input without running it, returning its stats — the
    /// `model-info` hook. `n` is bucketed exactly as a predict would.
    ///
    /// Capture runs the model once on a zeros input; zoo forwards branch
    /// only on shape, so the recording is valid for any batch content.
    pub fn compile_plan(
        &mut self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<PlanStats, String> {
        let shape = vec![Self::bucketed_batch(n), c, h, w];
        let plan = self.resolve_plan(&shape)?;
        Ok(plan.stats().clone())
    }

    /// [`ModelPredictor::compile_plan`] for the quantized flavour:
    /// compiles (or fetches) the quantized plan for a `[n, c, h, w]`
    /// input and returns `(plan stats, quant stats)`. Errors if no
    /// calibration is attached or the quantized build fails.
    pub fn compile_quant_plan(
        &mut self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<(PlanStats, QuantStats), String> {
        let shape = vec![Self::bucketed_batch(n), c, h, w];
        let qplan = self.resolve_quant_plan(&shape)?;
        Ok((qplan.stats().clone(), qplan.quant_stats().clone()))
    }

    /// Fetches the plan for `shape` from the shared cache, capturing and
    /// inserting it on a miss. The capture runs outside the cache lock, so
    /// two predictors racing on one cold key may both compile; the loser
    /// replaces the winner's identical entry.
    fn resolve_plan(&mut self, shape: &[usize]) -> Result<Arc<Plan>, String> {
        let key = PlanKey::f32(self.plan_source, shape.to_vec(), self.fold_bn);
        let plan = match self.plan_cache.get(&key) {
            Some(plan) => plan,
            None => {
                let batch = Tensor::zeros(shape.to_vec());
                let mark = self.graph.mark();
                let xv = self.graph.constant(batch);
                let yv = self.model.forward(&mut self.graph, xv, false);
                let captured = Plan::capture_cached(
                    &self.graph,
                    mark,
                    xv,
                    yv,
                    PlanOptions {
                        fold_bn: self.fold_bn,
                    },
                    &mut self.weight_cache,
                );
                self.graph.truncate(mark);
                let plan = Arc::new(captured?);
                self.plan_cache.insert(key, plan.clone());
                plan
            }
        };
        let stats = plan.stats();
        let is_peak = match &self.peak_stats {
            None => true,
            Some(peak) => stats.arena_bytes > peak.arena_bytes,
        };
        if is_peak {
            self.peak_stats = Some(stats.clone());
        }
        Ok(plan)
    }

    /// Fetches the quantized plan for `shape`, building (f32 plan + the
    /// attached calibration) and caching it on a miss. Errors when no
    /// calibration is attached, when the f32 capture fails, or when the
    /// calibration does not match the captured plan (stale — e.g. a
    /// different checkpoint or grid; the error says to recalibrate).
    fn resolve_quant_plan(&mut self, shape: &[usize]) -> Result<Arc<QuantPlan>, String> {
        let (calib, opts) = self
            .quant
            .clone()
            .ok_or_else(|| "quant engine: no calibration attached".to_string())?;
        let key = PlanKey::quant(
            self.plan_source,
            shape.to_vec(),
            opts.precision,
            self.fold_bn,
        );
        let qplan = match self.plan_cache.get_quant(&key) {
            Some(qplan) => qplan,
            None => {
                let plan = self.resolve_plan(shape)?;
                let qplan = Arc::new(QuantPlan::build(plan, &calib, opts)?);
                self.plan_cache.insert_quant(key, qplan.clone());
                qplan
            }
        };
        let qs = qplan.quant_stats();
        let is_qpeak = match &self.peak_quant {
            None => true,
            Some(peak) => qs.arena_bytes > peak.arena_bytes,
        };
        if is_qpeak {
            self.peak_quant = Some(qs.clone());
            self.peak_quant_plan = Some(qplan.stats().clone());
        }
        Ok(qplan)
    }

    /// Plan-engine logits, or `None` when compilation failed (caller falls
    /// back to the tape). Pads the batch up to its bucket size, runs the
    /// bucketed plan, and slices the padding back off.
    fn plan_logits(&mut self, batch: &Tensor) -> Option<Tensor> {
        if self.plan_broken.is_some() {
            return None;
        }
        let n = batch.shape()[0];
        let bucket = Self::bucketed_batch(n);
        let mut plan_shape = batch.shape().to_vec();
        plan_shape[0] = bucket;
        let plan = match self.resolve_plan(&plan_shape) {
            Ok(plan) => plan,
            Err(e) => {
                mfaplace_rt::timer::count("infer/plan_fallback", 1);
                self.plan_broken = Some(e);
                return None;
            }
        };
        let _t = ScopeTimer::new("core/forward_plan");
        let out = if bucket == n {
            run_plan_workers(&plan, &mut self.arena, batch.data(), self.plan_workers).to_vec()
        } else {
            let per_in = batch.data().len() / n;
            let mut padded = vec![0.0f32; bucket * per_in];
            padded[..n * per_in].copy_from_slice(batch.data());
            let full = run_plan_workers(&plan, &mut self.arena, &padded, self.plan_workers);
            let per_out = full.len() / bucket;
            full[..n * per_out].to_vec()
        };
        let mut out_shape = plan.output_shape().to_vec();
        out_shape[0] = n;
        Some(Tensor::from_vec(out_shape, out).expect("plan output tensor"))
    }

    /// Quant-engine logits, or `None` when no calibration is attached or
    /// the quantized build failed (caller falls back to the f32 plan,
    /// which is bitwise identical to the tape). Batch padding mirrors
    /// [`ModelPredictor::plan_logits`].
    fn quant_logits(&mut self, batch: &Tensor) -> Option<Tensor> {
        if self.quant.is_none() || self.quant_broken.is_some() {
            return None;
        }
        let n = batch.shape()[0];
        let bucket = Self::bucketed_batch(n);
        let mut plan_shape = batch.shape().to_vec();
        plan_shape[0] = bucket;
        let qplan = match self.resolve_quant_plan(&plan_shape) {
            Ok(qplan) => qplan,
            Err(e) => {
                mfaplace_rt::timer::count("infer/quant_fallback", 1);
                self.quant_broken = Some(e);
                return None;
            }
        };
        let _t = ScopeTimer::new("core/forward_quant");
        let out = if bucket == n {
            run_quant_plan(&qplan, &mut self.qarena, batch.data()).to_vec()
        } else {
            let per_in = batch.data().len() / n;
            let mut padded = vec![0.0f32; bucket * per_in];
            padded[..n * per_in].copy_from_slice(batch.data());
            let full = run_quant_plan(&qplan, &mut self.qarena, &padded);
            let per_out = full.len() / bucket;
            full[..n * per_out].to_vec()
        };
        let mut out_shape = qplan.output_shape().to_vec();
        out_shape[0] = n;
        Some(Tensor::from_vec(out_shape, out).expect("quant plan output tensor"))
    }

    /// Tape-engine logits (the reference path).
    fn tape_logits(&mut self, batch: &Tensor) -> Tensor {
        let _t = ScopeTimer::new("core/forward_tape");
        let mark = self.graph.mark();
        let xv = self.graph.constant(batch.clone());
        let logits_var = self.model.forward(&mut self.graph, xv, false);
        let logits = self.graph.value(logits_var).clone();
        self.graph.truncate(mark);
        logits
    }

    /// Runs one batched forward over `inputs` (each a `[C, H, W]` feature
    /// stack of identical shape) and returns the per-tile expected
    /// congestion level of each, shaped `[H, W]`.
    ///
    /// Output `i` is bitwise identical to what a single-item call on
    /// `inputs[i]` produces; batching only amortizes per-forward overhead.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or the stacks disagree in shape.
    pub fn predict_batch_tensors(&mut self, inputs: &[Tensor]) -> Vec<Tensor> {
        assert!(!inputs.is_empty(), "predict_batch_tensors: empty batch");
        let shape = inputs[0].shape().to_vec();
        assert_eq!(shape.len(), 3, "inputs must be [C, H, W], got {shape:?}");
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let n = inputs.len();
        let mut data = Vec::with_capacity(n * c * h * w);
        for x in inputs {
            assert_eq!(x.shape(), &shape[..], "batch inputs disagree in shape");
            data.extend_from_slice(x.data());
        }
        let batch = Tensor::from_vec(vec![n, c, h, w], data).expect("stacked batch");

        let logits = match self.engine {
            Engine::Plan => self
                .plan_logits(&batch)
                .unwrap_or_else(|| self.tape_logits(&batch)),
            Engine::Quant => self
                .quant_logits(&batch)
                .or_else(|| self.plan_logits(&batch))
                .unwrap_or_else(|| self.tape_logits(&batch)),
            Engine::Tape => self.tape_logits(&batch),
        };
        let levels = expected_levels(&logits); // [N, H, W]
        let hw = h * w;
        let src = levels.data();
        (0..n)
            .map(|i| {
                Tensor::from_vec(vec![h, w], src[i * hw..(i + 1) * hw].to_vec())
                    .expect("per-sample level map")
            })
            .collect()
    }

    /// Featurizes each `(design, placement)` snapshot and predicts all of
    /// them in one batched forward.
    pub fn predict_batch(
        &mut self,
        jobs: &[(&Design, &Placement)],
        grid_w: usize,
        grid_h: usize,
    ) -> Vec<GridMap> {
        let inputs: Vec<Tensor> = jobs
            .iter()
            .map(|(d, p)| FeatureStack::extract(d, p, grid_w, grid_h).to_tensor())
            .collect();
        self.predict_batch_tensors(&inputs)
            .into_iter()
            .map(|t| GridMap::from_vec(grid_w, grid_h, t.into_vec()))
            .collect()
    }
}

impl<M: CongestionModel> CongestionPredictor for ModelPredictor<M> {
    fn predict(
        &mut self,
        design: &Design,
        placement: &Placement,
        grid_w: usize,
        grid_h: usize,
    ) -> GridMap {
        let features = FeatureStack::extract(design, placement, grid_w, grid_h);
        let levels = self
            .predict_batch_tensors(std::slice::from_ref(&features.to_tensor()))
            .pop()
            .expect("one output per input");
        GridMap::from_vec(grid_w, grid_h, levels.into_vec())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_models::{OursConfig, OursModel};
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    fn small_predictor(seed: u64) -> ModelPredictor<OursModel> {
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = OursModel::new(
            &mut g,
            OursConfig {
                grid: 32,
                base_channels: 4,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        ModelPredictor::new(g, model)
    }

    #[test]
    fn predictor_outputs_level_scale_map() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let mut predictor = small_predictor(0);
        let map = predictor.predict(&d, &p, 32, 32);
        assert_eq!(map.width(), 32);
        // Expected-level outputs live in [0, 7].
        assert!(map.max() <= 7.0);
        assert!(map.data().iter().all(|&v| v >= 0.0));
        assert_eq!(predictor.name(), "Ours");
    }

    #[test]
    fn repeated_predictions_do_not_grow_graph() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        let mut predictor = small_predictor(1);
        let a = predictor.predict(&d, &p, 32, 32);
        let b = predictor.predict(&d, &p, 32, 32);
        assert_eq!(a, b, "inference must be pure");
    }

    #[test]
    fn batched_outputs_bitwise_match_single_item_inference() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let placements: Vec<_> = (0..5).map(|s| d.random_placement(s)).collect();
        let inputs: Vec<Tensor> = placements
            .iter()
            .map(|p| FeatureStack::extract(&d, p, 32, 32).to_tensor())
            .collect();

        let mut predictor = small_predictor(2);
        let batched = predictor.predict_batch_tensors(&inputs);
        assert_eq!(batched.len(), inputs.len());
        for (i, x) in inputs.iter().enumerate() {
            let single = predictor
                .predict_batch_tensors(std::slice::from_ref(x))
                .pop()
                .unwrap();
            assert_eq!(
                single.data(),
                batched[i].data(),
                "sample {i}: batched inference must be bitwise identical to single-item"
            );
        }
    }

    #[test]
    fn plan_engine_is_bitwise_identical_to_tape_engine() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let placements: Vec<_> = (0..3).map(|s| d.random_placement(s)).collect();
        let inputs: Vec<Tensor> = placements
            .iter()
            .map(|p| FeatureStack::extract(&d, p, 32, 32).to_tensor())
            .collect();

        let mut tape = small_predictor(5);
        tape.set_engine(Engine::Tape);
        let mut plan = small_predictor(5); // same seed => same weights
        plan.set_engine(Engine::Plan);
        assert_eq!(tape.engine().name(), "tape");
        assert_eq!(plan.engine().name(), "plan");

        let from_tape = tape.predict_batch_tensors(&inputs);
        let from_plan = plan.predict_batch_tensors(&inputs);
        for (i, (t, p)) in from_tape.iter().zip(&from_plan).enumerate() {
            assert_eq!(t.data(), p.data(), "sample {i}: engines must agree bitwise");
        }
        assert!(plan.plan_broken().is_none());
        let stats = plan.plan_stats().expect("plan compiled during predict");
        assert!(stats.ops > 0 && stats.arena_bytes > 0);
        assert!(tape.plan_stats().is_none(), "tape engine compiles nothing");
    }

    #[test]
    fn compile_plan_reports_stats_without_predicting() {
        let mut p = small_predictor(6);
        let stats = p.compile_plan(2, 6, 32, 32).expect("compile");
        assert!(stats.ops > 0);
        assert!(stats.fused_conv_relu > 0);
        // The cached plan is reused by a later predict at the same shape.
        assert_eq!(p.plan_stats().expect("cached").ops, stats.ops);
    }

    #[test]
    fn quant_engine_without_calibration_falls_back_to_the_plan() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(7);
        let x = FeatureStack::extract(&d, &p, 32, 32).to_tensor();

        let mut plan = small_predictor(8);
        plan.set_engine(Engine::Plan);
        let mut quant = small_predictor(8); // same seed => same weights
        quant.set_engine(Engine::Quant);
        assert_eq!(quant.engine().name(), "quant");
        assert_eq!(quant.precision().name(), "f32", "uncalibrated => f32");

        let via_plan = plan.predict_batch_tensors(std::slice::from_ref(&x));
        let via_quant = quant.predict_batch_tensors(std::slice::from_ref(&x));
        assert_eq!(
            via_plan[0].data(),
            via_quant[0].data(),
            "uncalibrated quant engine must serve the bitwise f32 answer"
        );
        assert!(quant.quant_broken().is_none());
        assert!(quant.quant_plan_stats().is_none(), "nothing quantized");
    }

    #[test]
    fn calibrated_quant_engine_runs_int8_plans() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let placements: Vec<_> = (0..3).map(|s| d.random_placement(s)).collect();
        let inputs: Vec<Tensor> = placements
            .iter()
            .map(|p| FeatureStack::extract(&d, p, 32, 32).to_tensor())
            .collect();

        let mut predictor = small_predictor(9);
        let calib = predictor
            .calibrate(&inputs, QuantOptions::default())
            .expect("calibration");
        assert!(calib.steps() > 0);
        predictor.set_engine(Engine::Quant);
        assert_eq!(predictor.precision().name(), "int8");

        let outs = predictor.predict_batch_tensors(&inputs);
        assert!(
            predictor.quant_broken().is_none(),
            "{:?}",
            predictor.quant_broken()
        );
        for out in &outs {
            assert!(out.data().iter().all(|&v| (0.0..=7.0).contains(&v)));
        }
        // Quantized predictions are deterministic.
        let again = predictor.predict_batch_tensors(&inputs);
        for (a, b) in outs.iter().zip(&again) {
            assert_eq!(a.data(), b.data());
        }
        let qs = predictor.quant_plan_stats().expect("quant plan compiled");
        assert!(qs.i8_steps > 0, "{qs:?}");
        assert!(
            qs.arena_bytes * 2 <= qs.f32_arena_bytes,
            "int8 arena {} vs f32 arena {}",
            qs.arena_bytes,
            qs.f32_arena_bytes
        );
    }

    #[test]
    fn predict_batch_matches_predict() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p0 = d.random_placement(3);
        let p1 = d.random_placement(4);
        let mut predictor = small_predictor(3);
        let batched = predictor.predict_batch(&[(&d, &p0), (&d, &p1)], 32, 32);
        assert_eq!(batched[0], predictor.predict(&d, &p0, 32, 32));
        assert_eq!(batched[1], predictor.predict(&d, &p1, 32, 32));
    }
}
