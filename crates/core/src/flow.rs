//! The complete routability-driven macro placement flow (Fig. 6), from
//! netlist to contest score: placement (with any congestion predictor),
//! global routing, congestion analysis, detailed-route simulation and the
//! MLCAD 2023 score formulas, including a simulated Vivado `T_P&R`.

use mfaplace_fpga::design::Design;
use mfaplace_placer::flows::{
    CongestionPredictor, FlowAborted, FlowEvent, PlacementFlow, PlacementResult,
};
use mfaplace_placer::FlowConfig as PlacerFlowConfig;
use mfaplace_router::congestion::CongestionAnalysis;
use mfaplace_router::detailed::detailed_route_iterations;
use mfaplace_router::global::GlobalRouter;
use mfaplace_router::score::{RoutabilityScore, ScoreInputs};
use mfaplace_router::RouterConfig;

/// Full-flow configuration: a placement flow plus the scoring router.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The placement flow preset.
    pub placer: PlacerFlowConfig,
    /// The router used for scoring (shared across flows for fairness).
    pub router: RouterConfig,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            placer: PlacerFlowConfig::model_driven(),
            router: RouterConfig::default(),
        }
    }
}

/// Everything the Table II harness needs about one run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The placement produced.
    pub placement: PlacementResult,
    /// Contest scores.
    pub score: RoutabilityScore,
    /// Final per-tile congestion analysis.
    pub analysis: CongestionAnalysis,
    /// Total routed wirelength.
    pub wirelength: f64,
    /// Residual overflow after routing.
    pub overflow: f32,
}

/// A progress event emitted by [`MacroPlacementFlow::run_with_observer`].
///
/// Like [`FlowEvent`], every payload is derived deterministically from the
/// flow state (no timestamps), so identical runs emit identical sequences.
#[derive(Debug, Clone)]
pub enum FlowProgress {
    /// A placement-stage event (GP iterations, predictions, inflation,
    /// legalization).
    Placement(FlowEvent),
    /// Global routing finished.
    Routed {
        /// Total routed wirelength.
        wirelength: f64,
        /// Residual routing overflow.
        overflow: f32,
    },
    /// Contest scoring finished — the flow is complete.
    Scored {
        /// Initial-routing congestion score.
        s_ir: f64,
        /// Detailed-route iteration count.
        s_dr: f64,
        /// Combined routability score.
        s_r: f64,
        /// Final contest score.
        s_score: f64,
    },
}

/// Runs placement + routing + scoring for one design.
#[derive(Debug, Clone)]
pub struct MacroPlacementFlow {
    config: FlowConfig,
}

impl MacroPlacementFlow {
    /// Creates the flow.
    pub fn new(config: FlowConfig) -> Self {
        MacroPlacementFlow { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs end to end with the RUDY predictor (see
    /// [`MacroPlacementFlow::run_with`] to supply a learned model).
    pub fn run(&self, design: &Design, seed: u64) -> FlowOutcome {
        let mut rudy = mfaplace_placer::RudyPredictor::default();
        self.run_with(design, &mut rudy, seed)
    }

    /// Runs end to end with the given congestion predictor.
    pub fn run_with(
        &self,
        design: &Design,
        predictor: &mut dyn CongestionPredictor,
        seed: u64,
    ) -> FlowOutcome {
        let placement_flow = PlacementFlow::new(self.config.placer.clone());
        let placement = placement_flow.run(design, predictor, seed);
        self.score_placement(design, placement)
    }

    /// Like [`run_with`](Self::run_with), but emits a [`FlowProgress`]
    /// event after every GP iteration, prediction, inflation round,
    /// legalization, routing and scoring. Observers only read derived
    /// values, so observed runs produce outcomes bitwise identical to
    /// unobserved ones. Returning `false` from `observe` aborts the flow
    /// at the next event boundary.
    ///
    /// # Errors
    ///
    /// Returns [`FlowAborted`] when the observer requests an abort.
    pub fn run_with_observer(
        &self,
        design: &Design,
        predictor: &mut dyn CongestionPredictor,
        seed: u64,
        observe: &mut dyn FnMut(&FlowProgress) -> bool,
    ) -> Result<FlowOutcome, FlowAborted> {
        let placement_flow = PlacementFlow::new(self.config.placer.clone());
        let placement = placement_flow.run_observed(design, predictor, seed, &mut |e| {
            observe(&FlowProgress::Placement(e.clone()))
        })?;
        let out = self.score_placement(design, placement);
        if !observe(&FlowProgress::Routed {
            wirelength: out.wirelength,
            overflow: out.overflow,
        }) {
            return Err(FlowAborted);
        }
        if !observe(&FlowProgress::Scored {
            s_ir: out.score.s_ir(),
            s_dr: out.score.s_dr(),
            s_r: out.score.s_r(),
            s_score: out.score.s_score(),
        }) {
            return Err(FlowAborted);
        }
        Ok(out)
    }

    /// Routes and scores a finished placement (the non-placement half of
    /// the flow, shared by the observed and unobserved entry points).
    fn score_placement(&self, design: &Design, placement: PlacementResult) -> FlowOutcome {
        let router = GlobalRouter::new(self.config.router.clone());
        let outcome = router.route(design, &placement.placement);
        let analysis = CongestionAnalysis::from_usage(&outcome.usage, &self.config.router);
        let s_dr = detailed_route_iterations(&analysis, &outcome);

        let t_pr_hours = simulated_pnr_hours(&outcome, s_dr, &self.config.router);
        let score = RoutabilityScore::new(ScoreInputs {
            l_short: analysis.short_levels(),
            l_global: analysis.global_levels(),
            s_dr,
            t_macro_min: placement.t_macro_min,
            t_pr_hours,
        });
        FlowOutcome {
            placement,
            score,
            analysis,
            wirelength: outcome.total_wirelength,
            overflow: outcome.total_overflow,
        }
    }
}

/// Builds a per-design *calibrated* router configuration: wire capacities
/// are sized against a quick reference placement of the design (see
/// [`RouterConfig::calibrated`]), so congestion levels are comparable
/// across designs and experiment scales. All flows scoring the same design
/// must share one calibrated configuration for fairness.
pub fn calibrated_router_for(
    design: &Design,
    grid: usize,
    target_util: f32,
    seed: u64,
) -> RouterConfig {
    let mut placer_cfg = mfaplace_placer::flows::FlowConfig::seu_like();
    placer_cfg.gp_stage1.iterations = 15;
    placer_cfg.gp_stage2.iterations = 6;
    placer_cfg.grid_w = grid;
    placer_cfg.grid_h = grid;
    let reference = PlacementFlow::new(placer_cfg)
        .run(design, &mut mfaplace_placer::RudyPredictor::default(), seed)
        .placement;
    RouterConfig {
        grid_w: grid,
        grid_h: grid,
        ..RouterConfig::default()
    }
    .calibrated(design, &reference, target_util)
}

/// Simulated Vivado cell-placement + routing runtime in hours.
///
/// Vivado's P&R time grows with routed wirelength (more work per pass) and
/// with detailed-route iterations (each extra rip-up pass re-routes the
/// congested fraction). The constants are calibrated so the contest suite
/// lands in the 0.3-1.5 h range reported in Table II.
pub fn simulated_pnr_hours(
    outcome: &mfaplace_router::global::RoutingOutcome,
    s_dr: u32,
    router: &RouterConfig,
) -> f64 {
    let tiles = (router.grid_w * router.grid_h) as f64;
    let wl_norm = outcome.total_wirelength / (tiles * 10.0);
    let overflow_norm = f64::from(outcome.total_overflow) / tiles;
    0.12 + 0.05 * wl_norm + 0.022 * f64::from(s_dr.saturating_sub(5)) + 0.12 * overflow_norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn quick_config() -> FlowConfig {
        let mut cfg = FlowConfig::default();
        cfg.placer.gp_stage1.iterations = 10;
        cfg.placer.gp_stage2.iterations = 5;
        cfg.placer.grid_w = 32;
        cfg.placer.grid_h = 32;
        cfg.router.grid_w = 32;
        cfg.router.grid_h = 32;
        cfg
    }

    #[test]
    fn end_to_end_flow_scores() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let flow = MacroPlacementFlow::new(quick_config());
        let out = flow.run(&d, 1);
        assert!(out.score.s_ir() >= 1.0);
        assert!(out.score.s_dr() >= 5.0);
        assert!(out.score.s_r() >= out.score.s_ir());
        assert!(out.score.s_score() > 0.0);
        assert!(out.wirelength > 0.0);
    }

    #[test]
    fn placed_flow_beats_random_placement_on_congestion_density() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let flow = MacroPlacementFlow::new(quick_config());
        let out = flow.run(&d, 1);
        // Compare with routing the random placement directly.
        let random = d.random_placement(1);
        let router = GlobalRouter::new(flow.config().router.clone());
        let random_out = router.route(&d, &random);
        assert!(
            out.wirelength < random_out.total_wirelength,
            "placed WL {} >= random WL {}",
            out.wirelength,
            random_out.total_wirelength
        );
    }

    #[test]
    fn calibration_produces_usable_capacities() {
        let d = DesignPreset::design_120()
            .with_scale(512, 64, 32)
            .generate(2);
        let cfg = calibrated_router_for(&d, 32, 0.7, 7);
        assert_eq!(cfg.grid_w, 32);
        assert!(cfg.short_cap >= 4.0);
        assert!(cfg.global_cap >= 2.0);
        // Tighter targets yield smaller capacities.
        let tight = calibrated_router_for(&d, 32, 0.95, 7);
        assert!(tight.short_cap <= cfg.short_cap);
        // Deterministic.
        let again = calibrated_router_for(&d, 32, 0.7, 7);
        assert_eq!(again.short_cap, cfg.short_cap);
        assert_eq!(again.global_cap, cfg.global_cap);
    }

    #[test]
    fn pnr_hours_increase_with_iterations() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let flow = MacroPlacementFlow::new(quick_config());
        let out = flow.run(&d, 2);
        let router_cfg = &flow.config().router;
        let router = GlobalRouter::new(router_cfg.clone());
        let routing = router.route(&d, &out.placement.placement);
        let fast = simulated_pnr_hours(&routing, 6, router_cfg);
        let slow = simulated_pnr_hours(&routing, 14, router_cfg);
        assert!(slow > fast);
    }
}
