//! The evaluation metrics of Sec. V-B: accuracy (ACC), coefficient of
//! determination (R^2) and normalized root-mean-square error (NRMS).

/// All three metrics for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictionMetrics {
    /// Classification accuracy over tiles (higher is better).
    pub acc: f64,
    /// Coefficient of determination of the continuous level estimate
    /// (higher is better).
    pub r2: f64,
    /// Normalized RMS error of the predicted map (lower is better).
    pub nrms: f64,
}

impl PredictionMetrics {
    /// Computes all metrics from predicted classes, continuous level
    /// estimates and ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn compute(pred_classes: &[u8], pred_levels: &[f32], labels: &[u8]) -> Self {
        PredictionMetrics {
            acc: accuracy(pred_classes, labels),
            r2: r_squared(pred_levels, labels),
            nrms: nrms(pred_levels, labels),
        }
    }
}

/// Fraction of tiles classified into the correct congestion level.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(pred: &[u8], labels: &[u8]) -> f64 {
    assert_eq!(pred.len(), labels.len(), "accuracy length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(labels).filter(|(a, b)| a == b).count();
    correct as f64 / pred.len() as f64
}

/// Coefficient of determination `1 - SS_res / SS_tot` of the continuous
/// level estimate against the integer labels. A constant label map with
/// zero residual scores 1, with any residual 0.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r_squared(pred: &[f32], labels: &[u8]) -> f64 {
    assert_eq!(pred.len(), labels.len(), "r2 length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let n = labels.len() as f64;
    let mean = labels.iter().map(|&l| f64::from(l)).sum::<f64>() / n;
    let ss_tot: f64 = labels.iter().map(|&l| (f64::from(l) - mean).powi(2)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(labels)
        .map(|(&p, &l)| (f64::from(p) - f64::from(l)).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        return if ss_res <= f64::EPSILON { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Normalized RMS error: RMSE divided by the label range (with a floor of
/// one level to keep flat maps well-defined).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nrms(pred: &[f32], labels: &[u8]) -> f64 {
    assert_eq!(pred.len(), labels.len(), "nrms length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let n = labels.len() as f64;
    let mse: f64 = pred
        .iter()
        .zip(labels)
        .map(|(&p, &l)| (f64::from(p) - f64::from(l)).powi(2))
        .sum::<f64>()
        / n;
    let max = labels.iter().copied().max().unwrap_or(0);
    let min = labels.iter().copied().min().unwrap_or(0);
    let range = f64::from(max - min).max(1.0);
    mse.sqrt() / range
}

/// Confusion matrix over congestion-level classes, with per-class
/// precision/recall — used by the experiment reports to show *where*
/// predictors disagree (the paper's Sec. V-B discussion attributes the R^2
/// gap to high-level classes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[true * classes + predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the matrix from predictions and labels.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range class ids.
    pub fn compute(pred: &[u8], labels: &[u8], classes: usize) -> Self {
        assert_eq!(pred.len(), labels.len(), "confusion length mismatch");
        let mut counts = vec![0u64; classes * classes];
        for (&p, &l) in pred.iter().zip(labels) {
            assert!((p as usize) < classes && (l as usize) < classes);
            counts[l as usize * classes + p as usize] += 1;
        }
        ConfusionMatrix { classes, counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of `(true, predicted)` pairs.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Precision of one class (`None` if the class was never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let tp = self.count(class, class);
        let predicted: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall of one class (`None` if the class never occurs).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let tp = self.count(class, class);
        let actual: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Renders the matrix as an aligned text table (rows = truth).
    pub fn render(&self) -> String {
        let mut out = String::from("true\\pred");
        for p in 0..self.classes {
            out.push_str(&format!(" {p:>8}"));
        }
        out.push('\n');
        for t in 0..self.classes {
            out.push_str(&format!("{t:>9}"));
            for p in 0..self.classes {
                out.push_str(&format!(" {:>8}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let labels = vec![0u8, 1, 2, 3, 4];
        let pred_c = labels.clone();
        let pred_l: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        let m = PredictionMetrics::compute(&pred_c, &pred_l, &labels);
        assert_eq!(m.acc, 1.0);
        assert!((m.r2 - 1.0).abs() < 1e-12);
        assert_eq!(m.nrms, 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let labels = vec![0u8, 2, 4];
        let pred = vec![2.0f32; 3];
        assert!(r_squared(&pred, &labels).abs() < 1e-12);
    }

    #[test]
    fn r2_penalizes_bad_fits_below_zero() {
        let labels = vec![0u8, 1, 2];
        let pred = vec![5.0f32, 5.0, 5.0];
        assert!(r_squared(&pred, &labels) < 0.0);
    }

    #[test]
    fn nrms_normalizes_by_range() {
        let labels = vec![0u8, 4];
        let pred = vec![0.0f32, 0.0];
        // rmse = sqrt(16/2) = 2.828, range 4 -> 0.707
        assert!((nrms(&pred, &labels) - 8.0f64.sqrt() / 4.0).abs() < 1e-9);
    }

    #[test]
    fn flat_labels_well_defined() {
        let labels = vec![0u8; 4];
        let pred = vec![0.0f32; 4];
        assert_eq!(r_squared(&pred, &labels), 1.0);
        assert_eq!(nrms(&pred, &labels), 0.0);
    }

    #[test]
    fn confusion_matrix_counts_and_rates() {
        // truth:   0 0 1 1 1 2
        // pred:    0 1 1 1 0 2
        let labels = [0u8, 0, 1, 1, 1, 2];
        let pred = [0u8, 1, 1, 1, 0, 2];
        let cm = ConfusionMatrix::compute(&pred, &labels, 3);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(2, 2), 1);
        assert_eq!(cm.accuracy(), 4.0 / 6.0);
        assert_eq!(cm.recall(1), Some(2.0 / 3.0));
        assert_eq!(cm.precision(1), Some(2.0 / 3.0));
        assert_eq!(cm.precision(0), Some(0.5));
    }

    #[test]
    fn confusion_matrix_none_for_absent_classes() {
        let cm = ConfusionMatrix::compute(&[0u8], &[0u8], 3);
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.precision(2), None);
        assert!(cm.render().contains("true\\pred"));
    }
}
