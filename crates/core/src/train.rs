//! Training loop for congestion-prediction models (Sec. V-A: Adam,
//! learning rate `1e-3`, pixel-wise cross entropy over congestion levels).

use mfaplace_autograd::Graph;
use mfaplace_models::{expected_levels, predicted_classes, CongestionModel, NUM_LEVEL_CLASSES};
use mfaplace_nn::{class_weights_from_labels, Adam};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::SliceRandom;
use mfaplace_rt::rng::StdRng;

use crate::dataset::{batch, Dataset};
use crate::metrics::PredictionMetrics;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Whether to weight classes by inverse frequency (congestion levels
    /// are heavily imbalanced toward 0).
    pub class_weighting: bool,
    /// Cosine-anneal the learning rate (with 5% warmup) over the run —
    /// helps the deeper attention model converge within small budgets.
    pub cosine_schedule: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 2,
            lr: 1e-3,
            class_weighting: true,
            cosine_schedule: true,
            seed: 7,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken.
    pub steps: usize,
}

/// Drives training and evaluation of one model on one graph.
pub struct Trainer<M: CongestionModel> {
    graph: Graph,
    model: M,
    config: TrainConfig,
}

impl<M: CongestionModel> Trainer<M> {
    /// Wraps a model (already constructed on `graph`) for training.
    pub fn new(graph: Graph, model: M, config: TrainConfig) -> Self {
        Trainer {
            graph,
            model,
            config,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the trainer, returning the graph and model (for use as a
    /// flow predictor).
    pub fn into_parts(self) -> (Graph, M) {
        (self.graph, self.model)
    }

    /// Trains on `dataset`, returning per-epoch losses.
    pub fn fit(&mut self, dataset: &Dataset) -> TrainReport {
        use mfaplace_nn::{CosineLr, LrSchedule};
        let _t = mfaplace_rt::timer::ScopeTimer::new("core/fit");
        let mut opt = Adam::new(self.config.lr);
        let batches_per_epoch = dataset.len().div_ceil(self.config.batch_size).max(1);
        let total_steps = batches_per_epoch * self.config.epochs;
        let schedule = self.config.cosine_schedule.then(|| CosineLr {
            base: self.config.lr,
            floor: self.config.lr * 0.05,
            total: total_steps,
            warmup: (total_steps / 20).max(1),
        });
        let params = self.model.params();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mark = self.graph.mark();
        let mut report = TrainReport::default();

        // Class weights from the whole training set.
        let weights = self.config.class_weighting.then(|| {
            let all: Vec<u8> = dataset
                .samples
                .iter()
                .flat_map(|s| s.labels.iter().copied())
                .collect();
            class_weights_from_labels(&all, NUM_LEVEL_CLASSES)
        });

        for _epoch in 0..self.config.epochs {
            let _te = mfaplace_rt::timer::ScopeTimer::new("core/fit_epoch");
            let mut order: Vec<usize> = (0..dataset.len()).collect();
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                if let Some(s) = &schedule {
                    opt.set_lr(s.lr_at(report.steps));
                }
                let (x, labels) = batch(dataset, chunk);
                let xv = self.graph.constant(x);
                let logits = self.model.forward(&mut self.graph, xv, true);
                let loss = self
                    .graph
                    .cross_entropy2d(logits, &labels, weights.as_deref());
                epoch_loss += self.graph.value(loss).item();
                batches += 1;
                self.graph.zero_grads();
                self.graph.backward(loss);
                opt.step(&mut self.graph, &params);
                self.graph.truncate(mark);
                report.steps += 1;
            }
            report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
        }
        report
    }

    /// Evaluates ACC / R^2 / NRMS on `dataset` (inference mode).
    pub fn evaluate(&mut self, dataset: &Dataset) -> PredictionMetrics {
        let _t = mfaplace_rt::timer::ScopeTimer::new("core/evaluate");
        let mark = self.graph.mark();
        let mut pred_classes = Vec::new();
        let mut pred_levels = Vec::new();
        let mut labels_all = Vec::new();
        for i in 0..dataset.len() {
            let (x, labels) = batch(dataset, &[i]);
            let xv = self.graph.constant(x);
            let logits_var = self.model.forward(&mut self.graph, xv, false);
            let logits = self.graph.value(logits_var).clone();
            pred_classes.extend(predicted_classes(&logits));
            pred_levels.extend(expected_levels(&logits).into_vec());
            labels_all.extend(labels);
            self.graph.truncate(mark);
        }
        PredictionMetrics::compute(&pred_classes, &pred_levels, &labels_all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_design_dataset, DatasetConfig};
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_models::{OursConfig, OursModel, UNetModel};
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    fn tiny_dataset() -> Dataset {
        let d = DesignPreset::design_180()
            .with_scale(512, 64, 32)
            .generate(1);
        build_design_dataset(
            &d,
            &DatasetConfig {
                grid: 32,
                placements_per_design: 2,
                augment: false,
                placer_iterations: 4,
                ..DatasetConfig::default()
            },
            5,
        )
    }

    #[test]
    fn training_reduces_loss_ours() {
        let ds = tiny_dataset();
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = OursModel::new(
            &mut g,
            OursConfig {
                grid: 32,
                base_channels: 4,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        let mut trainer = Trainer::new(
            g,
            model,
            TrainConfig {
                epochs: 4,
                batch_size: 2,
                ..TrainConfig::default()
            },
        );
        let report = trainer.fit(&ds);
        assert_eq!(report.epoch_losses.len(), 4);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn evaluation_beats_chance_after_training() {
        let ds = tiny_dataset();
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = UNetModel::new(&mut g, 4, &mut rng);
        let mut trainer = Trainer::new(
            g,
            model,
            TrainConfig {
                epochs: 20,
                batch_size: 1,
                class_weighting: false,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&ds);
        let metrics = trainer.evaluate(&ds);
        // 8 classes -> chance ACC is 0.125; trained-on-train should beat it
        // decisively because level 0/1 dominate.
        assert!(metrics.acc > 0.3, "acc {}", metrics.acc);
        assert!(metrics.nrms < 1.0, "nrms {}", metrics.nrms);
    }
}
