//! Training loop for congestion-prediction models (Sec. V-A: Adam,
//! learning rate `1e-3`, pixel-wise cross entropy over congestion levels).
//!
//! # Deterministic data parallelism
//!
//! [`Trainer::fit`] shards every minibatch at **fixed one-sample
//! granularity** and runs forward+backward per shard on worker-local
//! replicas (a [`Graph::clone`] of the parameter tape plus a clone of the
//! model, so the primary's parameter `Var`s are valid on every replica).
//! Per-shard gradients come back in sample order and are combined with the
//! fixed-order pairwise tree reduction of [`Tensor::tree_sum`]; the loss
//! denominator (the class-weight sum of the whole minibatch) is computed
//! serially from the labels alone and folded into the backward seed
//! ([`Graph::backward_seeded`]). Because neither the shard boundaries nor
//! any reduction order depend on the worker count `K`, the summed gradient
//! — and therefore the entire training trajectory — is **bitwise identical
//! for any `K`** (enforced by `tests/train_determinism.rs`). Batch-norm
//! running statistics stay `K`-invariant the same way: replicas capture
//! their shard's batch statistics and the primary replays the EMA updates
//! in sample order.
//!
//! The worker count comes from [`TrainConfig::workers`], then the
//! `MFAPLACE_TRAIN_WORKERS` environment variable, then the rt pool size;
//! kernel-level threads are divided among the workers so the machine is
//! not oversubscribed.
//!
//! # Checkpoint/resume
//!
//! With [`TrainConfig::checkpoint`] set, `fit` atomically saves a
//! version-3 checkpoint (weights + optimizer moments + LR-schedule step +
//! shuffle-RNG state + batch-norm statistics) every
//! [`TrainConfig::save_every`] steps, and with [`TrainConfig::resume`] it
//! restores that state and continues to bitwise the same final weights as
//! an uninterrupted run.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mfaplace_autograd::Graph;
use mfaplace_models::{expected_levels, predicted_classes, CongestionModel, NUM_LEVEL_CLASSES};
use mfaplace_nn::checkpoint::{self, CheckpointMeta, TrainState};
use mfaplace_nn::{class_weights_from_labels, Adam};
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::SliceRandom;
use mfaplace_rt::rng::StdRng;
use mfaplace_rt::{pool, timer::ScopeTimer};
use mfaplace_tensor::Tensor;

use crate::dataset::{batch, Dataset};
use crate::metrics::PredictionMetrics;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Whether to weight classes by inverse frequency (congestion levels
    /// are heavily imbalanced toward 0).
    pub class_weighting: bool,
    /// Cosine-anneal the learning rate (with 5% warmup) over the run —
    /// helps the deeper attention model converge within small budgets.
    pub cosine_schedule: bool,
    /// Shuffle seed.
    pub seed: u64,
    /// Data-parallel worker count. `None` consults the
    /// `MFAPLACE_TRAIN_WORKERS` environment variable and falls back to the
    /// rt pool size ([`pool::max_threads`]). Any value trains bitwise
    /// identically; only throughput changes.
    pub workers: Option<usize>,
    /// Save a resumable checkpoint every this many optimizer steps
    /// (requires [`TrainConfig::checkpoint`]; `0` disables periodic saves).
    pub save_every: usize,
    /// Path for resumable checkpoints. When set, `fit` also saves here on
    /// normal completion and on an early [`TrainConfig::stop_after_steps`]
    /// stop.
    pub checkpoint: Option<PathBuf>,
    /// Resume from [`TrainConfig::checkpoint`] if the file exists (a
    /// missing file starts fresh, so first runs and restarts share one
    /// configuration).
    pub resume: bool,
    /// Stop after this many total optimizer steps, saving a checkpoint —
    /// simulates a killed run for resume testing, and bounds smoke-test
    /// cost.
    pub stop_after_steps: Option<usize>,
    /// Stream a JSON-lines training log (one object per step) to this
    /// path.
    pub log_path: Option<PathBuf>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 2,
            lr: 1e-3,
            class_weighting: true,
            cosine_schedule: true,
            seed: 7,
            workers: None,
            save_every: 0,
            checkpoint: None,
            resume: false,
            stop_after_steps: None,
            log_path: None,
        }
    }
}

impl TrainConfig {
    /// The effective data-parallel worker count (see
    /// [`TrainConfig::workers`]).
    pub fn effective_workers(&self) -> usize {
        self.workers
            .or_else(|| {
                std::env::var("MFAPLACE_TRAIN_WORKERS")
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
            .unwrap_or_else(pool::max_threads)
            .max(1)
    }
}

/// Per-step training record (observability; not part of the deterministic
/// state).
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Global optimizer step (1-based after the step completes).
    pub step: usize,
    /// Epoch the step belongs to (0-based).
    pub epoch: usize,
    /// Minibatch loss.
    pub loss: f32,
    /// Learning rate used.
    pub lr: f32,
    /// Samples in the minibatch.
    pub samples: usize,
    /// Wall-clock duration of the step in milliseconds.
    pub millis: f64,
}

/// Training statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken (including restored ones on resume).
    pub steps: usize,
    /// Per-step records for the steps executed by this `fit` call.
    pub steps_log: Vec<StepRecord>,
    /// Data-parallel worker count used.
    pub workers: usize,
    /// If the run resumed from a checkpoint, the step count it resumed at.
    pub resumed_at_step: Option<usize>,
}

/// One worker's unit of work: a single-sample shard plus the parameter
/// snapshot to compute it against.
struct ShardJob {
    x: Tensor,
    labels: Vec<u8>,
    snapshot: Arc<Vec<Tensor>>,
    version: u64,
    /// Backward seed `1/denominator` for this minibatch.
    seed: f32,
}

/// One worker's result for a shard, in primary-parameter order.
struct ShardOut {
    loss_sum: f64,
    grads: Vec<Option<Tensor>>,
    bn_stats: Vec<Option<(Vec<f32>, Vec<f32>)>>,
}

/// Drives training and evaluation of one model on one graph.
pub struct Trainer<M: CongestionModel> {
    graph: Graph,
    model: M,
    config: TrainConfig,
    meta: CheckpointMeta,
}

impl<M: CongestionModel> Trainer<M> {
    /// Wraps a model (already constructed on `graph`) for training.
    pub fn new(graph: Graph, model: M, config: TrainConfig) -> Self {
        let meta = CheckpointMeta::new(model.name());
        Trainer {
            graph,
            model,
            config,
            meta,
        }
    }

    /// Sets the metadata written into checkpoints (e.g. an
    /// architecture spec's `to_meta()`), so saved files are
    /// self-describing for the loader and the CLI. Defaults to just the
    /// model name.
    pub fn set_checkpoint_meta(&mut self, meta: CheckpointMeta) {
        self.meta = meta;
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the trainer, returning the graph and model (for use as a
    /// flow predictor).
    pub fn into_parts(self) -> (Graph, M) {
        (self.graph, self.model)
    }

    /// Evaluates ACC / R^2 / NRMS on `dataset` (inference mode).
    pub fn evaluate(&mut self, dataset: &Dataset) -> PredictionMetrics {
        let _t = ScopeTimer::new("core/evaluate");
        let mark = self.graph.mark();
        let mut pred_classes = Vec::new();
        let mut pred_levels = Vec::new();
        let mut labels_all = Vec::new();
        for i in 0..dataset.len() {
            let (x, labels) = batch(dataset, &[i]);
            let xv = self.graph.constant(x);
            let logits_var = self.model.forward(&mut self.graph, xv, false);
            let logits = self.graph.value(logits_var).clone();
            pred_classes.extend(predicted_classes(&logits));
            pred_levels.extend(expected_levels(&logits).into_vec());
            labels_all.extend(labels);
            self.graph.truncate(mark);
        }
        PredictionMetrics::compute(&pred_classes, &pred_levels, &labels_all)
    }
}

impl<M: CongestionModel + Clone + Send> Trainer<M> {
    /// Trains on `dataset`, returning per-epoch losses and per-step
    /// records. See the module docs for the determinism and
    /// checkpoint/resume contracts.
    ///
    /// # Panics
    ///
    /// Panics if a configured resume checkpoint exists but is corrupt or
    /// belongs to a different architecture, or if the training log cannot
    /// be written.
    pub fn fit(&mut self, dataset: &Dataset) -> TrainReport {
        let _t = ScopeTimer::new("core/fit");
        let k = self.config.effective_workers();
        let params = self.model.params();
        let mut opt = Adam::new(self.config.lr);
        let batches_per_epoch = dataset.len().div_ceil(self.config.batch_size).max(1);
        let total_steps = batches_per_epoch * self.config.epochs;
        let schedule = self.config.cosine_schedule.then(|| {
            use mfaplace_nn::CosineLr;
            CosineLr {
                base: self.config.lr,
                floor: self.config.lr * 0.05,
                total: total_steps,
                warmup: (total_steps / 20).max(1),
            }
        });

        // Class weights from the whole training set (serial, so identical
        // for every worker count).
        let weights = self.config.class_weighting.then(|| {
            let all: Vec<u8> = dataset
                .samples
                .iter()
                .flat_map(|s| s.labels.iter().copied())
                .collect();
            class_weights_from_labels(&all, NUM_LEVEL_CLASSES)
        });

        // ----------------------------------------------------- resume
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut steps = 0usize;
        let mut start_epoch = 0usize;
        let mut start_batch = 0usize;
        let mut done_epoch_losses: Vec<f32> = Vec::new();
        let mut partial_loss = 0.0f64;
        let mut resumed_at_step = None;
        if self.config.resume {
            if let Some(path) = self.config.checkpoint.clone() {
                if path.exists() {
                    let st = self.load_resume_state(&path, &params, &mut opt);
                    rng = StdRng::from_state(st.rng_state);
                    steps = st.steps as usize;
                    start_epoch = st.epoch as usize;
                    start_batch = st.batch_in_epoch as usize;
                    done_epoch_losses = st.epoch_losses;
                    partial_loss = st.partial_loss;
                    resumed_at_step = Some(steps);
                }
            }
        }

        let mut log = self.open_step_log(resumed_at_step.is_some());

        // Worker-local replicas: a clone of the parameter tape plus the
        // model, pre-built here and handed to each worker thread through a
        // take-once slot.
        let replicas: Vec<Mutex<Option<(Graph, M)>>> = (0..k)
            .map(|_| Mutex::new(Some((self.graph.clone(), self.model.clone()))))
            .collect();
        // Split kernel-level threads among the workers (kernels are
        // bitwise thread-count invariant, so this only affects speed).
        let kernel_threads = (pool::max_threads() / k).max(1);
        let params_ref = &params;
        let weights_ref = &weights;

        let state = |w: usize| {
            let (graph, model) = replicas[w]
                .lock()
                .expect("replica slot lock")
                .take()
                .expect("replica taken once per worker");
            let mark = graph.mark();
            (graph, model, mark, 0u64)
        };
        let work = move |s: &mut (Graph, M, usize, u64), job: ShardJob| -> ShardOut {
            let _t = ScopeTimer::new("core/fit_shard");
            let (g, model, mark, version) = s;
            pool::with_threads(kernel_threads, || {
                if *version != job.version {
                    for (&p, t) in params_ref.iter().zip(job.snapshot.iter()) {
                        *g.value_mut(p) = t.clone();
                    }
                    *version = job.version;
                }
                let xv = g.constant(job.x);
                let logits = model.forward(g, xv, true);
                let loss = g.cross_entropy2d_sum(logits, &job.labels, weights_ref.as_deref());
                let loss_sum = f64::from(g.value(loss).item());
                g.zero_grads();
                g.backward_seeded(loss, job.seed);
                let grads = params_ref.iter().map(|&p| g.grad(p).cloned()).collect();
                let bn_stats = model
                    .batch_norms()
                    .into_iter()
                    .map(mfaplace_nn::BatchNorm2d::take_batch_stats)
                    .collect();
                g.truncate(*mark);
                ShardOut {
                    loss_sum,
                    grads,
                    bn_stats,
                }
            })
        };

        pool::worker_team(k, state, work, |team| {
            let mut report = TrainReport {
                epoch_losses: done_epoch_losses,
                steps,
                workers: k,
                resumed_at_step,
                ..TrainReport::default()
            };
            let mut version = 0u64;
            let mut epoch = start_epoch;
            let mut pending_skip = start_batch;
            let mut epoch_loss = partial_loss;
            'epochs: while epoch < self.config.epochs {
                let _te = ScopeTimer::new("core/fit_epoch");
                // Captured *before* the shuffle so a resume can re-shuffle
                // to recover both the order and the post-shuffle state.
                let epoch_start_rng = rng.state();
                let mut order: Vec<usize> = (0..dataset.len()).collect();
                order.shuffle(&mut rng);
                let mut batches_done = pending_skip;
                for chunk in order.chunks(self.config.batch_size).skip(pending_skip) {
                    let step_t0 = std::time::Instant::now();
                    let _ts = ScopeTimer::new("core/fit_step");
                    let lr = schedule.map_or(self.config.lr, |s| {
                        use mfaplace_nn::LrSchedule;
                        s.lr_at(report.steps)
                    });
                    opt.set_lr(lr);

                    // Minibatch weight denominator, serial over (sample,
                    // pixel) so it is identical for every worker count.
                    let mut den = 0.0f64;
                    for &i in chunk {
                        for &y in &dataset.samples[i].labels {
                            den += f64::from(weights.as_ref().map_or(1.0, |cw| cw[y as usize]));
                        }
                    }
                    let den = den.max(1e-12);
                    let seed = (1.0 / den) as f32;

                    version += 1;
                    let snapshot = Arc::new(
                        params
                            .iter()
                            .map(|&p| self.graph.value(p).clone())
                            .collect::<Vec<_>>(),
                    );
                    let jobs: Vec<ShardJob> = chunk
                        .iter()
                        .map(|&i| {
                            let (x, labels) = batch(dataset, &[i]);
                            ShardJob {
                                x,
                                labels,
                                snapshot: Arc::clone(&snapshot),
                                version,
                                seed,
                            }
                        })
                        .collect();
                    let results = team.run(jobs);

                    // Fixed-order combination: loss sums and batch-norm
                    // statistics in sample order, gradients per parameter
                    // through the pairwise tree reduction.
                    let _tr = ScopeTimer::new("core/fit_reduce");
                    let mut loss_sum = 0.0f64;
                    let mut grad_cols: Vec<Vec<Tensor>> = params
                        .iter()
                        .map(|_| Vec::with_capacity(chunk.len()))
                        .collect();
                    for r in results {
                        loss_sum += r.loss_sum;
                        for (col, g) in grad_cols.iter_mut().zip(r.grads) {
                            if let Some(t) = g {
                                col.push(t);
                            }
                        }
                        let mut bns = self.model.batch_norms();
                        for (bn, s) in bns.iter_mut().zip(r.bn_stats) {
                            if let Some((m, v)) = s {
                                bn.ema_update(&m, &v);
                            }
                        }
                    }
                    for (&p, col) in params.iter().zip(grad_cols) {
                        self.graph.set_grad(p, Tensor::tree_sum(col));
                    }
                    drop(_tr);
                    opt.step(&mut self.graph, &params);

                    let batch_loss = loss_sum / den;
                    epoch_loss += batch_loss;
                    batches_done += 1;
                    report.steps += 1;
                    let record = StepRecord {
                        step: report.steps,
                        epoch,
                        loss: batch_loss as f32,
                        lr,
                        samples: chunk.len(),
                        millis: step_t0.elapsed().as_secs_f64() * 1e3,
                    };
                    self.log_step(&mut log, &record);
                    report.steps_log.push(record);

                    let stop_now = self.config.stop_after_steps == Some(report.steps);
                    let periodic = self.config.save_every > 0
                        && report.steps.is_multiple_of(self.config.save_every);
                    if stop_now || periodic {
                        self.save_train_state(
                            &params,
                            &opt,
                            TrainState {
                                steps: report.steps as u64,
                                epoch: epoch as u64,
                                batch_in_epoch: batches_done as u64,
                                rng_state: epoch_start_rng,
                                adam_t: 0,           // filled by save_train_state
                                moments: Vec::new(), // filled by save_train_state
                                epoch_losses: report.epoch_losses.clone(),
                                partial_loss: epoch_loss,
                                bn_stats: Vec::new(), // filled by save_train_state
                            },
                        );
                    }
                    if stop_now {
                        break 'epochs;
                    }
                }
                report
                    .epoch_losses
                    .push((epoch_loss / (batches_done.max(1) as f64)) as f32);
                epoch += 1;
                pending_skip = 0;
                epoch_loss = 0.0;
            }
            if self.config.checkpoint.is_some() && self.config.stop_after_steps.is_none() {
                self.save_train_state(
                    &params,
                    &opt,
                    TrainState {
                        steps: report.steps as u64,
                        epoch: self.config.epochs as u64,
                        batch_in_epoch: 0,
                        rng_state: rng.state(),
                        adam_t: 0,
                        moments: Vec::new(),
                        epoch_losses: report.epoch_losses.clone(),
                        partial_loss: 0.0,
                        bn_stats: Vec::new(),
                    },
                );
            }
            report
        })
    }

    /// Restores weights + optimizer + RNG + batch-norm state from a v3
    /// checkpoint, returning the raw train state for the loop to consume.
    fn load_resume_state(
        &mut self,
        path: &Path,
        params: &[mfaplace_autograd::Var],
        opt: &mut Adam,
    ) -> TrainState {
        let ckpt = checkpoint::read_checkpoint(path)
            .unwrap_or_else(|e| panic!("resume from {}: {e}", path.display()));
        checkpoint::assign_params(&mut self.graph, params, ckpt.tensors)
            .unwrap_or_else(|e| panic!("resume from {}: {e}", path.display()));
        let st = ckpt.train.unwrap_or_else(|| {
            panic!(
                "resume from {}: checkpoint has no training-state section (v1/v2 file?)",
                path.display()
            )
        });
        opt.import_moments(params, st.adam_t, st.moments.clone());
        let mut bns = self.model.batch_norms();
        assert_eq!(
            bns.len(),
            st.bn_stats.len(),
            "resume: batch-norm layer count mismatch"
        );
        for (bn, (m, v)) in bns.iter_mut().zip(&st.bn_stats) {
            bn.set_running_stats(m, v);
        }
        st
    }

    /// Saves a resumable v3 checkpoint (atomic rename) at
    /// [`TrainConfig::checkpoint`]. `partial` carries the loop counters;
    /// optimizer moments and batch-norm statistics are filled in here.
    fn save_train_state(
        &mut self,
        params: &[mfaplace_autograd::Var],
        opt: &Adam,
        partial: TrainState,
    ) {
        let Some(path) = self.config.checkpoint.clone() else {
            return;
        };
        let _t = ScopeTimer::new("core/fit_save");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        let (adam_t, moments) = opt.export_moments(&self.graph, params);
        let bn_stats = self
            .model
            .batch_norms()
            .into_iter()
            .map(|bn| (bn.running_mean().to_vec(), bn.running_var().to_vec()))
            .collect();
        let st = TrainState {
            adam_t,
            moments,
            bn_stats,
            ..partial
        };
        checkpoint::save_train_checkpoint(&self.graph, params, &self.meta, &st, &path)
            .unwrap_or_else(|e| panic!("saving checkpoint {}: {e}", path.display()));
    }

    fn open_step_log(&self, resumed: bool) -> Option<std::io::BufWriter<std::fs::File>> {
        let path = self.config.log_path.as_ref()?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        let file = if resumed {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
        } else {
            std::fs::File::create(path)
        }
        .unwrap_or_else(|e| panic!("opening training log {}: {e}", path.display()));
        Some(std::io::BufWriter::new(file))
    }

    fn log_step(&self, log: &mut Option<std::io::BufWriter<std::fs::File>>, r: &StepRecord) {
        if let Some(w) = log {
            writeln!(
                w,
                "{{\"step\":{},\"epoch\":{},\"loss\":{},\"lr\":{},\"samples\":{},\"millis\":{:.3}}}",
                r.step, r.epoch, r.loss, r.lr, r.samples, r.millis
            )
            .and_then(|()| w.flush())
            .expect("writing training log");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_design_dataset, DatasetConfig};
    use mfaplace_fpga::design::DesignPreset;
    use mfaplace_models::{OursConfig, OursModel, UNetModel};
    use mfaplace_rt::rng::SeedableRng;
    use mfaplace_rt::rng::StdRng;

    fn tiny_dataset() -> Dataset {
        let d = DesignPreset::design_180()
            .with_scale(512, 64, 32)
            .generate(1);
        build_design_dataset(
            &d,
            &DatasetConfig {
                grid: 32,
                placements_per_design: 2,
                augment: false,
                placer_iterations: 4,
                ..DatasetConfig::default()
            },
            5,
        )
    }

    #[test]
    fn training_reduces_loss_ours() {
        let ds = tiny_dataset();
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = OursModel::new(
            &mut g,
            OursConfig {
                grid: 32,
                base_channels: 4,
                vit_layers: 1,
                vit_heads: 2,
                use_mfa: true,
                mfa_reduction: 4,
            },
            &mut rng,
        );
        let mut trainer = Trainer::new(
            g,
            model,
            TrainConfig {
                epochs: 4,
                batch_size: 2,
                ..TrainConfig::default()
            },
        );
        let report = trainer.fit(&ds);
        assert_eq!(report.epoch_losses.len(), 4);
        assert_eq!(report.steps_log.len(), report.steps);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn evaluation_beats_chance_after_training() {
        let ds = tiny_dataset();
        let mut g = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = UNetModel::new(&mut g, 4, &mut rng);
        let mut trainer = Trainer::new(
            g,
            model,
            TrainConfig {
                epochs: 20,
                batch_size: 1,
                class_weighting: false,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&ds);
        let metrics = trainer.evaluate(&ds);
        // 8 classes -> chance ACC is 0.125; trained-on-train should beat it
        // decisively because level 0/1 dominate.
        assert!(metrics.acc > 0.3, "acc {}", metrics.acc);
        assert!(metrics.nrms < 1.0, "nrms {}", metrics.nrms);
    }
}
