//! The offline "compile for serving" step: checkpoint + calibration →
//! one self-contained quantized serving artifact.
//!
//! An artifact (`MFAQART1`) bundles everything a server needs to run a
//! model quantized without re-calibrating at load time:
//!
//! - the full checkpoint bytes (self-describing v2/v3 `.mfaw`),
//! - the offline [`Calibration`] (per-step activation ranges),
//! - the chosen [`Precision`] and whether BN folding was applied,
//! - an FNV-1a checksum over the whole payload.
//!
//! [`crate::loader::load_predictor_with_cache`] detects the magic and
//! rebuilds the predictor with the calibration attached and the quant
//! engine selected (unless `MFAPLACE_ENGINE` overrides), so `serve` and
//! `predict` round-trip the artifact with zero extra flags.

use mfaplace_infer::{Calibration, PlanStats, Precision, QuantOptions, QuantStats};
use mfaplace_models::ArchSpec;
use mfaplace_tensor::Tensor;

use crate::loader::{load_predictor, LoadOptions};

/// Magic prefix of a quantized serving artifact.
pub const ARTIFACT_MAGIC: &[u8; 8] = b"MFAQART1";

const ARTIFACT_VERSION: u32 = 1;
/// Fixed-size header: magic + version + precision + fold + calib len +
/// checkpoint len.
const HEADER_LEN: usize = 8 + 4 + 4 + 4 + 4 + 8;

/// A parsed serving artifact.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Arena precision the calibration was validated for.
    pub precision: Precision,
    /// Whether plans must be compiled with BN folding (the calibration
    /// was collected on folded plans).
    pub fold_bn: bool,
    /// Per-step activation ranges.
    pub calibration: Calibration,
    /// The embedded checkpoint file, byte for byte.
    pub checkpoint: Vec<u8>,
}

/// What [`compile_for_serving`] produced, for reporting.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// Architecture of the compiled checkpoint.
    pub spec: ArchSpec,
    /// Stats of the quantized batch-1 plan (arena/weight bytes reflect
    /// quantized storage).
    pub stats: PlanStats,
    /// Quantization counters of that plan.
    pub qstats: QuantStats,
    /// Calibration inputs consumed.
    pub calib_inputs: usize,
    /// Total artifact size on disk.
    pub artifact_bytes: usize,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether the file at `path` starts with the artifact magic.
pub fn is_artifact(path: &str) -> bool {
    let mut head = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut head))
        .map(|()| &head == ARTIFACT_MAGIC)
        .unwrap_or(false)
}

/// Serializes an artifact (deterministic for identical inputs).
pub fn artifact_to_bytes(
    calibration: &Calibration,
    precision: Precision,
    fold_bn: bool,
    checkpoint: &[u8],
) -> Vec<u8> {
    let calib = calibration.to_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + calib.len() + checkpoint.len() + 8);
    out.extend_from_slice(ARTIFACT_MAGIC);
    out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::from(precision.code()).to_le_bytes());
    out.extend_from_slice(&u32::from(fold_bn).to_le_bytes());
    out.extend_from_slice(&(calib.len() as u32).to_le_bytes());
    out.extend_from_slice(&(checkpoint.len() as u64).to_le_bytes());
    out.extend_from_slice(&calib);
    out.extend_from_slice(checkpoint);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses [`artifact_to_bytes`] output, validating the checksum.
pub fn artifact_from_bytes(b: &[u8]) -> Result<Artifact, String> {
    if b.len() < HEADER_LEN + 8 || &b[..8] != ARTIFACT_MAGIC {
        return Err("not a serving artifact (bad magic)".into());
    }
    let body = &b[..b.len() - 8];
    let stored = u64::from_le_bytes(b[b.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err("serving artifact checksum mismatch (corrupt file)".into());
    }
    let version = u32::from_le_bytes(b[8..12].try_into().unwrap());
    if version != ARTIFACT_VERSION {
        return Err(format!("unsupported artifact version {version}"));
    }
    let precision = u8::try_from(u32::from_le_bytes(b[12..16].try_into().unwrap()))
        .ok()
        .and_then(Precision::from_code)
        .ok_or("unknown artifact precision code")?;
    let fold_bn = u32::from_le_bytes(b[16..20].try_into().unwrap()) != 0;
    let calib_len = u32::from_le_bytes(b[20..24].try_into().unwrap()) as usize;
    let ckpt_len = u64::from_le_bytes(b[24..32].try_into().unwrap()) as usize;
    if body.len() != HEADER_LEN + calib_len + ckpt_len {
        return Err(format!(
            "artifact section lengths disagree with file size ({} bytes)",
            b.len()
        ));
    }
    let calibration = Calibration::from_bytes(&body[HEADER_LEN..HEADER_LEN + calib_len])?;
    Ok(Artifact {
        precision,
        fold_bn,
        calibration,
        checkpoint: body[HEADER_LEN + calib_len..].to_vec(),
    })
}

/// Reads and validates an artifact file.
///
/// # Errors
///
/// Returns a human-readable error naming the file on I/O failure, bad
/// magic, corruption, or an unsupported version.
pub fn read_artifact(path: &str) -> Result<Artifact, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    artifact_from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// The offline compile step: loads the checkpoint, calibrates over the
/// representative `[C, H, W]` feature stacks, validates that a quantized
/// batch-1 plan actually builds, and writes the artifact to `out_path`.
///
/// # Errors
///
/// Returns a human-readable error if the checkpoint cannot be loaded,
/// calibration fails (e.g. no inputs), the quantized plan cannot be
/// built, or the artifact cannot be written.
pub fn compile_for_serving(
    checkpoint_path: &str,
    load: LoadOptions,
    calib_inputs: &[Tensor],
    precision: Precision,
    fold_bn: bool,
    out_path: &str,
) -> Result<CompileReport, String> {
    let (spec, mut predictor) = load_predictor(checkpoint_path, load)?;
    predictor.set_fold_bn(fold_bn);
    let calibration = predictor.calibrate(calib_inputs, QuantOptions { precision })?;
    // Prove the calibration quantizes this model before shipping it.
    let (stats, qstats) = predictor.compile_quant_plan(1, 6, spec.grid, spec.grid)?;
    let checkpoint =
        std::fs::read(checkpoint_path).map_err(|e| format!("{checkpoint_path}: {e}"))?;
    let bytes = artifact_to_bytes(&calibration, precision, fold_bn, &checkpoint);
    std::fs::write(out_path, &bytes).map_err(|e| format!("{out_path}: {e}"))?;
    Ok(CompileReport {
        spec,
        stats,
        qstats,
        calib_inputs: calib_inputs.len(),
        artifact_bytes: bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_bitwise() {
        let calibration = test_calibration();
        let ckpt = vec![1u8, 2, 3, 4, 5];
        let bytes = artifact_to_bytes(&calibration, Precision::Int8, true, &ckpt);
        let art = artifact_from_bytes(&bytes).unwrap();
        assert_eq!(art.precision, Precision::Int8);
        assert!(art.fold_bn);
        assert_eq!(art.checkpoint, ckpt);
        assert_eq!(art.calibration.to_bytes(), calibration.to_bytes());
        // Determinism: identical inputs, identical bytes.
        assert_eq!(
            bytes,
            artifact_to_bytes(&calibration, Precision::Int8, true, &ckpt)
        );
    }

    #[test]
    fn corrupt_artifact_is_rejected() {
        let bytes = artifact_to_bytes(&test_calibration(), Precision::F16, false, &[9u8; 32]);
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let err = artifact_from_bytes(&flipped).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let err = artifact_from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(!err.is_empty());
        assert!(artifact_from_bytes(b"not an artifact at all!!").is_err());
    }

    fn test_calibration() -> Calibration {
        // Build via the serializer's inverse to avoid constructing the
        // (crate-private) fields directly: 8-byte magic, count, input
        // range, 2 ranges, 2 kind tags.
        let mut b = Vec::new();
        b.extend_from_slice(b"MFACAL01");
        b.extend_from_slice(&2u32.to_le_bytes());
        b.extend_from_slice(&1.5f32.to_le_bytes());
        b.extend_from_slice(&0.5f32.to_le_bytes());
        b.extend_from_slice(&2.0f32.to_le_bytes());
        b.extend_from_slice(&[0u8, 8u8]);
        Calibration::from_bytes(&b).unwrap()
    }
}
