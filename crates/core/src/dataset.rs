//! Dataset generation (Sec. V-A of the paper).
//!
//! For each benchmark the paper runs its macro placement flow with varying
//! parameters to collect 30 placements, labels them with the Vivado initial
//! router, and augments with 90/180/270-degree rotations (30 x 4 = 120
//! samples per design). This module reproduces the procedure on the
//! simulated substrate: placements come from the analytical placer driven
//! with varying seeds and spreading strengths (plus a few random-placement
//! snapshots for label diversity), labels from the global-router congestion
//! analysis.

use mfaplace_fpga::design::Design;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_placer::flows::{FlowConfig as PlacerFlowConfig, PlacementFlow, RudyPredictor};
use mfaplace_router::labels::{congestion_labels, rotate_levels};
use mfaplace_router::RouterConfig;
use mfaplace_rt::rng::Rng;
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::SliceRandom;
use mfaplace_rt::rng::StdRng;
use mfaplace_tensor::Tensor;

/// One training sample: the six feature maps plus the label level map.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Features `[6, H, W]`.
    pub features: Tensor,
    /// Per-tile congestion level labels, row-major `H x W`.
    pub labels: Vec<u8>,
}

/// A labelled dataset for one or more designs.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
    /// Grid side length.
    pub grid: usize,
}

impl Dataset {
    /// Splits into train/test by a deterministic shuffle; `test_fraction`
    /// of the samples go to the second dataset.
    pub fn split(mut self, test_fraction: f32, seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        self.samples.shuffle(&mut rng);
        let n_test = ((self.samples.len() as f32) * test_fraction).round() as usize;
        let test = self
            .samples
            .split_off(self.samples.len().saturating_sub(n_test));
        (
            Dataset {
                samples: self.samples,
                grid: self.grid,
            },
            Dataset {
                samples: test,
                grid: self.grid,
            },
        )
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Dataset generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Feature/label grid side (the paper resizes to 256; scaled runs use
    /// 64 or less).
    pub grid: usize,
    /// Placements generated per design (paper: 30).
    pub placements_per_design: usize,
    /// Whether to add the 90/180/270-degree rotations (x4 samples).
    pub augment: bool,
    /// Router used for labelling.
    pub router: RouterConfig,
    /// Placer iterations for the sweep (kept small; variety comes from
    /// seeds and spreading strength).
    pub placer_iterations: usize,
    /// Whether to calibrate the labelling router's capacities per design
    /// (see [`crate::flow::calibrated_router_for`]); keeps label level
    /// distributions comparable across designs and scales.
    pub calibrate: bool,
    /// Calibration target utilization at the 80th percentile.
    pub target_util: f32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        let grid = 64;
        DatasetConfig {
            grid,
            placements_per_design: 6,
            augment: true,
            router: RouterConfig {
                grid_w: grid,
                grid_h: grid,
                ..RouterConfig::default()
            },
            placer_iterations: 12,
            calibrate: true,
            target_util: 0.7,
        }
    }
}

/// Generates the labelled dataset for one design.
pub fn build_design_dataset(design: &Design, cfg: &DatasetConfig, seed: u64) -> Dataset {
    let mut samples = Vec::new();
    let mut router_cfg = cfg.router.clone();
    router_cfg.grid_w = cfg.grid;
    router_cfg.grid_h = cfg.grid;
    if cfg.calibrate {
        router_cfg =
            crate::flow::calibrated_router_for(design, cfg.grid, cfg.target_util, seed ^ 0xCA11);
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD5);
    for k in 0..cfg.placements_per_design {
        // Placer-produced snapshot with varying seed and spreading strength
        // (the paper's "varying parameters"), plus a mild position jitter on
        // every second snapshot so labels cover partially-converged states.
        let mut flow_cfg = PlacerFlowConfig::seu_like();
        flow_cfg.gp_stage1.iterations = cfg.placer_iterations.saturating_sub(2 * (k % 3)).max(2);
        flow_cfg.gp_stage2.iterations = cfg.placer_iterations / 2;
        flow_cfg.gp_stage1.density_step = 0.35 + 0.1 * (k % 3) as f32;
        flow_cfg.grid_w = cfg.grid;
        flow_cfg.grid_h = cfg.grid;
        let flow = PlacementFlow::new(flow_cfg);
        let mut placement = flow
            .run(
                design,
                &mut RudyPredictor::default(),
                seed.wrapping_add(k as u64),
            )
            .placement;
        if k % 2 == 1 {
            let sigma = 0.5 + 1.5 * (k % 4) as f32;
            for (id, inst) in design.netlist.instances() {
                if !inst.movable {
                    continue;
                }
                let (x, y) = placement.pos(id.0 as usize);
                let (nx, ny) = design.arch.clamp(
                    x + rng.gen_range(-sigma..sigma),
                    y + rng.gen_range(-sigma..sigma),
                );
                placement.set_pos(id.0 as usize, nx, ny);
            }
        }
        let features = FeatureStack::extract(design, &placement, cfg.grid, cfg.grid);
        let labels = congestion_labels(design, &placement, &router_cfg);
        let rotations = if cfg.augment { 4 } else { 1 };
        for rot in 0..rotations {
            let f = features.rot90(rot);
            let l = rotate_levels(&labels.levels, cfg.grid, cfg.grid, rot);
            samples.push(Sample {
                features: f.to_tensor(),
                labels: l,
            });
        }
    }
    Dataset {
        samples,
        grid: cfg.grid,
    }
}

/// Stacks samples `[i0, i1, ...)` into a batch tensor `[B, 6, H, W]` plus
/// concatenated labels.
///
/// # Panics
///
/// Panics if `indices` is empty or out of range.
pub fn batch(dataset: &Dataset, indices: &[usize]) -> (Tensor, Vec<u8>) {
    assert!(!indices.is_empty(), "batch needs at least one sample");
    let f0 = &dataset.samples[indices[0]].features;
    let (c, h, w) = (f0.shape()[0], f0.shape()[1], f0.shape()[2]);
    let mut data = Vec::with_capacity(indices.len() * c * h * w);
    let mut labels = Vec::with_capacity(indices.len() * h * w);
    for &i in indices {
        let s = &dataset.samples[i];
        data.extend_from_slice(s.features.data());
        labels.extend_from_slice(&s.labels);
    }
    (
        Tensor::from_vec(vec![indices.len(), c, h, w], data).expect("batch tensor"),
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            grid: 32,
            placements_per_design: 2,
            augment: true,
            placer_iterations: 4,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn dataset_counts_and_shapes() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let ds = build_design_dataset(&d, &small_cfg(), 3);
        assert_eq!(ds.len(), 2 * 4, "2 placements x 4 rotations");
        for s in &ds.samples {
            assert_eq!(s.features.shape(), &[6, 32, 32]);
            assert_eq!(s.labels.len(), 32 * 32);
        }
    }

    #[test]
    fn augmentation_quadruples() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let mut cfg = small_cfg();
        cfg.augment = false;
        let plain = build_design_dataset(&d, &cfg, 3);
        cfg.augment = true;
        let augmented = build_design_dataset(&d, &cfg, 3);
        assert_eq!(augmented.len(), plain.len() * 4);
    }

    #[test]
    fn split_partitions_samples() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let ds = build_design_dataset(&d, &small_cfg(), 3);
        let total = ds.len();
        let (train, test) = ds.split(0.25, 9);
        assert_eq!(train.len() + test.len(), total);
        assert_eq!(test.len(), (total as f32 * 0.25).round() as usize);
    }

    #[test]
    fn batching_stacks_features() {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let ds = build_design_dataset(&d, &small_cfg(), 3);
        let (x, labels) = batch(&ds, &[0, 1, 2]);
        assert_eq!(x.shape(), &[3, 6, 32, 32]);
        assert_eq!(labels.len(), 3 * 32 * 32);
    }
}
