//! End-to-end pipeline of the `mfaplace` reproduction.
//!
//! Ties the substrates together:
//!
//! - [`dataset`] — placement sweeps per design, feature/label extraction
//!   and the paper's rotation augmentation (Sec. V-A);
//! - [`metrics`] — ACC, R^2 and NRMS (Sec. V-B);
//! - [`train`] — the Adam training loop over any [`mfaplace_models::CongestionModel`];
//! - [`predictor`] — adapts a trained model to the placer's
//!   [`mfaplace_placer::CongestionPredictor`] interface;
//! - [`flow`] — the complete routability-driven macro placement flow
//!   (Fig. 6) with routing, scoring and the simulated `T_P&R` (Sec. V-C);
//! - [`report`] — fixed-width table rendering for the Table I/II harnesses.

pub mod compile;
pub mod dataset;
pub mod flow;
pub mod loader;
pub mod metrics;
pub mod predictor;
pub mod report;
pub mod train;

pub use compile::{compile_for_serving, is_artifact, read_artifact, Artifact, CompileReport};
pub use dataset::{Dataset, DatasetConfig, Sample};
pub use flow::{FlowConfig, FlowOutcome, FlowProgress, MacroPlacementFlow};
pub use loader::{
    content_hash, load_predictor, load_predictor_with_cache, save_predictor, LoadOptions,
};
// Re-exported so downstream crates (serve, CLI) can share plan caches
// without depending on `mfaplace-infer` directly.
pub use metrics::{accuracy, nrms, r_squared, ConfusionMatrix, PredictionMetrics};
pub use mfaplace_infer::{
    Calibration, PlanCache, PlanCacheStats, PlanKey, PlanPrecision, PlanSource, Precision,
    QuantOptions, QuantStats,
};
pub use predictor::{Engine, ModelPredictor};
pub use train::{TrainConfig, TrainReport, Trainer};
