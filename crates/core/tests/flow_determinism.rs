//! Flow determinism: `MacroPlacementFlow::run_with` under a fixed seed and
//! the same checkpoint must produce bitwise-identical `FlowOutcome`s across
//! runs, and an observed run must be bitwise identical to an unobserved
//! one with an event stream that is itself reproducible. The only field
//! excluded from comparison is `t_macro_min`, which is wall-clock by
//! definition.

use mfaplace_core::loader::{init_checkpoint, load_predictor, LoadOptions};
use mfaplace_core::{FlowConfig, FlowOutcome, MacroPlacementFlow};
use mfaplace_fpga::design::{Design, DesignPreset};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_placer::flows::CongestionPredictor;

const GRID: usize = 16;
const SEED: u64 = 7;

fn temp_checkpoint(name: &str) -> String {
    let dir = std::env::temp_dir().join("mfaplace_flow_determinism_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name).to_string_lossy().into_owned();
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    init_checkpoint(&spec, 11, &path).unwrap();
    path
}

fn quick_config() -> FlowConfig {
    let mut cfg = FlowConfig::default();
    cfg.placer.gp_stage1.iterations = 8;
    cfg.placer.gp_stage2.iterations = 4;
    cfg.placer.grid_w = GRID;
    cfg.placer.grid_h = GRID;
    cfg.router.grid_w = GRID;
    cfg.router.grid_h = GRID;
    cfg
}

fn small_design() -> Design {
    DesignPreset::design_116()
        .with_scale(512, 64, 32)
        .generate(1)
}

fn run_once(ckpt: &str, flow: &MacroPlacementFlow, design: &Design) -> FlowOutcome {
    let (_, mut predictor) = load_predictor(ckpt, LoadOptions::default()).unwrap();
    flow.run_with(design, &mut predictor, SEED)
}

/// Asserts every deterministic field of two outcomes matches bitwise
/// (`t_macro_min` is wall-clock and deliberately excluded).
fn assert_outcomes_identical(a: &FlowOutcome, b: &FlowOutcome) {
    assert_eq!(a.placement.placement, b.placement.placement);
    assert_eq!(a.placement.final_overflow, b.placement.final_overflow);
    assert_eq!(a.placement.inflation, b.placement.inflation);
    assert_eq!(a.placement.stage1_iterations, b.placement.stage1_iterations);
    assert_eq!(a.score.s_ir().to_bits(), b.score.s_ir().to_bits());
    assert_eq!(a.score.s_dr().to_bits(), b.score.s_dr().to_bits());
    assert_eq!(a.analysis.short_levels(), b.analysis.short_levels());
    assert_eq!(a.analysis.global_levels(), b.analysis.global_levels());
    assert_eq!(a.wirelength.to_bits(), b.wirelength.to_bits());
    assert_eq!(a.overflow.to_bits(), b.overflow.to_bits());
}

#[test]
fn run_with_is_bitwise_deterministic_across_runs() {
    let ckpt = temp_checkpoint("flow_det.mfaw");
    let flow = MacroPlacementFlow::new(quick_config());
    let d = small_design();
    let a = run_once(&ckpt, &flow, &d);
    let b = run_once(&ckpt, &flow, &d);
    assert_outcomes_identical(&a, &b);
}

#[test]
fn observed_run_is_bitwise_identical_with_reproducible_events() {
    let ckpt = temp_checkpoint("flow_det_obs.mfaw");
    let flow = MacroPlacementFlow::new(quick_config());
    let d = small_design();
    let plain = run_once(&ckpt, &flow, &d);

    let observed_run = || {
        let (_, mut predictor) = load_predictor(&ckpt, LoadOptions::default()).unwrap();
        let mut events = Vec::new();
        let out = flow
            .run_with_observer(
                &d,
                &mut predictor as &mut dyn CongestionPredictor,
                SEED,
                &mut |e| {
                    events.push(format!("{e:?}"));
                    true
                },
            )
            .unwrap();
        (out, events)
    };
    let (obs_a, events_a) = observed_run();
    let (obs_b, events_b) = observed_run();

    assert_outcomes_identical(&plain, &obs_a);
    assert_outcomes_identical(&obs_a, &obs_b);
    // Events carry no timestamps, so the streams match verbatim.
    assert_eq!(events_a, events_b);
    assert!(events_a.iter().any(|e| e.contains("Predicted")));
    assert!(events_a.iter().any(|e| e.contains("Scored")));
}
