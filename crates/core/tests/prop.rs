//! Randomized tests of the evaluation metrics (fixed seeds, in-tree harness).

use mfaplace_core::metrics::{accuracy, nrms, r_squared};
use mfaplace_rt::check::{run_cases, vec_f32, vec_u8};
use mfaplace_rt::rng::Rng;

#[test]
fn accuracy_bounded() {
    run_cases("accuracy_bounded", 64, 0xC0_01, |_case, rng| {
        let len = rng.gen_range(1usize..64);
        let pred = vec_u8(rng, len, 0, 8);
        let labels: Vec<u8> = pred.iter().map(|&p| (p + 1) % 8).collect();
        let a = accuracy(&pred, &labels);
        assert!((0.0..=1.0).contains(&a));
        assert_eq!(accuracy(&pred, &pred), 1.0);
    });
}

#[test]
fn r2_at_most_one() {
    run_cases("r2_at_most_one", 64, 0xC0_02, |_case, rng| {
        let len = rng.gen_range(2usize..64);
        let pred = vec_f32(rng, len, -10.0, 10.0);
        let labels: Vec<u8> = (0..pred.len()).map(|i| (i % 8) as u8).collect();
        assert!(r_squared(&pred, &labels) <= 1.0 + 1e-9);
        // Perfect prediction is exactly 1.
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        assert!((r_squared(&exact, &labels) - 1.0).abs() < 1e-9);
    });
}

#[test]
fn nrms_nonnegative_and_zero_iff_exact() {
    run_cases(
        "nrms_nonnegative_and_zero_iff_exact",
        64,
        0xC0_03,
        |_case, rng| {
            let len = rng.gen_range(1usize..64);
            let labels = vec_u8(rng, len, 0, 8);
            let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
            assert_eq!(nrms(&exact, &labels), 0.0);
            let off: Vec<f32> = exact.iter().map(|v| v + 1.0).collect();
            assert!(nrms(&off, &labels) > 0.0);
        },
    );
}

#[test]
fn nrms_monotone_in_error() {
    run_cases("nrms_monotone_in_error", 64, 0xC0_04, |_case, rng| {
        let len = rng.gen_range(2usize..32);
        let labels = vec_u8(rng, len, 0, 8);
        let delta = rng.gen_range(0.1f32..3.0);
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        let near: Vec<f32> = exact.iter().map(|v| v + delta).collect();
        let far: Vec<f32> = exact.iter().map(|v| v + 2.0 * delta).collect();
        assert!(nrms(&near, &labels) <= nrms(&far, &labels) + 1e-6);
    });
}

#[test]
fn better_fit_higher_r2() {
    run_cases("better_fit_higher_r2", 64, 0xC0_05, |_case, rng| {
        let len = rng.gen_range(4usize..32);
        let labels = vec_u8(rng, len, 0, 8);
        let noise = rng.gen_range(0.1f32..2.0);
        // Skip degenerate all-equal label vectors (SS_tot = 0).
        let distinct = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        if distinct <= 1 {
            return;
        }
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        let near: Vec<f32> = exact
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { noise } else { -noise })
            .collect();
        let far: Vec<f32> = exact
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v + if i % 2 == 0 {
                    2.0 * noise
                } else {
                    -2.0 * noise
                }
            })
            .collect();
        assert!(r_squared(&near, &labels) >= r_squared(&far, &labels) - 1e-6);
    });
}
