//! Property-based tests of the evaluation metrics.

use mfaplace_core::metrics::{accuracy, nrms, r_squared};
use proptest::prelude::*;

proptest! {
    #[test]
    fn accuracy_bounded(pred in proptest::collection::vec(0u8..8, 1..64)) {
        let labels: Vec<u8> = pred.iter().map(|&p| (p + 1) % 8).collect();
        let a = accuracy(&pred, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert_eq!(accuracy(&pred, &pred), 1.0);
    }

    #[test]
    fn r2_at_most_one(pred in proptest::collection::vec(-10.0f32..10.0, 2..64)) {
        let labels: Vec<u8> = (0..pred.len()).map(|i| (i % 8) as u8).collect();
        prop_assert!(r_squared(&pred, &labels) <= 1.0 + 1e-9);
        // Perfect prediction is exactly 1.
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        prop_assert!((r_squared(&exact, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nrms_nonnegative_and_zero_iff_exact(labels in proptest::collection::vec(0u8..8, 1..64)) {
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        prop_assert_eq!(nrms(&exact, &labels), 0.0);
        let off: Vec<f32> = exact.iter().map(|v| v + 1.0).collect();
        prop_assert!(nrms(&off, &labels) > 0.0);
    }

    #[test]
    fn nrms_monotone_in_error(labels in proptest::collection::vec(0u8..8, 2..32), delta in 0.1f32..3.0) {
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        let near: Vec<f32> = exact.iter().map(|v| v + delta).collect();
        let far: Vec<f32> = exact.iter().map(|v| v + 2.0 * delta).collect();
        prop_assert!(nrms(&near, &labels) <= nrms(&far, &labels) + 1e-6);
    }

    #[test]
    fn better_fit_higher_r2(labels in proptest::collection::vec(0u8..8, 4..32), noise in 0.1f32..2.0) {
        // Skip degenerate all-equal label vectors (SS_tot = 0).
        let distinct = labels.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assume!(distinct > 1);
        let exact: Vec<f32> = labels.iter().map(|&l| f32::from(l)).collect();
        let near: Vec<f32> = exact
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { noise } else { -noise })
            .collect();
        let far: Vec<f32> = exact
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { 2.0 * noise } else { -2.0 * noise })
            .collect();
        prop_assert!(r_squared(&near, &labels) >= r_squared(&far, &labels) - 1e-6);
    }
}
