//! Model-level kernel-backend tolerance suite.
//!
//! Drives every zoo architecture end-to-end under each supported vector
//! backend and checks the `crate::simd` numeric contract at the predictor
//! level:
//!
//! - tape forward and compiled-plan forward under a vector backend stay
//!   within the documented max-norm bound (≤ `1e-5` of the scalar output's
//!   scale) of the scalar reference;
//! - plan-vs-tape stays **bitwise** within each backend (the
//!   within-backend contracts are backend-uniform);
//! - the predictor-level acceptance: the 8-class argmax congestion level
//!   map is unchanged between scalar and vector backends.
//!
//! Everything runs in one `#[test]` because the backend switch
//! (`simd::force`) is process-global; scalar bitwise stability against the
//! committed goldens is covered separately by `golden_regression.rs`,
//! which pins the scalar backend.

use std::collections::HashMap;

use mfaplace_autograd::Graph;
use mfaplace_infer::{Plan, PlanExecutor, PlanOptions};
use mfaplace_models::{AnyModel, Arch, ArchSpec, CongestionModel};
use mfaplace_rt::rng::{SeedableRng, StdRng};
use mfaplace_tensor::simd::{self, Backend};
use mfaplace_tensor::Tensor;

const ARCHS: [Arch; 4] = [Arch::Ours, Arch::UNet, Arch::Pgnn, Arch::Pros2];
const GRID: usize = 16;
const BATCH: usize = 2;

fn input_for(b: usize, grid: usize) -> Tensor {
    let n = b * 6 * grid * grid;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761);
            (h >> 8) as f32 / (1 << 24) as f32 * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(vec![b, 6, grid, grid], data).expect("input tensor")
}

fn build(arch: Arch) -> (Graph, AnyModel) {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut spec = ArchSpec::new(arch, GRID);
    spec.base_channels = 2;
    spec.vit_layers = 1;
    spec.vit_heads = 2;
    spec.use_mfa = true;
    spec.mfa_reduction = 4;
    let model = spec.build(&mut g, &mut rng).expect("build model");
    g.set_grad_enabled(false);
    (g, model)
}

/// One eval-mode tape forward plus a compiled-plan forward under the
/// currently active backend.
fn forward_both(g: &mut Graph, model: &mut AnyModel, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let mark = g.mark();
    let xv = g.constant(x.clone());
    let y = model.forward(g, xv, false);
    let tape = g.value(y).data().to_vec();
    let mut cache = HashMap::new();
    let plan =
        Plan::capture_cached(g, mark, xv, y, PlanOptions::default(), &mut cache).expect("plan");
    g.truncate(mark);
    let mut exec = PlanExecutor::new(plan);
    let plan_out = exec.run_batch(x.data()).to_vec();
    (tape, plan_out)
}

/// Per-cell argmax over the 8 class channels of a `[b, 8, g, g]` logit
/// volume — first maximum wins, exactly the predictor's level-map rule.
fn level_map(out: &[f32], b: usize, grid: usize) -> Vec<u8> {
    let cells = grid * grid;
    let classes = out.len() / (b * cells);
    let mut map = vec![0u8; b * cells];
    for bi in 0..b {
        for cell in 0..cells {
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for c in 0..classes {
                let v = out[(bi * classes + c) * cells + cell];
                if v > best_v {
                    best_v = v;
                    best = c;
                }
            }
            map[bi * cells + cell] = best as u8;
        }
    }
    map
}

fn assert_tolerance(tag: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
    let scale = want.iter().fold(0.0f32, |a, &x| a.max(x.abs())).max(1.0);
    let mut worst = 0.0f32;
    for (&g, &w) in got.iter().zip(want) {
        worst = worst.max((g - w).abs());
    }
    assert!(
        worst <= 1e-5 * scale,
        "{tag}: max-norm error {worst} exceeds 1e-5 of scale {scale}"
    );
}

#[test]
fn vector_backends_track_scalar_across_the_zoo() {
    let vector: Vec<Backend> = simd::supported()
        .into_iter()
        .filter(|&b| b != Backend::Scalar)
        .collect();
    if vector.is_empty() {
        eprintln!("no vector backend on this host; scalar-only run is trivially green");
        return;
    }
    let x = input_for(BATCH, GRID);
    for arch in ARCHS {
        let (mut g, mut model) = build(arch);
        simd::force(Some(Backend::Scalar)).unwrap();
        let (scalar_tape, scalar_plan) = forward_both(&mut g, &mut model, &x);
        // Scalar plan-vs-tape bitwise (pre-existing contract, re-asserted
        // here so a dispatch regression in either path is caught locally).
        for (t, p) in scalar_tape.iter().zip(&scalar_plan) {
            assert_eq!(t.to_bits(), p.to_bits(), "{arch:?}: scalar plan != tape");
        }
        let scalar_map = level_map(&scalar_tape, BATCH, GRID);
        for &bk in &vector {
            simd::force(Some(bk)).unwrap();
            let (vec_tape, vec_plan) = forward_both(&mut g, &mut model, &x);
            for (t, p) in vec_tape.iter().zip(&vec_plan) {
                assert_eq!(
                    t.to_bits(),
                    p.to_bits(),
                    "{arch:?}: {bk:?} plan != tape (within-backend contract)"
                );
            }
            assert_tolerance(&format!("{arch:?} {bk:?} tape"), &vec_tape, &scalar_tape);
            assert_tolerance(&format!("{arch:?} {bk:?} plan"), &vec_plan, &scalar_plan);
            assert_eq!(
                level_map(&vec_tape, BATCH, GRID),
                scalar_map,
                "{arch:?}: {bk:?} changed the argmax congestion level map"
            );
        }
        simd::force(None).unwrap();
    }
}
