//! Determinism matrix for the data-parallel trainer.
//!
//! The contract (see `crates/core/src/train.rs` module docs): the worker
//! count `K` only changes scheduling, never numerics — minibatches shard at
//! fixed one-sample granularity and combine through a fixed-order pairwise
//! tree reduction — so training is **bitwise identical** for any `K`. And a
//! run killed mid-training resumes from its checkpoint to bitwise the same
//! final state as an uninterrupted run.

use std::path::PathBuf;

use mfaplace_autograd::Graph;
use mfaplace_core::dataset::{Dataset, Sample};
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_models::{CongestionModel, UNetModel};
use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const GRID: usize = 16;
const SAMPLES: usize = 6;

/// A small random dataset (no placement pipeline — this file tests the
/// trainer, not the data).
fn synth_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..SAMPLES)
        .map(|_| Sample {
            features: Tensor::randn(vec![6, GRID, GRID], 1.0, &mut rng),
            labels: (0..GRID * GRID)
                .map(|_| rng.gen_range(0..8u32) as u8)
                .collect(),
        })
        .collect();
    Dataset {
        samples,
        grid: GRID,
    }
}

/// Same-seeded model so every run starts from identical weights.
fn fresh_model() -> (Graph, UNetModel) {
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(42);
    let model = UNetModel::new(&mut g, 2, &mut rng);
    (g, model)
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 2,
        lr: 1e-3,
        class_weighting: true,
        cosine_schedule: true,
        seed: 9,
        ..TrainConfig::default()
    }
}

/// Runs `fit` on a fresh same-seeded model and returns the final state as
/// bit patterns (parameters, then batch-norm running stats).
fn run(cfg: TrainConfig, ds: &Dataset) -> (Vec<u32>, Vec<f32>, usize) {
    let (g, model) = fresh_model();
    let mut trainer = Trainer::new(g, model, cfg);
    let report = trainer.fit(ds);
    let (g, mut model) = trainer.into_parts();
    let mut bits = Vec::new();
    for p in model.params() {
        bits.extend(g.value(p).data().iter().map(|v| v.to_bits()));
    }
    for bn in model.batch_norms() {
        bits.extend(bn.running_mean().iter().map(|v| v.to_bits()));
        bits.extend(bn.running_var().iter().map(|v| v.to_bits()));
    }
    (bits, report.epoch_losses, report.steps)
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mfaplace_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn worker_count_is_bitwise_invariant() {
    let ds = synth_dataset(3);
    let baseline = run(
        TrainConfig {
            workers: Some(1),
            ..config()
        },
        &ds,
    );
    for k in [2usize, 4] {
        let got = run(
            TrainConfig {
                workers: Some(k),
                ..config()
            },
            &ds,
        );
        assert_eq!(
            baseline.0, got.0,
            "K={k} parameters/BN stats differ from K=1"
        );
        assert_eq!(
            baseline.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "K={k} epoch losses differ from K=1"
        );
        assert_eq!(baseline.2, got.2, "K={k} step count differs");
    }
}

#[test]
fn env_var_selects_workers() {
    // Explicit config wins over everything.
    assert_eq!(
        TrainConfig {
            workers: Some(5),
            ..config()
        }
        .effective_workers(),
        5
    );
    // Env var fills in when the config leaves it open. (Other tests in
    // this binary pass `workers: Some(..)` so the temporary global is
    // safe.)
    std::env::set_var("MFAPLACE_TRAIN_WORKERS", "3");
    assert_eq!(config().effective_workers(), 3);
    std::env::remove_var("MFAPLACE_TRAIN_WORKERS");
    assert!(config().effective_workers() >= 1);
}

#[test]
fn resume_after_kill_matches_uninterrupted_exactly() {
    let ds = synth_dataset(7);
    // 6 samples / batch 2 = 3 steps per epoch; 2 epochs = 6 total steps.
    // Kill at step 4 — mid second epoch — the hardest resume point (needs
    // the epoch-start RNG state and the partial epoch-loss sum).
    for (kill_at, workers) in [(4usize, 1usize), (2, 2)] {
        let ckpt = tmp_path(&format!("resume_{kill_at}_{workers}.mfaw"));
        let _ = std::fs::remove_file(&ckpt);

        let uninterrupted = run(
            TrainConfig {
                workers: Some(workers),
                ..config()
            },
            &ds,
        );

        // Killed run: stops (and checkpoints) after `kill_at` steps.
        let killed = run(
            TrainConfig {
                workers: Some(workers),
                checkpoint: Some(ckpt.clone()),
                stop_after_steps: Some(kill_at),
                ..config()
            },
            &ds,
        );
        assert_eq!(killed.2, kill_at, "killed run stopped at wrong step");
        assert!(ckpt.exists(), "kill must leave a checkpoint behind");
        assert!(
            !ckpt.with_extension("tmp").exists(),
            "atomic save must not leave a .tmp sibling"
        );

        // Resumed run: picks up from the checkpoint and finishes.
        let resumed = {
            let (g, model) = fresh_model();
            let mut trainer = Trainer::new(
                g,
                model,
                TrainConfig {
                    workers: Some(workers),
                    checkpoint: Some(ckpt.clone()),
                    resume: true,
                    ..config()
                },
            );
            let report = trainer.fit(&ds);
            assert_eq!(report.resumed_at_step, Some(kill_at));
            let (g, mut model) = trainer.into_parts();
            let mut bits = Vec::new();
            for p in model.params() {
                bits.extend(g.value(p).data().iter().map(|v| v.to_bits()));
            }
            for bn in model.batch_norms() {
                bits.extend(bn.running_mean().iter().map(|v| v.to_bits()));
                bits.extend(bn.running_var().iter().map(|v| v.to_bits()));
            }
            (bits, report.epoch_losses, report.steps)
        };

        assert_eq!(
            uninterrupted.0, resumed.0,
            "kill@{kill_at} K={workers}: resumed weights differ from uninterrupted"
        );
        assert_eq!(
            uninterrupted
                .1
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            resumed.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "kill@{kill_at} K={workers}: epoch losses differ"
        );
        assert_eq!(uninterrupted.2, resumed.2, "total steps differ");
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn resume_with_missing_checkpoint_starts_fresh() {
    let ds = synth_dataset(11);
    let ckpt = tmp_path("never_written.mfaw");
    let _ = std::fs::remove_file(&ckpt);
    let plain = run(
        TrainConfig {
            workers: Some(1),
            epochs: 1,
            ..config()
        },
        &ds,
    );
    // resume=true with no file on disk must behave like a fresh run (and
    // then write the completion checkpoint).
    let fresh = run(
        TrainConfig {
            workers: Some(1),
            epochs: 1,
            checkpoint: Some(ckpt.clone()),
            resume: true,
            ..config()
        },
        &ds,
    );
    assert_eq!(plain.0, fresh.0);
    assert!(ckpt.exists(), "completed run should save its checkpoint");
    let _ = std::fs::remove_file(&ckpt);
}
