//! Golden-regression tests: fixed-seed training runs on a tiny synthetic
//! dataset must reproduce committed final-loss and metric values **exactly**
//! (bit patterns, not tolerances) for Ours, U-Net, and PGNN.
//!
//! Because the whole stack is deterministic — same-seeded init, bitwise
//! thread-count-invariant kernels, fixed-order gradient reduction — any bit
//! drift here means a numerics change, intended or not. To re-bless after
//! an intended change:
//!
//! ```text
//! MFAPLACE_BLESS=1 cargo test -p mfaplace-core --test golden_regression
//! ```
//!
//! and commit the regenerated files under `tests/golden/` with a note on
//! why the numbers moved.

use std::path::PathBuf;

use mfaplace_autograd::Graph;
use mfaplace_core::dataset::{Dataset, Sample};
use mfaplace_core::train::{TrainConfig, Trainer};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};
use mfaplace_tensor::Tensor;

const GRID: usize = 16;

fn synth_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(13);
    let samples = (0..4)
        .map(|_| Sample {
            features: Tensor::randn(vec![6, GRID, GRID], 1.0, &mut rng),
            labels: (0..GRID * GRID)
                .map(|_| rng.gen_range(0..8u32) as u8)
                .collect(),
        })
        .collect();
    Dataset {
        samples,
        grid: GRID,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.golden"))
}

/// Trains the architecture with a fixed seed and renders the golden
/// content: exact bit patterns plus approximate decimals for review.
fn run_case(arch: Arch, name: &str) -> String {
    // Golden files are defined against the scalar reference kernels; pin
    // them so the suite passes regardless of MFAPLACE_KERNELS or the host
    // ISA. Vector-backend behaviour is covered by the tolerance suite in
    // `kernel_tolerance.rs`.
    mfaplace_tensor::simd::force(Some(mfaplace_tensor::simd::Backend::Scalar)).unwrap();
    let ds = synth_dataset();
    let mut g = Graph::new();
    let mut rng = StdRng::seed_from_u64(77);
    let mut spec = ArchSpec::new(arch, GRID);
    spec.base_channels = 2;
    spec.vit_layers = 1;
    spec.vit_heads = 2;
    let model = spec.build(&mut g, &mut rng).unwrap();
    let mut trainer = Trainer::new(
        g,
        model,
        TrainConfig {
            epochs: 2,
            batch_size: 2,
            workers: Some(2), // any K is bitwise identical (test-enforced)
            ..TrainConfig::default()
        },
    );
    let report = trainer.fit(&ds);
    let loss = *report.epoch_losses.last().unwrap();
    let m = trainer.evaluate(&ds);
    format!(
        "# {name}: fixed-seed golden (dataset seed 13, init seed 77, 2 epochs)\n\
         loss_bits={:08x} # {}\n\
         acc_bits={:016x} # {}\n\
         r2_bits={:016x} # {}\n\
         nrms_bits={:016x} # {}\n",
        loss.to_bits(),
        loss,
        m.acc.to_bits(),
        m.acc,
        m.r2.to_bits(),
        m.r2,
        m.nrms.to_bits(),
        m.nrms,
    )
}

fn check(arch: Arch, name: &str) {
    let got = run_case(arch, name);
    let path = golden_path(name);
    if std::env::var_os("MFAPLACE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MFAPLACE_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        want,
        got,
        "{name} drifted from its golden file {}; if the numerics change is \
         intended, re-bless with MFAPLACE_BLESS=1",
        path.display()
    );
}

#[test]
fn golden_ours() {
    check(Arch::Ours, "ours");
}

#[test]
fn golden_unet() {
    check(Arch::UNet, "unet");
}

#[test]
fn golden_pgnn() {
    check(Arch::Pgnn, "pgnn");
}
