//! Integration tests for the shared compiled-plan cache: content-hash
//! keyed sharing across predictors, batch-size bucketing (bitwise equal
//! to the tape), and byte-bounded LRU eviction measured with real plans.

use std::sync::Arc;

use mfaplace_core::loader::{
    content_hash, init_checkpoint, load_predictor_with_cache, LoadOptions,
};
use mfaplace_core::predictor::{Engine, ModelPredictor};
use mfaplace_core::{PlanCache, PlanKey, Precision, QuantOptions};
use mfaplace_models::{Arch, ArchSpec, CongestionModel};
use mfaplace_tensor::Tensor;

const GRID: usize = 16;

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("mfaplace_plan_cache_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn checkpoint(name: &str, seed: u64) -> String {
    let path = temp_path(name);
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    init_checkpoint(&spec, seed, &path).unwrap();
    path
}

fn input(seed: f32) -> Tensor {
    Tensor::from_fn(vec![6, GRID, GRID], |i| ((i as f32) * 0.011 + seed).sin())
}

fn predict_one(predictor: &mut ModelPredictor<impl CongestionModel>, x: &Tensor) -> Tensor {
    predictor
        .predict_batch_tensors(std::slice::from_ref(x))
        .pop()
        .unwrap()
}

#[test]
fn byte_identical_checkpoints_share_one_plan_set() {
    let ckpt = checkpoint("share_a.mfaw", 41);
    let cache = Arc::new(PlanCache::new(256 << 20));

    let (_, mut a) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();
    let (_, mut b) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();

    let x = input(0.1);
    let out_a = predict_one(&mut a, &x);
    let out_b = predict_one(&mut b, &x);
    assert_eq!(out_a.data(), out_b.data(), "shared plans, shared answers");

    // One capture (a's miss), then b resolves the same key from the cache.
    let stats = cache.stats();
    assert_eq!(stats.entries, 1, "{stats:?}");
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert!(stats.hits >= 1, "{stats:?}");
    assert!(stats.bytes > 0, "{stats:?}");

    // A byte-identical copy at a different path has the same content hash
    // and therefore joins the same plan set.
    let copy = temp_path("share_a_copy.mfaw");
    std::fs::copy(&ckpt, &copy).unwrap();
    assert_eq!(content_hash(&ckpt).unwrap(), content_hash(&copy).unwrap());
    let (_, mut c) = load_predictor_with_cache(&copy, LoadOptions::default(), &cache).unwrap();
    let out_c = predict_one(&mut c, &x);
    assert_eq!(out_c.data(), out_a.data());
    assert_eq!(cache.stats().entries, 1, "copy must not add an entry");

    // Different weights (a different seed) are a different plan source.
    let other = checkpoint("share_other.mfaw", 42);
    assert_ne!(content_hash(&ckpt).unwrap(), content_hash(&other).unwrap());
    let (_, mut d) = load_predictor_with_cache(&other, LoadOptions::default(), &cache).unwrap();
    let out_d = predict_one(&mut d, &x);
    assert_ne!(out_d.data(), out_a.data());
    assert_eq!(cache.stats().entries, 2, "{:?}", cache.stats());
}

#[test]
fn batch_bucketing_is_bitwise_equal_to_the_tape() {
    let ckpt = checkpoint("bucket.mfaw", 43);
    let cache = Arc::new(PlanCache::new(256 << 20));

    let (_, mut plan_side) =
        load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();
    plan_side.set_engine(Engine::Plan);
    let (_, mut tape_side) =
        load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();
    tape_side.set_engine(Engine::Tape);

    // An awkward batch of 3 runs as a padded batch of 4 on the plan side.
    let inputs: Vec<Tensor> = (0..3).map(|i| input(i as f32)).collect();
    let via_plan = plan_side.predict_batch_tensors(&inputs);
    let via_tape = tape_side.predict_batch_tensors(&inputs);
    assert_eq!(via_plan.len(), 3);
    for (i, (p, t)) in via_plan.iter().zip(&via_tape).enumerate() {
        assert_eq!(
            p.data(),
            t.data(),
            "sample {i}: padded plan batch differs from tape"
        );
    }

    // The cache holds the bucketed shape, not the literal batch size.
    let source = plan_side.plan_source();
    let key = |n: usize| PlanKey::f32(source, vec![n, 6, GRID, GRID], false);
    assert!(cache.contains(&key(4)), "{:?}", cache.stats());
    assert!(!cache.contains(&key(3)), "{:?}", cache.stats());
}

#[test]
fn bucketed_batch_rounds_to_one_two_four_then_eights() {
    type P = ModelPredictor<mfaplace_models::AnyModel>;
    for (n, want) in [
        (0, 1),
        (1, 1),
        (2, 2),
        (3, 4),
        (4, 4),
        (5, 8),
        (8, 8),
        (9, 16),
        (16, 16),
        (17, 24),
    ] {
        assert_eq!(P::bucketed_batch(n), want, "bucketed_batch({n})");
    }
}

#[test]
fn mixed_precision_plans_share_one_cache_under_distinct_keys() {
    let ckpt = checkpoint("mixed.mfaw", 45);
    let cache = Arc::new(PlanCache::new(256 << 20));
    let (_, mut p) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();

    // Calibrate over a few representative inputs, then serve quantized.
    let reps: Vec<Tensor> = (0..3).map(|i| input(i as f32)).collect();
    p.calibrate(&reps, QuantOptions::default()).unwrap();
    p.set_engine(Engine::Quant);

    let x = input(0.5);
    let f32_only = cache.stats().bytes;
    let out = predict_one(&mut p, &x);
    assert!(p.quant_broken().is_none(), "{:?}", p.quant_broken());
    assert!(out.data().iter().all(|&v| (0.0..=7.0).contains(&v)));

    // Same content hash, two flavours, two entries.
    let source = p.plan_source();
    let fkey = PlanKey::f32(source, vec![1, 6, GRID, GRID], false);
    let qkey = PlanKey::quant(source, vec![1, 6, GRID, GRID], Precision::Int8, false);
    assert!(cache.contains(&fkey), "{:?}", cache.stats());
    assert!(cache.contains(&qkey), "{:?}", cache.stats());

    // At real model sizes the quantized arena is at most half the f32
    // arena, and the cache charges the quant entry its *own* (smaller)
    // bytes — the flavours are not pooled under one charge.
    let qs = p.quant_plan_stats().expect("quant plan compiled");
    assert!(
        qs.arena_bytes * 2 <= qs.f32_arena_bytes,
        "int8 arena {} vs f32 arena {}",
        qs.arena_bytes,
        qs.f32_arena_bytes
    );
    let with_quant = cache.stats().bytes;
    assert!(with_quant > f32_only, "quant entry must be charged");
    assert!(
        with_quant - f32_only < f32_only,
        "quant entry ({}) must cost less than the f32 entry ({f32_only})",
        with_quant - f32_only
    );

    // A second predictor from a byte-identical checkpoint with the same
    // calibration resolves the existing quantized entry — no recompile.
    let misses_before = cache.stats().misses;
    let (_, mut q) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();
    q.set_calibration(p.calibration().unwrap().clone(), QuantOptions::default());
    q.set_engine(Engine::Quant);
    let out_q = predict_one(&mut q, &x);
    assert_eq!(out_q.data(), out.data(), "shared quant plan, shared answer");
    let stats = cache.stats();
    assert_eq!(stats.misses, misses_before, "{stats:?}");
}

#[test]
fn lru_eviction_tracks_recency_under_a_real_byte_budget() {
    let ckpt = checkpoint("lru.mfaw", 44);

    // Measure what each bucketed shape actually costs in a roomy cache.
    let probe = Arc::new(PlanCache::new(1 << 30));
    let (_, mut p) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &probe).unwrap();
    let inputs: Vec<Tensor> = (0..4).map(|i| input(i as f32)).collect();
    p.predict_batch_tensors(&inputs[..1]);
    let b1 = probe.stats().bytes;
    p.predict_batch_tensors(&inputs[..2]);
    let b2 = probe.stats().bytes - b1;
    p.predict_batch_tensors(&inputs[..4]);
    let b4 = probe.stats().bytes - b1 - b2;
    assert!(b1 > 0 && b2 > b1 && b4 > b2, "b1={b1} b2={b2} b4={b4}");

    // A budget that fits the batch-1 and batch-4 plans but not all three.
    let cache = Arc::new(PlanCache::new(b1 + b4));
    let (_, mut q) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &cache).unwrap();
    let source = q.plan_source();
    let key = |n: usize| PlanKey::f32(source, vec![n, 6, GRID, GRID], false);

    q.predict_batch_tensors(&inputs[..1]); // capture [1,..]
    q.predict_batch_tensors(&inputs[..2]); // capture [2,..]
    q.predict_batch_tensors(&inputs[..1]); // touch [1,..] — [2,..] is now LRU
    q.predict_batch_tensors(&inputs[..4]); // capture [4,..] — evicts [2,..]

    let stats = cache.stats();
    assert!(cache.contains(&key(1)), "{stats:?}");
    assert!(cache.contains(&key(4)), "{stats:?}");
    assert!(
        !cache.contains(&key(2)),
        "recency says [2,..] goes: {stats:?}"
    );
    assert_eq!(stats.evictions, 1, "{stats:?}");
    assert!(stats.bytes <= stats.max_bytes, "{stats:?}");

    // The evicted shape recompiles on demand and still predicts correctly.
    let again = q.predict_batch_tensors(&inputs[..2]);
    let mut reference = {
        let (_, mut r) = load_predictor_with_cache(&ckpt, LoadOptions::default(), &probe).unwrap();
        r.set_engine(Engine::Tape);
        r.predict_batch_tensors(&inputs[..2])
    };
    for (g, e) in again.iter().zip(reference.drain(..)) {
        assert_eq!(g.data(), e.data());
    }
}
