//! Runtime substrate for the `mfaplace` workspace: deterministic random
//! numbers, a scoped thread pool, and lightweight instrumentation — with
//! **zero external dependencies**.
//!
//! The workspace builds in fully offline environments, so everything the
//! crates used to pull from crates.io (`rand`, `proptest`, `criterion`) is
//! provided here from `std` alone:
//!
//! - [`rng`] — a seedable xoshiro256\*\*/SplitMix64 generator exposing the
//!   small sampling surface the workspace actually uses (`gen_range`,
//!   uniform/normal `f32` sampling, `seed_from_u64`, stream splitting for
//!   per-worker reproducibility).
//! - [`pool`] — a scoped `std::thread` worker pool with
//!   `parallel_for`/chunked dispatch sized from
//!   `std::thread::available_parallelism`, a `MFAPLACE_THREADS` env
//!   override, and a serial fallback. Kernels dispatched through it are
//!   **bitwise identical** to their serial versions: work is split into
//!   disjoint output chunks and the per-element reduction order is never
//!   changed.
//! - [`timer`] — RAII scope timers and counters feeding a per-run report
//!   (text or JSON).
//! - [`check`] — a shrink-free randomized-test harness (fixed seeds,
//!   per-case logging) that replaces the former `proptest` suites.
//! - [`bench`] — a warmup + median-of-N microbenchmark harness on
//!   `std::time::Instant` that replaces the former `criterion` benches.
//!
//! # Example
//!
//! ```
//! use mfaplace_rt::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = rng.gen_range(0.0f32..1.0);
//! assert!((0.0..1.0).contains(&x));
//!
//! // Identical seeds give identical sequences.
//! let mut a = StdRng::seed_from_u64(1);
//! let mut b = StdRng::seed_from_u64(1);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

pub mod bench;
pub mod check;
pub mod pool;
pub mod rng;
pub mod timer;
