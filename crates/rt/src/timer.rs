//! RAII scope timers and counters feeding a per-run report.
//!
//! Drop a [`ScopeTimer`] into any block to record its wall time under a
//! label; call [`report`] (text) or [`report_json`] at the end of a run to
//! see where the time went. Counters ([`count`]) track event totals
//! (kernel invocations, cache hits, …) alongside the timings.
//!
//! Recording is on by default and costs one `Instant::now` pair plus a
//! mutex lock per scope — intended for coarse scopes (a training epoch, a
//! routing pass), not inner loops. Set `MFAPLACE_TIMERS=0` to disable
//! recording entirely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Aggregated timing statistics of one scope label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Completed invocations recorded.
    pub calls: u64,
    /// Summed wall time across all invocations.
    pub total: Duration,
    /// Longest single invocation.
    pub max: Duration,
}

type Stat = TimerStat;

struct Registry {
    timers: Mutex<BTreeMap<String, Stat>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        timers: Mutex::new(BTreeMap::new()),
        counters: Mutex::new(BTreeMap::new()),
    })
}

fn enabled() -> bool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED
        .get_or_init(|| {
            let on = std::env::var("MFAPLACE_TIMERS").map_or(true, |v| v.trim() != "0");
            AtomicBool::new(on)
        })
        .load(Ordering::Relaxed)
}

/// Records one completed invocation of `name` taking `dur`.
pub fn record(name: &str, dur: Duration) {
    if !enabled() {
        return;
    }
    let mut timers = registry().timers.lock().expect("timer registry poisoned");
    let stat = timers.entry(name.to_owned()).or_default();
    stat.calls += 1;
    stat.total += dur;
    stat.max = stat.max.max(dur);
}

/// Adds `n` to the counter `name`.
pub fn count(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut counters = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    *counters.entry(name.to_owned()).or_insert(0) += n;
}

/// Clears all recorded timings and counters.
pub fn reset() {
    registry()
        .timers
        .lock()
        .expect("timer registry poisoned")
        .clear();
    registry()
        .counters
        .lock()
        .expect("counter registry poisoned")
        .clear();
}

/// RAII timer: records the elapsed time under its label on drop.
///
/// ```
/// {
///     let _t = mfaplace_rt::timer::ScopeTimer::new("demo/scope");
///     // … timed work …
/// }
/// assert!(mfaplace_rt::timer::report().contains("demo/scope"));
/// ```
pub struct ScopeTimer {
    name: String,
    start: Instant,
}

impl ScopeTimer {
    /// Starts a timer that reports under `name` when dropped.
    pub fn new(name: &str) -> Self {
        ScopeTimer {
            name: name.to_owned(),
            start: Instant::now(),
        }
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        record(&self.name, self.start.elapsed());
    }
}

/// A point-in-time copy of every recorded timer and counter.
///
/// This is the machine-readable export surface: callers that render their
/// own reports (e.g. the serve subsystem's `/metrics` endpoint) take a
/// snapshot instead of parsing [`report`]'s text table.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Timer stats keyed by scope label, in label order.
    pub timers: BTreeMap<String, TimerStat>,
    /// Counter values keyed by counter name, in name order.
    pub counters: BTreeMap<String, u64>,
}

/// Returns a consistent copy of the current timer and counter registries.
pub fn snapshot() -> Snapshot {
    let timers = registry()
        .timers
        .lock()
        .expect("timer registry poisoned")
        .clone();
    let counters = registry()
        .counters
        .lock()
        .expect("counter registry poisoned")
        .clone();
    Snapshot { timers, counters }
}

/// Per-run report as an aligned text table, timers then counters.
pub fn report() -> String {
    let timers = registry().timers.lock().expect("timer registry poisoned");
    let counters = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    let mut out = String::new();
    if !timers.is_empty() {
        out.push_str(&format!(
            "{:<40} {:>10} {:>14} {:>14} {:>14}\n",
            "scope", "calls", "total_ms", "mean_us", "max_us"
        ));
        for (name, s) in timers.iter() {
            let mean_us = s.total.as_micros() as f64 / s.calls.max(1) as f64;
            out.push_str(&format!(
                "{:<40} {:>10} {:>14.3} {:>14.1} {:>14}\n",
                name,
                s.calls,
                s.total.as_secs_f64() * 1e3,
                mean_us,
                s.max.as_micros()
            ));
        }
    }
    if !counters.is_empty() {
        out.push_str(&format!("{:<40} {:>10}\n", "counter", "value"));
        for (name, v) in counters.iter() {
            out.push_str(&format!("{:<40} {:>10}\n", name, v));
        }
    }
    out
}

/// Per-run report as a JSON object:
/// `{"timers": {name: {calls, total_ns, max_ns}}, "counters": {name: value}}`.
pub fn report_json() -> String {
    let timers = registry().timers.lock().expect("timer registry poisoned");
    let counters = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    let mut out = String::from("{\"timers\":{");
    for (i, (name, s)) in timers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"calls\":{},\"total_ns\":{},\"max_ns\":{}}}",
            escape(name),
            s.calls,
            s.total.as_nanos(),
            s.max.as_nanos()
        ));
    }
    out.push_str("},\"counters\":{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(name), v));
    }
    out.push_str("}}");
    out
}

/// Minimal JSON string escaping for label names.
pub(crate) fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests below mutate the process-global registry (including `reset`),
    /// so they must not interleave.
    fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn scope_timer_records_calls() {
        let _guard = registry_lock();
        reset();
        for _ in 0..3 {
            let _t = ScopeTimer::new("test/scope");
        }
        count("test/events", 5);
        count("test/events", 2);
        let text = report();
        assert!(text.contains("test/scope"), "{text}");
        assert!(text.contains("test/events"), "{text}");
        let json = report_json();
        assert!(json.contains("\"test/scope\":{\"calls\":3"), "{json}");
        assert!(json.contains("\"test/events\":7"), "{json}");
        reset();
        assert!(!report().contains("test/scope"));
    }

    #[test]
    fn snapshot_copies_registries() {
        let _guard = registry_lock();
        reset();
        record("snap/scope", Duration::from_micros(250));
        record("snap/scope", Duration::from_micros(750));
        count("snap/events", 3);
        let snap = snapshot();
        let stat = snap.timers.get("snap/scope").expect("timer present");
        assert_eq!(stat.calls, 2);
        assert_eq!(stat.total, Duration::from_micros(1000));
        assert_eq!(stat.max, Duration::from_micros(750));
        assert_eq!(snap.counters.get("snap/events"), Some(&3));
        // The snapshot is a copy: later mutation must not affect it.
        count("snap/events", 10);
        assert_eq!(snap.counters.get("snap/events"), Some(&3));
        reset();
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
