//! Deterministic pseudo-random numbers.
//!
//! The generator is xoshiro256\*\* (Blackman–Vigna) seeded through
//! SplitMix64, the standard pairing: SplitMix64 turns any 64-bit seed into
//! a well-mixed 256-bit state, and xoshiro256\*\* provides a fast,
//! high-quality stream with a 2^256 − 1 period and an efficient jump
//! function for independent substreams.
//!
//! Everything here is deterministic across platforms and builds: the same
//! seed always produces the same sequence, which is what the randomized
//! tests, the dataset generator and the training loop rely on.
//!
//! The API mirrors the small subset of the `rand` crate the workspace used
//! before the in-tree migration: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen_f32`], [`SliceRandom::shuffle`]. Stream
//! splitting ([`StdRng::stream`], [`StdRng::split`]) is new and gives each
//! parallel worker its own reproducible substream.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, statistically solid 64-bit generator used to expand
/// seeds into generator state and to derive substream seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's standard generator.
///
/// `StdRng` is an alias for this type so call sites read the same as they
/// did under the `rand` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default generator (alias for [`Xoshiro256StarStar`]).
pub type StdRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Advances the state and returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Jumps the state forward by 2^128 steps — equivalent to that many
    /// `next_u64` calls. Used to carve non-overlapping substreams out of a
    /// single seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_7930_8B69_1784,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }

    /// Deterministic substream `k` of `seed`: the generator seeded with
    /// `seed` jumped forward `k` times. Streams with different `k` never
    /// overlap for any realistic draw count (each jump is 2^128 steps), so
    /// per-worker generators stay reproducible regardless of scheduling.
    pub fn stream(seed: u64, k: u64) -> Self {
        let mut rng = Self::seed_from_u64(seed);
        for _ in 0..k {
            rng.jump();
        }
        rng
    }

    /// Splits off an independent child generator, advancing `self`.
    ///
    /// The child is seeded from the parent's next output through SplitMix64,
    /// so repeated splits from the same parent state yield a reproducible
    /// family of generators.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit state, for checkpointing a generator mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with
    /// [`Xoshiro256StarStar::state`]. An all-zero state is invalid for
    /// xoshiro (it is a fixed point) and is replaced by the
    /// `seed_from_u64(0)` state.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Self::seed_from_u64(0);
        }
        Xoshiro256StarStar { s }
    }
}

/// Construction from a 64-bit seed.
///
/// Kept as a trait (rather than an inherent method) so call sites written
/// against the `rand` crate — `use …::{Rng, SeedableRng}` followed by
/// `StdRng::seed_from_u64(s)` — keep compiling unchanged.
pub trait SeedableRng: Sized {
    /// Builds a generator whose state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is the one fixed point of xoshiro; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }
}

/// Sampling surface used across the workspace.
///
/// All methods are defined in terms of [`Rng::next_u64`], so any type with
/// a 64-bit output stream gets the full surface.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (high bits of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    fn gen_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Next 64-bit output (alias used where an integer seed is drawn).
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.gen_f64()) < p
    }

    /// Standard normal `f32` via the Box–Muller transform.
    ///
    /// Draws two uniforms per call and discards the second variate, keeping
    /// the generator state independent of call interleaving.
    fn normal_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        let u1 = self.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty, $gen:ident) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                self.start + rng.$gen() * (self.end - self.start)
            }
        }
    };
}

impl_float_range!(f32, gen_f32);
impl_float_range!(f64, gen_f64);

/// Uniform integer in `[0, span)` by 128-bit widening multiply
/// (Lemire reduction without the rejection step; the bias is at most
/// `span / 2^64`, immaterial for the spans used here and — unlike
/// rejection sampling — always consumes exactly one draw, which keeps
/// sequence positions predictable).
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    };
}

impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);
impl_int_range!(isize);

/// In-place random reordering and element choice for slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c test vectors.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(3i32..=9);
            assert!((3..=9).contains(&m));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal_f32()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let saved = rng.state();
        let ahead: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(saved);
        let replay: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(ahead, replay);
        assert_eq!(rng.state(), resumed.state());
    }

    #[test]
    fn from_state_rejects_all_zero_fixed_point() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), 0); // not stuck at the xoshiro fixed point
    }
}
