//! Shrink-free randomized-test harness.
//!
//! Replaces the former `proptest` suites: each test runs a fixed number of
//! cases, every case drawing its inputs from a deterministic per-case
//! generator (`StdRng::stream(base_seed, case)`), so a failure reproduces
//! exactly on every machine and every run. There is no shrinking — instead
//! the harness logs which case failed and how to re-seed a generator to
//! replay it, which for fixed-seed streams is just as actionable.
//!
//! ```
//! use mfaplace_rt::check::{run_cases, vec_f32};
//! use mfaplace_rt::rng::Rng;
//!
//! run_cases("doc_example", 8, 0xD0C, |_case, rng| {
//!     let v = vec_f32(rng, 16, -1.0, 1.0);
//!     assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
//! });
//! ```

use crate::rng::{Rng, StdRng};

/// Runs `n_cases` randomized cases of a test named `name`.
///
/// Case `i` receives a generator positioned on substream `i` of
/// `base_seed`, so cases are mutually independent and insensitive to how
/// many draws earlier cases made. If a case panics, the harness prints the
/// case index and replay instructions, then re-raises the panic so the
/// test still fails normally.
pub fn run_cases<F>(name: &str, n_cases: usize, base_seed: u64, mut f: F)
where
    F: FnMut(usize, &mut StdRng),
{
    for case in 0..n_cases {
        let mut rng = StdRng::stream(base_seed, case as u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(case, &mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "[mfaplace-rt::check] '{name}' failed at case {case}/{n_cases} \
                 (replay: StdRng::stream({base_seed:#x}, {case}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// `len` uniform `f32` samples in `[lo, hi)`.
pub fn vec_f32(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `len` uniform integer samples in `[lo, hi)`.
pub fn vec_u8(rng: &mut StdRng, len: usize, lo: u8, hi: u8) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn cases_are_deterministic_and_independent() {
        let mut first_pass: Vec<Vec<f32>> = Vec::new();
        run_cases("det", 4, 42, |case, rng| {
            // Draw a case-dependent amount to prove independence.
            let v = vec_f32(rng, 4 + case, 0.0, 1.0);
            first_pass.push(v);
        });
        let mut second_pass: Vec<Vec<f32>> = Vec::new();
        run_cases("det", 4, 42, |case, rng| {
            // Different draw pattern before the recorded draws must not
            // matter across cases (streams are independent), but within a
            // case the sequence is fixed.
            let v = vec_f32(rng, 4 + case, 0.0, 1.0);
            second_pass.push(v);
        });
        assert_eq!(first_pass, second_pass);
    }

    #[test]
    fn failing_case_panics() {
        let result = std::panic::catch_unwind(|| {
            run_cases("boom", 3, 7, |case, _rng| {
                assert!(case < 2, "case 2 fails by construction");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn replay_matches_stream() {
        let mut recorded = 0u64;
        run_cases("replay", 3, 0xBEEF, |case, rng| {
            if case == 2 {
                recorded = rng.next_u64();
            }
        });
        let mut replay = StdRng::stream(0xBEEF, 2);
        assert_eq!(replay.next_u64(), recorded);
        // And stream(seed, 0) equals plain seeding.
        let mut a = StdRng::stream(5, 0);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
