//! Scoped worker pool over `std::thread` with chunked dispatch.
//!
//! Work is dispatched through [`parallel_for`] (index ranges) or
//! [`parallel_chunks_mut`] (disjoint `&mut` chunks of an output buffer).
//! Both split work into **contiguous blocks assigned in order**, so a
//! kernel that computes each output chunk independently produces results
//! bitwise identical to its serial loop — the per-element reduction order
//! never changes, only which thread executes it. This serial-equivalence
//! guarantee is what lets the tensor kernels parallelize without
//! perturbing training reproducibility.
//!
//! Sizing: the worker count defaults to
//! `std::thread::available_parallelism()`, can be pinned globally with the
//! `MFAPLACE_THREADS` environment variable, and can be overridden
//! per-scope (e.g. in tests) with [`with_threads`]. With one worker every
//! dispatch runs serially on the calling thread — no threads are spawned.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Maximum number of worker threads a dispatch may use.
///
/// Resolution order: [`with_threads`] scope override, then the
/// `MFAPLACE_THREADS` environment variable (ignored unless it parses to a
/// positive integer), then `std::thread::available_parallelism()`.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("MFAPLACE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with [`max_threads`] pinned to `n` on the current thread.
///
/// Used by the equivalence tests to force a specific worker count
/// regardless of host core count or environment, and by callers that want
/// a guaranteed-serial region (`with_threads(1, …)`).
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Number of threads a dispatch over `n_units` units of work will use.
fn plan(n_units: usize) -> usize {
    max_threads().min(n_units).max(1)
}

/// Calls `f` on contiguous sub-ranges covering `0..n` exactly once, using
/// up to [`max_threads`] workers. `f(0..n)` is called directly when one
/// worker suffices.
///
/// The range is split into at most `max_threads()` blocks of near-equal
/// length; block 0 runs on the calling thread.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let nt = plan(n);
    if nt <= 1 {
        f(0..n);
        return;
    }
    let per = n.div_ceil(nt);
    std::thread::scope(|s| {
        let f = &f;
        for t in 1..nt {
            let lo = t * per;
            let hi = ((t + 1) * per).min(n);
            if lo >= hi {
                break;
            }
            s.spawn(move || f(lo..hi));
        }
        f(0..per.min(n));
    });
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and calls `f(chunk_index, chunk)` for each, distributing
/// chunks over up to [`max_threads`] workers in contiguous blocks.
///
/// Each chunk is visited exactly once with a unique `&mut` borrow, so
/// kernels that write disjoint output chunks need no synchronization and
/// produce bitwise-identical results at any worker count.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "parallel_chunks_mut: chunk_len must be > 0");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let nt = plan(n_chunks);
    if nt <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Bucket chunks into `nt` contiguous blocks, preserving chunk indices.
    let per = n_chunks.div_ceil(nt);
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(nt);
    let mut current: Vec<(usize, &mut [T])> = Vec::with_capacity(per);
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        current.push((i, chunk));
        if current.len() == per {
            buckets.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        buckets.push(current);
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut iter = buckets.into_iter();
        let first = iter.next();
        for bucket in iter {
            s.spawn(move || {
                for (i, chunk) in bucket {
                    f(i, chunk);
                }
            });
        }
        if let Some(bucket) = first {
            for (i, chunk) in bucket {
                f(i, chunk);
            }
        }
    });
}

/// `(chunk index, chunk of first buffer, chunk of second buffer)` unit of
/// work handed to [`parallel_chunks2_mut`] workers.
type PairedChunk<'s, T, U> = (usize, &'s mut [T], &'s mut [U]);

/// Lock-step variant of [`parallel_chunks_mut`] for kernels with two
/// output buffers (e.g. max-pool values + argmax indices): chunk `i` of
/// `a` (length `chunk_a`) and chunk `i` of `b` (length `chunk_b`) are
/// passed to `f` together. Both buffers must split into the same number
/// of chunks.
pub fn parallel_chunks2_mut<T, U, F>(a: &mut [T], b: &mut [U], chunk_a: usize, chunk_b: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(
        chunk_a > 0 && chunk_b > 0,
        "parallel_chunks2_mut: chunk lengths must be > 0"
    );
    let n_chunks = a.len().div_ceil(chunk_a);
    assert_eq!(
        n_chunks,
        b.len().div_ceil(chunk_b),
        "parallel_chunks2_mut: buffers disagree on chunk count"
    );
    if n_chunks == 0 {
        return;
    }
    let nt = plan(n_chunks);
    if nt <= 1 {
        for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
            f(i, ca, cb);
        }
        return;
    }
    let per = n_chunks.div_ceil(nt);
    let mut buckets: Vec<Vec<PairedChunk<T, U>>> = Vec::with_capacity(nt);
    let mut current: Vec<PairedChunk<T, U>> = Vec::with_capacity(per);
    for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
        current.push((i, ca, cb));
        if current.len() == per {
            buckets.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        buckets.push(current);
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut iter = buckets.into_iter();
        let first = iter.next();
        for bucket in iter {
            s.spawn(move || {
                for (i, ca, cb) in bucket {
                    f(i, ca, cb);
                }
            });
        }
        if let Some(bucket) = first {
            for (i, ca, cb) in bucket {
                f(i, ca, cb);
            }
        }
    });
}

/// Handle to a persistent team of worker threads created by
/// [`worker_team`]: dispatch jobs with [`Team::run`] from the body closure.
///
/// Unlike [`parallel_for`], which spawns fresh threads per dispatch, a team
/// keeps its workers (and their per-worker state, e.g. a replicated model
/// graph) alive across many dispatches — the shape a training loop needs,
/// where thousands of steps reuse the same worker-local replicas.
pub struct Team<J, R> {
    txs: Vec<std::sync::mpsc::Sender<(usize, J)>>,
    rx: std::sync::mpsc::Receiver<(usize, R)>,
}

impl<J, R> Team<J, R> {
    /// Number of workers in the team.
    pub fn size(&self) -> usize {
        self.txs.len()
    }

    /// Dispatches `jobs` round-robin over the workers and returns the
    /// results **in job order**, regardless of completion order — results
    /// are index-tagged in flight and reordered here, so any reduction the
    /// caller performs over the returned `Vec` is independent of worker
    /// count and scheduling.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died (panicked) mid-run.
    pub fn run(&self, jobs: Vec<J>) -> Vec<R> {
        let n = jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            self.txs[i % self.txs.len()]
                .send((i, job))
                .expect("worker_team: worker thread is gone");
        }
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = self
                .rx
                .recv()
                .expect("worker_team: worker thread died before finishing");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("worker_team: duplicate/missing result index"))
            .collect()
    }
}

/// Runs `body` with a persistent team of `n` worker threads.
///
/// Each worker thread first builds its local state with `state(worker_idx)`
/// (on the worker thread, so the state never crosses threads), then serves
/// jobs via `work(&mut state, job)` until the team is dropped at the end of
/// `body`. Jobs are index-tagged and results reordered by [`Team::run`], so
/// outputs are always in job order.
///
/// With `n == 1` the single worker still runs on its own thread; callers
/// that want a strictly serial path should not use a team at all.
pub fn worker_team<J, R, S, Out>(
    n: usize,
    state: impl Fn(usize) -> S + Sync,
    work: impl Fn(&mut S, J) -> R + Sync,
    body: impl FnOnce(&Team<J, R>) -> Out,
) -> Out
where
    J: Send,
    R: Send,
{
    let n = n.max(1);
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, R)>();
        let mut txs = Vec::with_capacity(n);
        for w in 0..n {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, J)>();
            txs.push(tx);
            let res_tx = res_tx.clone();
            let state = &state;
            let work = &work;
            scope.spawn(move || {
                let mut s = state(w);
                while let Ok((idx, job)) = rx.recv() {
                    let r = work(&mut s, job);
                    if res_tx.send((idx, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let team = Team { txs, rx: res_rx };
        let out = body(&team);
        drop(team); // close job channels so the workers exit and join
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            parallel_for(1000, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_visit_each_chunk_once_with_correct_index() {
        let mut data = vec![0u32; 103];
        with_threads(8, || {
            parallel_chunks_mut(&mut data, 10, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + i as u32;
                }
            });
        });
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (j / 10) as u32, "element {j}");
        }
    }

    #[test]
    fn chunks2_visit_pairs_in_lockstep() {
        let mut vals = vec![0u32; 60];
        let mut tags = vec![0u8; 30];
        with_threads(4, || {
            parallel_chunks2_mut(&mut vals, &mut tags, 10, 5, |i, va, tb| {
                for v in va.iter_mut() {
                    *v = i as u32;
                }
                for t in tb.iter_mut() {
                    *t = i as u8;
                }
            });
        });
        for (j, v) in vals.iter().enumerate() {
            assert_eq!(*v, (j / 10) as u32);
        }
        for (j, t) in tags.iter().enumerate() {
            assert_eq!(*t, (j / 5) as u8);
        }
    }

    #[test]
    fn serial_override_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        with_threads(1, || {
            parallel_for(64, |_| {
                assert_eq!(std::thread::current().id(), caller);
            });
        });
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(2, || assert_eq!(max_threads(), 2));
            assert_eq!(max_threads(), 3);
        });
    }

    #[test]
    fn empty_dispatches_are_noops() {
        parallel_for(0, |_| panic!("must not be called"));
        let mut empty: [u8; 0] = [];
        parallel_chunks_mut(&mut empty, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn worker_team_returns_results_in_job_order() {
        for n in [1, 2, 4, 7] {
            let sums = worker_team(
                n,
                |w| w, // state = worker index
                |_w, job: usize| job * 10,
                |team| {
                    assert_eq!(team.size(), n);
                    // Two dispatches over the same team; 13 jobs each.
                    let a = team.run((0..13).collect());
                    let b = team.run((0..13).collect());
                    assert_eq!(a, b);
                    a
                },
            );
            assert_eq!(sums, (0..13).map(|j| j * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_team_state_persists_across_dispatches() {
        // Each worker counts the jobs it has served; with round-robin
        // dispatch of 8 jobs over 2 workers twice, each serves 8 total.
        let counts = worker_team(
            2,
            |_w| 0usize,
            |served, _job: ()| {
                *served += 1;
                *served
            },
            |team| {
                team.run(vec![(); 8]);
                team.run(vec![(); 8])
            },
        );
        // Job i of the second dispatch goes to worker i % 2, which already
        // served 4 jobs in the first dispatch.
        assert_eq!(counts, vec![5, 5, 6, 6, 7, 7, 8, 8]);
    }

    #[test]
    fn worker_team_empty_run_is_noop() {
        let out: Vec<u8> = worker_team(3, |_| (), |_, _j: ()| 0u8, |team| team.run(Vec::new()));
        assert!(out.is_empty());
    }
}
