//! Self-contained microbenchmark harness on `std::time::Instant`.
//!
//! Replaces the former `criterion` benches: each benchmark runs a warmup
//! phase, then `samples` timed samples (each sample auto-batched so it
//! lasts long enough for the clock to resolve), and reports the median,
//! mean and min/max per-iteration time. Results accumulate in a
//! [`Suite`], print as an aligned table, and serialize to a small stable
//! JSON schema next to the other artifacts under `results/`.
//!
//! ```
//! let mut suite = mfaplace_rt::bench::Suite::new("doc");
//! suite.run("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
//! assert_eq!(suite.results().len(), 1);
//! ```

use std::time::Instant;

use crate::timer::escape;

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label, e.g. `"inference/unet"`.
    pub name: String,
    /// Timed samples collected.
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time.
    pub max_ns: f64,
    /// Peak resident set size (`VmHWM`) observed over this benchmark's
    /// samples, in bytes. `None` when the platform does not expose
    /// `/proc/self/status` / `/proc/self/clear_refs`.
    pub peak_rss_bytes: Option<u64>,
}

/// Resets the kernel's peak-RSS watermark for this process (writes `"5"` to
/// `/proc/self/clear_refs`). Returns `false` when unsupported.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Current peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` when unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    warmup: usize,
    samples: usize,
    result: Option<(u64, Vec<f64>)>,
}

impl Bencher {
    /// Measures `f`, auto-batching iterations per sample so that a sample
    /// lasts at least ~1 ms.
    pub fn iter<T>(&mut self, f: impl FnMut() -> T) {
        // Warmup also calibrates the batch size.
        let mut one = f;
        let calib = Instant::now();
        for _ in 0..self.warmup.max(1) {
            std::hint::black_box(one());
        }
        let per_call = calib.elapsed().as_nanos() as f64 / self.warmup.max(1) as f64;
        const TARGET_SAMPLE_NS: f64 = 1_000_000.0;
        let iters = if per_call >= TARGET_SAMPLE_NS {
            1
        } else {
            (TARGET_SAMPLE_NS / per_call.max(1.0)).ceil() as u64
        };
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(one());
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some((iters, times));
    }
}

/// A named collection of benchmark results.
pub struct Suite {
    name: String,
    warmup: usize,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates a suite with the default warmup (3 calls) and sample count (10).
    pub fn new(name: &str) -> Self {
        Suite {
            name: name.to_owned(),
            warmup: 3,
            samples: 10,
            results: Vec::new(),
        }
    }

    /// Overrides warmup calls and timed sample count.
    pub fn with_config(mut self, warmup: usize, samples: usize) -> Self {
        self.warmup = warmup.max(1);
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark; `f` must call [`Bencher::iter`].
    pub fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) -> &BenchResult {
        let mut bencher = Bencher {
            warmup: self.warmup,
            samples: self.samples,
            result: None,
        };
        // Reset the watermark so the sampled peak is attributable to this
        // benchmark rather than whatever ran before it in the process.
        let rss_supported = reset_peak_rss();
        f(&mut bencher);
        let peak_rss = if rss_supported {
            peak_rss_bytes()
        } else {
            None
        };
        let (iters, mut times) = bencher
            .result
            .expect("benchmark closure must call Bencher::iter");
        times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        let median = if times.len() % 2 == 1 {
            times[times.len() / 2]
        } else {
            (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
        };
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let result = BenchResult {
            name: label.to_owned(),
            samples: times.len(),
            iters_per_sample: iters,
            median_ns: median,
            mean_ns: mean,
            min_ns: *times.first().expect("at least one sample"),
            max_ns: *times.last().expect("at least one sample"),
            peak_rss_bytes: peak_rss,
        };
        let rss = result.peak_rss_bytes.map_or_else(
            || "n/a".to_owned(),
            |b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)),
        );
        eprintln!(
            "bench {label:<40} median {:>12.1} ns  mean {:>12.1} ns  peak rss {rss:>10}  ({} samples x {} iters)",
            result.median_ns, result.mean_ns, result.samples, result.iters_per_sample
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Aligned text table of all results.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<40} {:>14} {:>14} {:>14} {:>14}\n",
            "benchmark", "median_ns", "mean_ns", "min_ns", "max_ns"
        );
        for r in &self.results {
            out.push_str(&format!(
                "{:<40} {:>14.1} {:>14.1} {:>14.1} {:>14.1}\n",
                r.name, r.median_ns, r.mean_ns, r.min_ns, r.max_ns
            ));
        }
        out
    }

    /// JSON document:
    /// `{"suite": name, "benchmarks": [{name, samples, iters_per_sample,
    /// median_ns, mean_ns, min_ns, max_ns, peak_rss_bytes}]}`
    /// (`peak_rss_bytes` is `null` where the platform cannot report it).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"suite\":\"{}\",\"benchmarks\":[", escape(&self.name));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"samples\":{},\"iters_per_sample\":{},\
                 \"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},                 \"peak_rss_bytes\":{}}}",
                escape(&r.name),
                r.samples,
                r.iters_per_sample,
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.peak_rss_bytes
                    .map_or_else(|| "null".to_owned(), |b| b.to_string())
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON document to `path`, creating parent directories.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_records_sane_stats() {
        let mut suite = Suite::new("unit").with_config(2, 5);
        suite.run("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            })
        });
        let r = &suite.results()[0];
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0.0);
        let json = suite.to_json();
        assert!(json.starts_with("{\"suite\":\"unit\""), "{json}");
        assert!(json.contains("\"name\":\"spin\""), "{json}");
        assert!(json.contains("\"peak_rss_bytes\":"), "{json}");
        assert!(suite.table().contains("spin"));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_sampling_works_on_linux() {
        assert!(reset_peak_rss());
        // Touch a few MiB so the watermark is visibly nonzero.
        let buf = vec![1u8; 4 << 20];
        std::hint::black_box(&buf);
        let peak = peak_rss_bytes().expect("VmHWM available on linux");
        assert!(peak > 0, "peak rss should be positive, got {peak}");
    }
}
