//! PRNG determinism guarantees: identical seeds reproduce identical
//! sequences, distinct seeds and streams diverge, and splitting is
//! reproducible. These properties are what the dataset generator, the
//! randomized tests and per-worker sampling all build on.

use mfaplace_rt::rng::{Rng, SeedableRng, SliceRandom, StdRng};

#[test]
fn same_seed_same_sequence() {
    let mut a = StdRng::seed_from_u64(0xDEAD_BEEF);
    let mut b = StdRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..10_000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(same, 0, "adjacent seeds should not share outputs");
}

#[test]
fn streams_are_deterministic_and_distinct() {
    // Re-deriving the same stream gives the same sequence…
    let mut s2a = StdRng::stream(99, 2);
    let mut s2b = StdRng::stream(99, 2);
    for _ in 0..1000 {
        assert_eq!(s2a.next_u64(), s2b.next_u64());
    }
    // …and different stream indices give unrelated sequences.
    let mut outputs = std::collections::HashSet::new();
    for k in 0..8 {
        let mut s = StdRng::stream(99, k);
        for _ in 0..256 {
            outputs.insert(s.next_u64());
        }
    }
    assert_eq!(outputs.len(), 8 * 256, "stream outputs must not collide");
}

#[test]
fn split_is_reproducible() {
    let mut parent_a = StdRng::seed_from_u64(7);
    let mut parent_b = StdRng::seed_from_u64(7);
    let mut child_a = parent_a.split();
    let mut child_b = parent_b.split();
    for _ in 0..1000 {
        assert_eq!(child_a.next_u64(), child_b.next_u64());
    }
    // Parent states stayed in lock-step too.
    assert_eq!(parent_a.next_u64(), parent_b.next_u64());
}

#[test]
fn sampling_surface_is_deterministic() {
    let draw = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let floats: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let ints: Vec<usize> = (0..32).map(|_| rng.gen_range(0usize..1000)).collect();
        let normals: Vec<f32> = (0..32).map(|_| rng.normal_f32()).collect();
        let mut perm: Vec<usize> = (0..32).collect();
        perm.shuffle(&mut rng);
        (floats, ints, normals, perm)
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43));
}

#[test]
fn jump_commutes_with_itself() {
    // stream(seed, 2) == stream(seed, 1) jumped once more.
    let mut a = StdRng::stream(5, 1);
    a.jump();
    let mut b = StdRng::stream(5, 2);
    for _ in 0..100 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
