//! Regression test for the `MFAPLACE_THREADS` environment override.
//!
//! Kept in its own integration-test binary (hence its own process) because
//! it mutates process-global environment state; the single `#[test]` keeps
//! the mutation free of intra-process races.

use mfaplace_rt::pool;

#[test]
fn env_var_controls_worker_count() {
    // Baseline: whatever the host reports, at least one worker.
    std::env::remove_var("MFAPLACE_THREADS");
    assert!(pool::max_threads() >= 1);

    // MFAPLACE_THREADS=1 forces the serial path: every dispatch runs on
    // the calling thread.
    std::env::set_var("MFAPLACE_THREADS", "1");
    assert_eq!(pool::max_threads(), 1);
    let caller = std::thread::current().id();
    pool::parallel_for(128, |_range| {
        assert_eq!(
            std::thread::current().id(),
            caller,
            "serial path must not spawn"
        );
    });
    let mut data = vec![0u32; 64];
    pool::parallel_chunks_mut(&mut data, 8, |i, chunk| {
        assert_eq!(std::thread::current().id(), caller);
        chunk.fill(i as u32);
    });
    assert!(data
        .chunks(8)
        .enumerate()
        .all(|(i, c)| c.iter().all(|&v| v == i as u32)));

    // A larger setting raises the cap; garbage and zero are ignored.
    std::env::set_var("MFAPLACE_THREADS", "6");
    assert_eq!(pool::max_threads(), 6);
    std::env::set_var("MFAPLACE_THREADS", "0");
    assert_ne!(pool::max_threads(), 0);
    std::env::set_var("MFAPLACE_THREADS", "not-a-number");
    assert!(pool::max_threads() >= 1);

    // The scope override wins over the environment.
    std::env::set_var("MFAPLACE_THREADS", "6");
    pool::with_threads(2, || assert_eq!(pool::max_threads(), 2));
    assert_eq!(pool::max_threads(), 6);

    std::env::remove_var("MFAPLACE_THREADS");
}
