//! Region-aware analytical global placement.
//!
//! A CPU-scale stand-in for DREAMPlaceFPGA's electrostatic placer that keeps
//! the same structure: iterative wirelength minimization (star or
//! bound-to-bound net model, damped fixed-point updates) interleaved with
//! order-preserving 1-D capacity spreading per resource type
//! (Kraftwerk-style cell shifting), a region tension force for
//! region-constrained instances (Sec. IV), and cascade-shape macros merged
//! into single movable clusters before placement (the cascade handling of
//! \[11\]). A stage anneals: the wirelength pull cools while spreading
//! strengthens, and it exits early once the paper's overflow targets are
//! met.

use mfaplace_fpga::arch::SiteKind;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::netlist::{InstId, InstKind};
use mfaplace_fpga::placement::Placement;
use mfaplace_rt::rng::StdRng;
use mfaplace_rt::rng::{Rng, SeedableRng};

/// Wirelength net model used by the fixed-point updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetModel {
    /// Clique-to-star: every pin pulls toward the net centroid. Cheap and
    /// robust; the default.
    #[default]
    Star,
    /// Bound-to-bound (B2B): pins connect to the net's boundary pins with
    /// distance-normalized weights — the HPWL-faithful quadratic model used
    /// by analytic placers like DREAMPlaceFPGA/SimPL.
    B2b,
}

/// Global placement parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GpConfig {
    /// Maximum spreading iterations for a stage.
    pub iterations: usize,
    /// Wirelength net model.
    pub net_model: NetModel,
    /// Star-model wirelength passes per iteration.
    pub wl_passes: usize,
    /// Density grid width (bins).
    pub bin_w: usize,
    /// Density grid height (bins).
    pub bin_h: usize,
    /// Spreading step size (bins per iteration at unit gradient).
    pub density_step: f32,
    /// Pull strength toward assigned regions.
    pub region_weight: f32,
    /// Damping of the wirelength update (0 = frozen, 1 = jump to star).
    pub wl_damping: f32,
    /// Target overflow for macro types (paper: 0.25).
    pub target_overflow_macro: f32,
    /// Target overflow for LUT/FF (paper: 0.15).
    pub target_overflow_cell: f32,
    /// Seed for the initial jitter.
    pub seed: u64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            iterations: 60,
            net_model: NetModel::Star,
            wl_passes: 3,
            bin_w: 16,
            bin_h: 16,
            density_step: 0.5,
            region_weight: 0.35,
            wl_damping: 0.55,
            target_overflow_macro: 0.25,
            target_overflow_cell: 0.15,
            seed: 1,
        }
    }
}

/// Per-type bin overflow ratios (overflowing area / total area).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Overflow {
    /// LUT overflow.
    pub lut: f32,
    /// FF overflow.
    pub ff: f32,
    /// DSP overflow.
    pub dsp: f32,
    /// BRAM overflow.
    pub bram: f32,
    /// URAM overflow.
    pub uram: f32,
}

impl Overflow {
    /// The paper's stage-switch condition: macro overflow `< 0.25` and
    /// cell overflow `< 0.15`.
    pub fn meets_targets(&self, macro_target: f32, cell_target: f32) -> bool {
        self.dsp < macro_target
            && self.bram < macro_target
            && self.uram < macro_target
            && self.lut < cell_target
            && self.ff < cell_target
    }
}

/// One movable object: a single instance or a merged cascade cluster whose
/// members sit at consecutive vertical offsets.
#[derive(Debug, Clone)]
struct Movable {
    /// Members with their vertical offsets from the movable's position.
    members: Vec<(InstId, f32)>,
    /// Resource class used for density spreading.
    kind: InstKind,
    /// Height extent (cascade length, 1 for singles).
    extent: f32,
    /// Region constraint index, if any member is region-bound.
    region: Option<usize>,
}

/// The global placer state. Create once per design, then drive stages.
#[derive(Debug)]
pub struct GlobalPlacer<'a> {
    design: &'a Design,
    movables: Vec<Movable>,
    /// Instance -> (movable index, y offset); `None` for fixed instances.
    inst_to_mov: Vec<Option<(usize, f32)>>,
    /// Inflatable area per instance (site units).
    areas: Vec<f32>,
    /// Position per movable.
    pos: Vec<(f32, f32)>,
    /// Cached fixed positions per instance (anchors).
    fixed_pos: Vec<Option<(f32, f32)>>,
}

impl<'a> GlobalPlacer<'a> {
    /// Builds the movable system: cascade members are merged into clusters;
    /// everything starts near the fabric center with seeded jitter.
    pub fn new(design: &'a Design, seed: u64) -> Self {
        let n = design.netlist.num_instances();
        let mut inst_to_mov: Vec<Option<(usize, f32)>> = vec![None; n];
        let mut movables: Vec<Movable> = Vec::new();
        let mut fixed_pos: Vec<Option<(f32, f32)>> = vec![None; n];
        for &(id, x, y) in &design.io_anchors {
            fixed_pos[id.0 as usize] = Some((x, y));
        }

        let region_of = |id: InstId| design.region_of(id);

        // Cascade clusters first.
        let mut in_cascade = vec![false; n];
        for cascade in &design.cascades {
            let mut members = Vec::with_capacity(cascade.len());
            for (k, &m) in cascade.members.iter().enumerate() {
                members.push((m, k as f32));
                in_cascade[m.0 as usize] = true;
            }
            let kind = design.netlist.instance(cascade.members[0]).kind;
            let region = cascade.members.iter().find_map(|&m| region_of(m));
            let idx = movables.len();
            for &(m, off) in &members {
                inst_to_mov[m.0 as usize] = Some((idx, off));
            }
            movables.push(Movable {
                extent: cascade.len() as f32,
                members,
                kind,
                region,
            });
        }
        // Remaining movable singles.
        for (id, inst) in design.netlist.instances() {
            if !inst.movable || in_cascade[id.0 as usize] {
                continue;
            }
            let idx = movables.len();
            inst_to_mov[id.0 as usize] = Some((idx, 0.0));
            movables.push(Movable {
                members: vec![(id, 0.0)],
                kind: inst.kind,
                extent: 1.0,
                region: region_of(id),
            });
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let (cw, ch) = (design.arch.width() * 0.5, design.arch.height() * 0.5);
        let pos: Vec<(f32, f32)> = movables
            .iter()
            .map(|m| {
                // Region-bound movables start at their region center.
                if let Some(r) = m.region {
                    let (rx, ry) = design.regions[r].rect.center();
                    (
                        rx + rng.gen_range(-1.0f32..1.0),
                        ry + rng.gen_range(-1.0f32..1.0),
                    )
                } else {
                    (
                        cw + rng.gen_range(-4.0f32..4.0),
                        ch + rng.gen_range(-4.0f32..4.0),
                    )
                }
            })
            .collect();

        let areas: Vec<f32> = design
            .netlist
            .instances()
            .map(|(_, inst)| inst.kind.base_area())
            .collect();

        GlobalPlacer {
            design,
            movables,
            inst_to_mov,
            areas,
            pos,
            fixed_pos,
        }
    }

    /// Number of movable objects (cascade clusters count once).
    pub fn num_movables(&self) -> usize {
        self.movables.len()
    }

    /// Current inflatable areas (one per instance, site units).
    pub fn areas(&self) -> &[f32] {
        &self.areas
    }

    /// Mutable access to the inflatable areas (used by inflation).
    pub fn areas_mut(&mut self) -> &mut [f32] {
        &mut self.areas
    }

    /// The current continuous placement of every instance.
    pub fn placement(&self) -> Placement {
        let n = self.design.netlist.num_instances();
        let mut p = Placement::new(n);
        for i in 0..n {
            if let Some((m, off)) = self.inst_to_mov[i] {
                let (x, y) = self.pos[m];
                p.set_pos(i, x, y + off);
            } else if let Some((x, y)) = self.fixed_pos[i] {
                p.set_pos(i, x, y);
            }
        }
        p
    }

    fn inst_pos(&self, id: InstId) -> (f32, f32) {
        let i = id.0 as usize;
        match self.inst_to_mov[i] {
            Some((m, off)) => {
                let (x, y) = self.pos[m];
                (x, y + off)
            }
            None => self.fixed_pos[i].unwrap_or((0.0, 0.0)),
        }
    }

    /// One damped wirelength pass under the configured net model.
    fn wl_pass(&mut self, damping: f32, model: NetModel) {
        let nm = self.movables.len();
        let mut acc_x = vec![0.0f32; nm];
        let mut acc_y = vec![0.0f32; nm];
        let mut acc_wx = vec![0.0f32; nm];
        let mut acc_wy = vec![0.0f32; nm];
        match model {
            NetModel::Star => {
                for (_, net) in self.design.netlist.nets() {
                    let deg = net.degree() as f32;
                    let mut cx = 0.0f32;
                    let mut cy = 0.0f32;
                    for &p in &net.pins {
                        let (x, y) = self.inst_pos(p);
                        cx += x;
                        cy += y;
                    }
                    cx /= deg;
                    cy /= deg;
                    let w = 2.0 / deg; // clique-to-star weight
                    for &p in &net.pins {
                        if let Some((m, off)) = self.inst_to_mov[p.0 as usize] {
                            acc_x[m] += w * cx;
                            acc_y[m] += w * (cy - off);
                            acc_wx[m] += w;
                            acc_wy[m] += w;
                        }
                    }
                }
            }
            NetModel::B2b => {
                // Bound-to-bound: per axis, the min and max pins anchor the
                // net; every pin connects to both bounds with weight
                // 2 / ((deg-1) * distance), the SimPL linearization of HPWL.
                for (_, net) in self.design.netlist.nets() {
                    let deg = net.degree();
                    if deg < 2 {
                        continue;
                    }
                    let positions: Vec<(f32, f32)> =
                        net.pins.iter().map(|&p| self.inst_pos(p)).collect();
                    for axis in 0..2 {
                        let coord = |i: usize| {
                            if axis == 0 {
                                positions[i].0
                            } else {
                                positions[i].1
                            }
                        };
                        let mut lo = 0usize;
                        let mut hi = 0usize;
                        for i in 1..deg {
                            if coord(i) < coord(lo) {
                                lo = i;
                            }
                            if coord(i) > coord(hi) {
                                hi = i;
                            }
                        }
                        let base = 2.0 / (deg as f32 - 1.0);
                        for i in 0..deg {
                            for &b in &[lo, hi] {
                                if i == b {
                                    continue;
                                }
                                let d = (coord(i) - coord(b)).abs().max(0.5);
                                let w = base / d;
                                // pull pin i toward bound b (and vice versa)
                                for (from, to) in [(i, b), (b, i)] {
                                    let pin = net.pins[from];
                                    if let Some((m, off)) = self.inst_to_mov[pin.0 as usize] {
                                        let target = coord(to);
                                        if axis == 0 {
                                            acc_x[m] += w * target;
                                            acc_wx[m] += w;
                                        } else {
                                            acc_y[m] += w * (target - off);
                                            acc_wy[m] += w;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        for m in 0..nm {
            let (x, y) = self.pos[m];
            let nx = if acc_wx[m] > 0.0 {
                x + damping * (acc_x[m] / acc_wx[m] - x)
            } else {
                x
            };
            let ny = if acc_wy[m] > 0.0 {
                y + damping * (acc_y[m] / acc_wy[m] - y)
            } else {
                y
            };
            self.pos[m] = (nx, ny);
        }
        self.clamp_all();
    }

    /// Density spreading: per resource class, alternate order-preserving
    /// 1-D capacity spreading along x (within horizontal bands) and along y
    /// (within vertical strips) — Kraftwerk-style cell shifting. Each
    /// movable's target is the fabric position where the cumulative site
    /// capacity of its class equals its cumulative area demand; positions
    /// are blended toward the targets with strength `density_step`.
    fn density_pass(&mut self, cfg: &GpConfig) {
        let alpha = cfg.density_step.clamp(0.0, 1.0);
        for class in [SiteKind::Clb, SiteKind::Dsp, SiteKind::Bram, SiteKind::Uram] {
            // Macro populations are small: coarser bands and decisive moves
            // keep the per-band transport statistics meaningful.
            let (bands_x, bands_y, a) = if class == SiteKind::Clb {
                (cfg.bin_h, cfg.bin_w, alpha)
            } else {
                (cfg.bin_h.min(6), cfg.bin_w.min(6), alpha.max(0.8))
            };
            self.spread_axis(class, Axis::X, bands_x, a);
            self.spread_axis(class, Axis::Y, bands_y, a);
        }
        self.clamp_all();
    }

    /// One 1-D spreading pass for a class along `axis`, banding the
    /// orthogonal axis into `bands` stripes.
    fn spread_axis(&mut self, class: SiteKind, axis: Axis, bands: usize, alpha: f32) {
        let design = self.design;
        let arch = &design.arch;
        let cols = arch.columns_of(class);
        if cols.is_empty() {
            return;
        }
        let (main_len, ortho_len) = match axis {
            Axis::X => (arch.columns(), arch.height()),
            Axis::Y => (arch.rows(), arch.width()),
        };
        // Capacity per unit cell along the main axis (before banding).
        // Along X: column c has `rows` sites (scaled to the band height).
        // Along Y: every row has `cols.len()` sites (scaled to band width).
        let band_size = ortho_len / bands as f32;
        let mut buckets: Vec<Vec<(usize, f32, f32)>> = vec![Vec::new(); bands];
        for (mi, mv) in self.movables.iter().enumerate() {
            if mv.kind.site_kind() != class {
                continue;
            }
            let (x, y) = self.pos[mi];
            let area: f32 = mv
                .members
                .iter()
                .map(|&(id, _)| self.areas[id.0 as usize])
                .sum();
            let (main, ortho) = match axis {
                Axis::X => (x, y + mv.extent * 0.5),
                Axis::Y => (y + mv.extent * 0.5, x),
            };
            let b = ((ortho / band_size) as usize).min(bands - 1);
            buckets[b].push((mi, main, area));
        }
        // Per-band capacity profile along the main axis.
        for (b, bucket) in buckets.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut cap = vec![0.0f32; main_len];
            match axis {
                Axis::X => {
                    let per_col = arch.rows() as f32 * band_size / arch.height();
                    for &c in &cols {
                        cap[c] = per_col;
                    }
                }
                Axis::Y => {
                    // count class columns inside this band's x-range
                    let x0 = b as f32 * band_size;
                    let x1 = x0 + band_size;
                    let n_cols = cols
                        .iter()
                        .filter(|&&c| (c as f32 + 0.5) >= x0 && (c as f32 + 0.5) < x1)
                        .count();
                    if n_cols == 0 {
                        // no sites of this class in the strip: push toward
                        // the nearest class column instead of spreading
                        for &(mi, _, _) in bucket.iter() {
                            let x = self.pos[mi].0;
                            let nearest = cols
                                .iter()
                                .copied()
                                .min_by(|&a, &bc| {
                                    (a as f32 - x)
                                        .abs()
                                        .partial_cmp(&(bc as f32 - x).abs())
                                        .expect("finite")
                                })
                                .expect("non-empty cols");
                            self.pos[mi].0 += alpha * (nearest as f32 - x);
                        }
                        continue;
                    }
                    for c in cap.iter_mut() {
                        *c = n_cols as f32;
                    }
                }
            }
            let total_cap: f32 = cap.iter().sum();
            if total_cap <= 0.0 {
                continue;
            }
            bucket.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite coordinate"));
            let total_demand: f32 = bucket.iter().map(|&(_, _, a)| a).sum();
            // Prefix sums of capacity.
            let mut prefix = vec![0.0f32; main_len + 1];
            for i in 0..main_len {
                prefix[i + 1] = prefix[i] + cap[i];
            }
            // Map cumulative demand onto cumulative capacity. An over-full
            // band spans the whole capacity (compression ratio C/D); an
            // under-full band occupies a capacity window of width D anchored
            // at the demand centroid, so cells do not teleport to the edge.
            let (offset, squeeze) = if total_demand > total_cap {
                (0.0, total_cap / total_demand)
            } else {
                let centroid: f32 =
                    bucket.iter().map(|&(_, m, a)| m * a).sum::<f32>() / total_demand.max(1e-6);
                let ci = (centroid as usize).min(main_len - 1);
                let c_pos = prefix[ci] + (centroid - ci as f32).clamp(0.0, 1.0) * cap[ci];
                (
                    (c_pos - total_demand * 0.5).clamp(0.0, total_cap - total_demand),
                    1.0,
                )
            };
            let mut cum = 0.0f32;
            for &(mi, main, area) in bucket.iter() {
                let d = offset + (cum + area * 0.5) * squeeze;
                cum += area;
                // find cell where cumulative capacity reaches d
                let target_cum = d.min(total_cap - 1e-6);
                let idx = match prefix
                    .binary_search_by(|p| p.partial_cmp(&target_cum).expect("finite"))
                {
                    Ok(i) => i.max(1) - 1,
                    Err(i) => i.max(1) - 1,
                };
                let idx = idx.min(main_len - 1);
                let within = if cap[idx] > 0.0 {
                    (target_cum - prefix[idx]) / cap[idx]
                } else {
                    0.5
                };
                let target = idx as f32 + within;
                // Blend toward an interpolation between the WL-preferred
                // position and the capacity-balanced one.
                let blended = main + alpha * (target - main);
                match axis {
                    Axis::X => self.pos[mi].0 = blended,
                    Axis::Y => {
                        let extent = self.movables[mi].extent;
                        self.pos[mi].1 = blended - extent * 0.5;
                    }
                }
            }
        }
    }

    /// Region tension: pull region-bound movables inside their rectangles.
    fn region_pass(&mut self, weight: f32) {
        for (mi, mv) in self.movables.iter().enumerate() {
            let Some(r) = mv.region else { continue };
            let rect = self.design.regions[r].rect;
            let (x, y) = self.pos[mi];
            if !rect.contains(x, y) {
                let tx = x.clamp(rect.x0 + 0.25, rect.x1 - 0.25);
                let ty = y.clamp(rect.y0 + 0.25, rect.y1 - 0.25);
                self.pos[mi] = (x + weight * (tx - x), y + weight * (ty - y));
            }
        }
        self.clamp_all();
    }

    fn clamp_all(&mut self) {
        let arch = &self.design.arch;
        for (mi, mv) in self.movables.iter().enumerate() {
            let (x, y) = self.pos[mi];
            let max_y = (arch.height() - mv.extent).max(0.0);
            self.pos[mi] = (x.clamp(0.0, arch.width() - 1e-3), y.clamp(0.0, max_y));
        }
    }

    /// Bin utilization (area / capacity) for one site class, with total
    /// used and overflowing areas (diagnostic helper).
    #[allow(dead_code)]
    pub(crate) fn bin_utilization(
        &self,
        class: SiteKind,
        bw: usize,
        bh: usize,
    ) -> (Vec<f32>, f32, f32) {
        let arch = &self.design.arch;
        let sx = bw as f32 / arch.width();
        let sy = bh as f32 / arch.height();
        // Capacity: sites of the class per bin (in site units).
        let mut cap = vec![0.0f32; bw * bh];
        for col in arch.columns_of(class) {
            let bx = (((col as f32 + 0.5) * sx) as usize).min(bw - 1);
            for row in 0..arch.rows() {
                let by = (((row as f32 + 0.5) * sy) as usize).min(bh - 1);
                cap[by * bw + bx] += 1.0;
            }
        }
        let mut dens = vec![0.0f32; bw * bh];
        for (id, inst) in self.design.netlist.instances() {
            if inst.kind.site_kind() != class {
                continue;
            }
            let (x, y) = self.inst_pos(id);
            let bx = ((x * sx) as usize).min(bw - 1);
            let by = ((y * sy) as usize).min(bh - 1);
            dens[by * bw + bx] += self.areas[id.0 as usize];
        }
        let total: f32 = dens.iter().sum();
        let mut over = 0.0f32;
        let util: Vec<f32> = dens
            .iter()
            .zip(&cap)
            .map(|(&d, &c)| {
                over += (d - c).max(0.0);
                if c > 0.0 {
                    d / c
                } else if d > 0.0 {
                    2.0 // demand in a bin without sites of this class
                } else {
                    0.0
                }
            })
            .collect();
        (util, total, over)
    }

    /// Current per-type overflow ratios.
    pub fn overflow(&self, cfg: &GpConfig) -> Overflow {
        let ratio = |class: SiteKind, kinds: &[InstKind]| -> f32 {
            // Macro populations are small, so measure them on the same
            // coarse bins the macro spreading uses; fine bins would make
            // the ratio a brittle quantization artifact.
            let (bin_w, bin_h) = if class == SiteKind::Clb {
                (cfg.bin_w, cfg.bin_h)
            } else {
                (cfg.bin_w.min(6), cfg.bin_h.min(6))
            };
            let arch = &self.design.arch;
            let sx = bin_w as f32 / arch.width();
            let sy = bin_h as f32 / arch.height();
            let mut cap = vec![0.0f32; bin_w * bin_h];
            for col in arch.columns_of(class) {
                let bx = (((col as f32 + 0.5) * sx) as usize).min(bin_w - 1);
                for row in 0..arch.rows() {
                    let by = (((row as f32 + 0.5) * sy) as usize).min(bin_h - 1);
                    cap[by * bin_w + bx] += 1.0;
                }
            }
            let mut dens = vec![0.0f32; bin_w * bin_h];
            for (id, inst) in self.design.netlist.instances() {
                if !kinds.contains(&inst.kind) {
                    continue;
                }
                let (x, y) = self.inst_pos(id);
                let bx = ((x * sx) as usize).min(bin_w - 1);
                let by = ((y * sy) as usize).min(bin_h - 1);
                dens[by * bin_w + bx] += self.areas[id.0 as usize];
            }
            // Scale capacity by this kind's share of the class capacity.
            let share: f32 = match kinds[0] {
                InstKind::Lut | InstKind::Ff => 0.5,
                _ => 1.0,
            };
            let total: f32 = dens.iter().sum();
            if total == 0.0 {
                return 0.0;
            }
            let over: f32 = dens
                .iter()
                .zip(&cap)
                .map(|(&d, &c)| (d - c * share).max(0.0))
                .sum();
            over / total
        };
        Overflow {
            lut: ratio(SiteKind::Clb, &[InstKind::Lut]),
            ff: ratio(SiteKind::Clb, &[InstKind::Ff]),
            dsp: ratio(SiteKind::Dsp, &[InstKind::Dsp]),
            bram: ratio(SiteKind::Bram, &[InstKind::Bram]),
            uram: ratio(SiteKind::Uram, &[InstKind::Uram]),
        }
    }

    /// Runs global-placement iterations until the overflow targets are met
    /// or `cfg.iterations` is exhausted. Returns the iteration count and the
    /// final overflow.
    pub fn run_stage(&mut self, cfg: &GpConfig) -> (usize, Overflow) {
        self.run_stage_observed(cfg, &mut |_, _, _| true)
            .expect("no-op observer never aborts")
    }

    /// Like [`run_stage`](Self::run_stage), but calls `observe` after every
    /// iteration with the placer state, the iteration index and the current
    /// overflow. The observer must not mutate placement state (it only gets
    /// a shared borrow) so observed and unobserved runs stay bitwise
    /// identical; returning `false` aborts the stage, yielding `None`.
    pub fn run_stage_observed(
        &mut self,
        cfg: &GpConfig,
        observe: &mut dyn FnMut(&GlobalPlacer, usize, &Overflow) -> bool,
    ) -> Option<(usize, Overflow)> {
        let _t = mfaplace_rt::timer::ScopeTimer::new("placer/gp_stage");
        let mut last = self.overflow(cfg);
        for it in 0..cfg.iterations {
            // Anneal: wirelength pull cools while spreading strengthens, so
            // late iterations prioritize legality (density) over wirelength.
            let cool = 0.94f32.powi(it as i32);
            let damping = cfg.wl_damping * cool;
            let mut anneal_cfg = cfg.clone();
            anneal_cfg.density_step = (cfg.density_step * (1.0 + it as f32 * 0.04)).min(1.0);
            for _ in 0..cfg.wl_passes {
                self.wl_pass(damping, cfg.net_model);
            }
            self.density_pass(&anneal_cfg);
            self.region_pass(cfg.region_weight);
            last = self.overflow(cfg);
            let done = last.meets_targets(cfg.target_overflow_macro, cfg.target_overflow_cell);
            if !observe(self, it, &last) {
                return None;
            }
            if done {
                return Some((it + 1, last));
            }
        }
        Some((cfg.iterations, last))
    }
}

/// Spreading axis selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn small_design() -> Design {
        DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1)
    }

    #[test]
    fn placer_reduces_hpwl_vs_random() {
        let d = small_design();
        let random = d.random_placement(3);
        let mut gp = GlobalPlacer::new(&d, 3);
        let cfg = GpConfig {
            iterations: 20,
            ..GpConfig::default()
        };
        gp.run_stage(&cfg);
        let placed = gp.placement();
        assert!(
            placed.hpwl(&d.netlist) < random.hpwl(&d.netlist) * 0.7,
            "gp {} vs random {}",
            placed.hpwl(&d.netlist),
            random.hpwl(&d.netlist)
        );
    }

    #[test]
    fn spreading_reduces_overflow() {
        let d = small_design();
        let mut gp = GlobalPlacer::new(&d, 5);
        let cfg = GpConfig::default();
        let before = gp.overflow(&cfg);
        gp.run_stage(&cfg);
        let after = gp.overflow(&cfg);
        assert!(
            after.lut <= before.lut,
            "lut overflow grew: {} -> {}",
            before.lut,
            after.lut
        );
        assert!(after.dsp <= before.dsp + 1e-3);
    }

    #[test]
    fn cascade_members_stay_stacked() {
        let d = small_design();
        assert!(!d.cascades.is_empty());
        let mut gp = GlobalPlacer::new(&d, 7);
        gp.run_stage(&GpConfig {
            iterations: 10,
            ..GpConfig::default()
        });
        let p = gp.placement();
        for c in &d.cascades {
            let (x0, y0) = p.pos(c.members[0].0 as usize);
            for (k, &m) in c.members.iter().enumerate() {
                let (x, y) = p.pos(m.0 as usize);
                assert_eq!(x, x0, "cascade member drifted in x");
                assert!((y - (y0 + k as f32)).abs() < 1e-4, "cascade offset broken");
            }
        }
    }

    #[test]
    fn region_members_converge_into_region() {
        let d = small_design();
        assert!(!d.regions.is_empty());
        let mut gp = GlobalPlacer::new(&d, 9);
        gp.run_stage(&GpConfig {
            iterations: 30,
            ..GpConfig::default()
        });
        let p = gp.placement();
        let mut inside = 0usize;
        let mut total = 0usize;
        for (ri, r) in d.regions.iter().enumerate() {
            for &m in &r.members {
                // only members whose movable is bound to this region
                if d.region_of(m) == Some(ri) {
                    total += 1;
                    let (x, y) = p.pos(m.0 as usize);
                    if r.rect.contains(x, y) {
                        inside += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            inside as f32 / total as f32 > 0.8,
            "only {inside}/{total} region members inside"
        );
    }

    #[test]
    fn all_positions_inside_fabric() {
        let d = small_design();
        let mut gp = GlobalPlacer::new(&d, 11);
        gp.run_stage(&GpConfig {
            iterations: 15,
            ..GpConfig::default()
        });
        let p = gp.placement();
        for i in 0..p.len() {
            let (x, y) = p.pos(i);
            assert!(x >= 0.0 && x <= d.arch.width(), "x {x} out of fabric");
            assert!(y >= 0.0 && y <= d.arch.height(), "y {y} out of fabric");
        }
    }

    #[test]
    fn b2b_model_converges_with_more_passes() {
        // B2B's distance-normalized weights converge more slowly per damped
        // fixed-point pass than the star model (SimPL applies it inside full
        // linear solves); with a higher pass budget it reaches comparable
        // wirelength.
        let d = small_design();
        let run = |model: NetModel, passes: usize| {
            let mut gp = GlobalPlacer::new(&d, 4);
            gp.run_stage(&GpConfig {
                iterations: 15,
                net_model: model,
                wl_passes: passes,
                ..GpConfig::default()
            });
            gp.placement().hpwl(&d.netlist)
        };
        let star = run(NetModel::Star, 3);
        let b2b = run(NetModel::B2b, 10);
        assert!(
            b2b < star * 1.25,
            "b2b {b2b} should approach star {star} with extra passes"
        );
        // And more passes must help B2B itself.
        let b2b_few = run(NetModel::B2b, 2);
        assert!(
            b2b < b2b_few,
            "passes should improve b2b: {b2b} vs {b2b_few}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = small_design();
        let run = |seed| {
            let mut gp = GlobalPlacer::new(&d, seed);
            gp.run_stage(&GpConfig {
                iterations: 5,
                ..GpConfig::default()
            });
            gp.placement().hpwl(&d.netlist)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
