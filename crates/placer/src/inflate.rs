//! Congestion-driven instance inflation (Eqs. 11-13 of the paper).
//!
//! Given a predicted congestion-level map `Y`, every instance sitting in a
//! grid whose level exceeds 3 is inflated:
//!
//! ```text
//! A_i^est    = A_i * min{ [max(1, Y_i - 2)]^2.5, eps }          (11)
//! tau_t      = min( (A_t^p - sum A_i) / sum dA_i, 1 )           (12)
//! A_i^update = A_i + tau_t * dA_i                               (13)
//! ```
//!
//! The per-type scale `tau_t` keeps the inflated demand of each resource
//! type within the fabric's total capacity `A_t^p`.

use mfaplace_fpga::arch::SiteKind;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_fpga::netlist::InstKind;
use mfaplace_fpga::placement::Placement;

/// Inflation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflationConfig {
    /// The exponent of Eq. (11); the paper uses 2.5.
    pub exponent: f32,
    /// The empirical cap `eps` preventing over-inflation (a multiplier).
    pub epsilon: f32,
    /// Congestion level above which inflation applies (the paper inflates
    /// where `Y > 3`, matching the Eq. (1) penalty threshold).
    pub threshold: f32,
}

impl Default for InflationConfig {
    fn default() -> Self {
        InflationConfig {
            exponent: 2.5,
            epsilon: 6.0,
            threshold: 3.0,
        }
    }
}

/// Summary of one inflation round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InflationStats {
    /// Instances whose area grew.
    pub inflated_instances: usize,
    /// Total added area (site units) after per-type scaling.
    pub added_area: f32,
    /// The scale factor applied to LUT/FF inflation.
    pub tau_cell: f32,
    /// The scale factor applied to macro inflation.
    pub tau_macro: f32,
}

/// Applies Eqs. (11)-(13) in place to `areas` (one entry per instance).
///
/// `congestion` is a level-scale map (same semantics as the router's
/// congestion levels); instance positions are looked up in `placement`.
///
/// # Panics
///
/// Panics if `areas.len()` differs from the instance count.
pub fn inflate_areas(
    design: &Design,
    placement: &Placement,
    congestion: &GridMap,
    areas: &mut [f32],
    cfg: &InflationConfig,
) -> InflationStats {
    assert_eq!(
        areas.len(),
        design.netlist.num_instances(),
        "area vector length mismatch"
    );
    let gw = congestion.width();
    let gh = congestion.height();
    let sx = gw as f32 / design.arch.width();
    let sy = gh as f32 / design.arch.height();

    // Eq. (11): per-instance estimated area.
    let mut delta = vec![0.0f32; areas.len()];
    let mut inflated = 0usize;
    for (id, _inst) in design.netlist.instances() {
        let i = id.0 as usize;
        let (x, y) = placement.pos(i);
        let gx = ((x * sx) as usize).min(gw - 1);
        let gy = ((y * sy) as usize).min(gh - 1);
        let level = congestion.get(gx, gy);
        if level <= cfg.threshold {
            continue;
        }
        let mult = (level - 2.0).max(1.0).powf(cfg.exponent).min(cfg.epsilon);
        let est = areas[i] * mult;
        if est > areas[i] {
            delta[i] = est - areas[i];
            inflated += 1;
        }
    }

    // Eq. (12): per-type scaling so inflation never exceeds capacity.
    let type_capacity = |t: InstKind| -> f32 {
        match t {
            // 8 LUTs of area 1/8 fill one CLB site: capacity is site count,
            // split between the two cell kinds.
            InstKind::Lut | InstKind::Ff => design.arch.site_count(SiteKind::Clb) as f32,
            InstKind::Dsp => design.arch.site_count(SiteKind::Dsp) as f32,
            InstKind::Bram => design.arch.site_count(SiteKind::Bram) as f32,
            InstKind::Uram => design.arch.site_count(SiteKind::Uram) as f32,
        }
    };
    let kinds = [
        InstKind::Lut,
        InstKind::Ff,
        InstKind::Dsp,
        InstKind::Bram,
        InstKind::Uram,
    ];
    let mut stats = InflationStats {
        inflated_instances: inflated,
        ..InflationStats::default()
    };
    for t in kinds {
        let mut used = 0.0f32;
        let mut added = 0.0f32;
        for (id, inst) in design.netlist.instances() {
            if inst.kind != t {
                continue;
            }
            used += areas[id.0 as usize];
            added += delta[id.0 as usize];
        }
        if added <= 0.0 {
            continue;
        }
        let tau = ((type_capacity(t) - used) / added).clamp(0.0, 1.0);
        match t {
            InstKind::Lut | InstKind::Ff => stats.tau_cell = tau,
            _ => stats.tau_macro = stats.tau_macro.max(tau),
        }
        // Eq. (13).
        for (id, inst) in design.netlist.instances() {
            if inst.kind != t {
                continue;
            }
            let i = id.0 as usize;
            let add = tau * delta[i];
            areas[i] += add;
            stats.added_area += add;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn setup() -> (Design, Placement) {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let p = d.random_placement(2);
        (d, p)
    }

    #[test]
    fn no_congestion_means_no_inflation() {
        let (d, p) = setup();
        let congestion = GridMap::new(16, 16); // all level 0
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        let before = areas.clone();
        let stats = inflate_areas(&d, &p, &congestion, &mut areas, &InflationConfig::default());
        assert_eq!(stats.inflated_instances, 0);
        assert_eq!(areas, before);
    }

    #[test]
    fn levels_at_or_below_three_are_ignored() {
        let (d, p) = setup();
        let mut congestion = GridMap::new(16, 16);
        for v in congestion.data_mut() {
            *v = 3.0;
        }
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        let stats = inflate_areas(&d, &p, &congestion, &mut areas, &InflationConfig::default());
        assert_eq!(stats.inflated_instances, 0);
    }

    #[test]
    fn hot_region_inflates_with_eq11_multiplier() {
        let (d, p) = setup();
        let mut congestion = GridMap::new(16, 16);
        for v in congestion.data_mut() {
            *v = 5.0; // multiplier = min(3^2.5, eps)
        }
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        let before: f32 = areas.iter().sum();
        let stats = inflate_areas(&d, &p, &congestion, &mut areas, &InflationConfig::default());
        assert!(stats.inflated_instances > 0);
        let after: f32 = areas.iter().sum();
        assert!(after > before, "areas should grow");
    }

    #[test]
    fn inflation_respects_type_capacity() {
        let (d, p) = setup();
        let mut congestion = GridMap::new(16, 16);
        for v in congestion.data_mut() {
            *v = 7.0;
        }
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        inflate_areas(&d, &p, &congestion, &mut areas, &InflationConfig::default());
        // Eq. (12): no type may exceed its fabric capacity.
        for (kind, site) in [
            (InstKind::Dsp, SiteKind::Dsp),
            (InstKind::Bram, SiteKind::Bram),
            (InstKind::Uram, SiteKind::Uram),
        ] {
            let used: f32 = d
                .netlist
                .instances()
                .filter(|(_, i)| i.kind == kind)
                .map(|(id, _)| areas[id.0 as usize])
                .sum();
            assert!(
                used <= d.arch.site_count(site) as f32 + 1e-3,
                "{kind:?} over capacity: {used}"
            );
        }
    }

    #[test]
    fn epsilon_caps_multiplier() {
        let (d, p) = setup();
        let mut congestion = GridMap::new(16, 16);
        for v in congestion.data_mut() {
            *v = 7.0; // (7-2)^2.5 = 55.9 -> capped by eps
        }
        let cfg = InflationConfig {
            epsilon: 1.5,
            ..InflationConfig::default()
        };
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        let before = areas.clone();
        inflate_areas(&d, &p, &congestion, &mut areas, &cfg);
        for (a, b) in areas.iter().zip(&before) {
            assert!(a / b <= 1.5 + 1e-4, "multiplier beyond eps: {}", a / b);
        }
    }
}
