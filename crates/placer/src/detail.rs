//! Detailed placement refinement: greedy local moves after legalization.
//!
//! A production flow follows legalization with detailed placement. This
//! pass iterates cells in seeded random order and tries relocating each to
//! nearby CLB sites, accepting moves that reduce half-perimeter wirelength.
//! Region-constrained cells only consider sites inside their region;
//! macros and fixed instances are never moved.

use mfaplace_fpga::arch::SiteKind;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::netlist::{InstId, NetId};
use mfaplace_fpga::placement::Placement;
use mfaplace_rt::rng::SeedableRng;
use mfaplace_rt::rng::SliceRandom;
use mfaplace_rt::rng::StdRng;

/// Statistics of one refinement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineStats {
    /// HPWL before refinement.
    pub hpwl_before: f64,
    /// HPWL after refinement.
    pub hpwl_after: f64,
    /// Accepted moves.
    pub moves: usize,
}

/// Incremental HPWL bookkeeping: per-net bounding boxes plus instance ->
/// nets adjacency.
struct WirelengthModel {
    /// `(min_x, min_y, max_x, max_y)` per net.
    bboxes: Vec<(f32, f32, f32, f32)>,
    /// Nets incident to each instance.
    incident: Vec<Vec<NetId>>,
}

impl WirelengthModel {
    fn build(design: &Design, placement: &Placement) -> Self {
        let mut incident: Vec<Vec<NetId>> = vec![Vec::new(); design.netlist.num_instances()];
        let mut bboxes = Vec::with_capacity(design.netlist.num_nets());
        for (nid, net) in design.netlist.nets() {
            bboxes.push(placement.net_bbox(net));
            for &p in &net.pins {
                incident[p.0 as usize].push(nid);
            }
        }
        WirelengthModel { bboxes, incident }
    }

    /// HPWL delta if instance `inst` moved to `(nx, ny)`. Recomputes each
    /// incident net's bbox exactly (O(degree) per net).
    fn move_delta(
        &self,
        design: &Design,
        placement: &Placement,
        inst: InstId,
        nx: f32,
        ny: f32,
    ) -> f64 {
        let mut delta = 0.0f64;
        for &nid in &self.incident[inst.0 as usize] {
            let net = design.netlist.net(nid);
            let (x0, y0, x1, y1) = self.bboxes[nid.0 as usize];
            let old = f64::from(x1 - x0) + f64::from(y1 - y0);
            let mut min_x = f32::INFINITY;
            let mut max_x = f32::NEG_INFINITY;
            let mut min_y = f32::INFINITY;
            let mut max_y = f32::NEG_INFINITY;
            for &p in &net.pins {
                let (px, py) = if p == inst {
                    (nx, ny)
                } else {
                    placement.pos(p.0 as usize)
                };
                min_x = min_x.min(px);
                max_x = max_x.max(px);
                min_y = min_y.min(py);
                max_y = max_y.max(py);
            }
            delta += f64::from(max_x - min_x) + f64::from(max_y - min_y) - old;
        }
        delta
    }

    fn commit_move(&mut self, design: &Design, placement: &Placement, inst: InstId) {
        for &nid in &self.incident[inst.0 as usize] {
            let net = design.netlist.net(nid);
            self.bboxes[nid.0 as usize] = placement.net_bbox(net);
        }
    }
}

/// Refines cell locations with greedy nearest-site moves.
///
/// Candidate targets per cell: the neighbouring CLB columns (up to 2 away)
/// crossed with row offsets `-2..=2`. Runs `passes` sweeps.
pub fn refine_cells(
    design: &Design,
    placement: &mut Placement,
    passes: usize,
    seed: u64,
) -> RefineStats {
    let hpwl_before = placement.hpwl(&design.netlist);
    let clb_cols = design.arch.columns_of(SiteKind::Clb);
    let mut model = WirelengthModel::build(design, placement);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut cells: Vec<InstId> = design
        .netlist
        .instances()
        .filter_map(|(id, inst)| (inst.movable && !inst.kind.is_macro()).then_some(id))
        .collect();

    let mut moves = 0usize;
    for _ in 0..passes {
        cells.shuffle(&mut rng);
        for &cell in &cells {
            let (cx, cy) = placement.pos(cell.0 as usize);
            let region = design.region_of(cell).map(|r| design.regions[r].rect);
            // candidate columns: current plus up to two nearest on each side
            let cur_col_idx = clb_cols
                .binary_search(&(cx as usize))
                .unwrap_or_else(|i| i.min(clb_cols.len() - 1));
            let lo = cur_col_idx.saturating_sub(2);
            let hi = (cur_col_idx + 2).min(clb_cols.len() - 1);
            let mut best: Option<(f32, f32, f64)> = None;
            for &col in &clb_cols[lo..=hi] {
                for dy in -2i32..=2 {
                    let ny = (cy as i32 + dy).clamp(0, design.arch.rows() as i32 - 1) as f32;
                    let nx = col as f32;
                    if (nx, ny) == (cx, cy) {
                        continue;
                    }
                    if let Some(rect) = region {
                        if !rect.contains(nx, ny) {
                            continue;
                        }
                    }
                    let delta = model.move_delta(design, placement, cell, nx, ny);
                    if delta < -1e-6 && best.is_none_or(|(_, _, b)| delta < b) {
                        best = Some((nx, ny, delta));
                    }
                }
            }
            if let Some((nx, ny, _)) = best {
                placement.set_pos(cell.0 as usize, nx, ny);
                model.commit_move(design, placement, cell);
                moves += 1;
            }
        }
    }

    RefineStats {
        hpwl_before,
        hpwl_after: placement.hpwl(&design.netlist),
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legal::{legalize_cells, legalize_macros};
    use mfaplace_fpga::design::DesignPreset;

    fn legalized() -> (Design, Placement) {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let mut p = d.random_placement(2);
        legalize_macros(&d, &mut p).expect("legalize");
        legalize_cells(&d, &mut p);
        (d, p)
    }

    #[test]
    fn refinement_reduces_hpwl() {
        let (d, mut p) = legalized();
        let stats = refine_cells(&d, &mut p, 2, 7);
        assert!(stats.moves > 0, "expected some improving moves");
        assert!(
            stats.hpwl_after < stats.hpwl_before,
            "hpwl {} -> {}",
            stats.hpwl_before,
            stats.hpwl_after
        );
        assert_eq!(stats.hpwl_after, p.hpwl(&d.netlist));
    }

    #[test]
    fn refinement_keeps_cells_on_clb_columns() {
        let (d, mut p) = legalized();
        refine_cells(&d, &mut p, 1, 3);
        for (id, inst) in d.netlist.instances() {
            if !inst.movable || inst.kind.is_macro() {
                continue;
            }
            let (x, _) = p.pos(id.0 as usize);
            assert_eq!(d.arch.column_kind(x as usize), SiteKind::Clb);
        }
    }

    #[test]
    fn refinement_never_moves_macros_or_fixed() {
        let (d, mut p) = legalized();
        let before: Vec<(f32, f32)> = d
            .netlist
            .instances()
            .filter(|(_, i)| i.kind.is_macro() || !i.movable)
            .map(|(id, _)| p.pos(id.0 as usize))
            .collect();
        refine_cells(&d, &mut p, 2, 5);
        let after: Vec<(f32, f32)> = d
            .netlist
            .instances()
            .filter(|(_, i)| i.kind.is_macro() || !i.movable)
            .map(|(id, _)| p.pos(id.0 as usize))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn refinement_respects_regions() {
        let d = DesignPreset::design_190()
            .with_scale(512, 64, 32)
            .generate(4);
        let mut p = d.random_placement(5);
        legalize_macros(&d, &mut p).expect("legalize");
        legalize_cells(&d, &mut p);
        // Move region cells inside first so the invariant can hold.
        for (ri, r) in d.regions.iter().enumerate() {
            for &m in &r.members {
                if d.region_of(m) == Some(ri) && !d.netlist.instance(m).kind.is_macro() {
                    let (cx, cy) = r.rect.center();
                    p.set_pos(m.0 as usize, cx, cy);
                }
            }
        }
        refine_cells(&d, &mut p, 1, 9);
        for (ri, r) in d.regions.iter().enumerate() {
            for &m in &r.members {
                if d.region_of(m) != Some(ri) || d.netlist.instance(m).kind.is_macro() {
                    continue;
                }
                let (x, y) = p.pos(m.0 as usize);
                assert!(
                    r.rect.contains(x, y),
                    "region cell escaped during refinement"
                );
            }
        }
    }
}
