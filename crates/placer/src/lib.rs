//! Placement substrate: a DREAMPlaceFPGA-flavoured analytical global placer
//! with MLCAD 2023 constraint handling.
//!
//! The paper's macro placement flow (Fig. 6) is: merge cascade-shape macros
//! into clusters, run region-aware global placement until per-type overflow
//! targets are met, predict congestion, inflate instances in congested grids
//! (Eqs. 11-13), continue placement, then legalize macros. This crate
//! provides each stage:
//!
//! - [`gp`] — iterative star-model wirelength minimization with bin-density
//!   spreading, region tension and cascade clusters (a CPU-scale stand-in
//!   for the GPU electrostatic placer);
//! - [`inflate`] — the paper's congestion-driven instance inflation;
//! - [`legal`] — Tetris-style macro legalization honouring cascade and
//!   region constraints, plus CLB cell snapping;
//! - [`detail`] — greedy detailed-placement refinement after legalization;
//! - [`flows`] — complete placement flows: the model-driven flow of the
//!   paper and RUDY-analytical baselines standing in for the contest
//!   winners (UTDA, SEU, MPKU-Improve).
//!
//! # Example
//!
//! ```no_run
//! use mfaplace_fpga::design::DesignPreset;
//! use mfaplace_placer::flows::{PlacementFlow, FlowConfig, RudyPredictor};
//!
//! let design = DesignPreset::design_116().with_scale(256, 64, 32).generate(1);
//! let flow = PlacementFlow::new(FlowConfig::default());
//! let mut predictor = RudyPredictor::default();
//! let result = flow.run(&design, &mut predictor, 42);
//! println!("HPWL = {}", result.placement.hpwl(&design.netlist));
//! ```

pub mod detail;
pub mod flows;
pub mod gp;
pub mod inflate;
pub mod legal;

pub use detail::{refine_cells, RefineStats};
pub use flows::{
    CongestionPredictor, FlowAborted, FlowConfig, FlowEvent, PlacementFlow, PlacementResult,
    RudyPredictor,
};
pub use gp::{GlobalPlacer, GpConfig, Overflow};
pub use inflate::{inflate_areas, InflationConfig};
pub use legal::{legalize_cells, legalize_macros, LegalizeError};
