//! Complete macro-placement flows (Fig. 6 of the paper).
//!
//! Every flow follows the same skeleton — cascade merging, region-aware
//! global placement, congestion prediction + instance inflation once the
//! overflow targets are met, refinement, and legalization — but differs in
//! *how congestion is predicted* and in its tuning:
//!
//! - [`FlowConfig::model_driven`] — the paper's flow: a learned congestion
//!   model (any [`CongestionPredictor`]) replaces RUDY;
//! - [`FlowConfig::utda_like`] — the UTDA contest winner \[11\]: RUDY-based
//!   analytical inflation, aggressive and cheap;
//! - [`FlowConfig::seu_like`] — the SEU entry: tuned RUDY inflation with
//!   stronger spreading;
//! - [`FlowConfig::mpku_like`] — MPKU-Improve \[16\]: multi-electrostatic-
//!   flavoured (more spreading iterations, lower overflow targets) with
//!   moderate RUDY inflation.

use std::time::Instant;

use mfaplace_fpga::design::Design;
use mfaplace_fpga::features::FeatureStack;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_fpga::placement::Placement;

use crate::gp::{GlobalPlacer, GpConfig, Overflow};
use crate::inflate::{inflate_areas, InflationConfig, InflationStats};
use crate::legal::{legalize_cells, legalize_macros, LegalizeError};

/// Predicts a congestion-*level* map for the current placement snapshot.
///
/// Implementations: [`RudyPredictor`] (analytical baseline) here, and the
/// learned-model predictor in `mfaplace-core` (which wraps the trained
/// MFA+transformer network).
pub trait CongestionPredictor {
    /// Returns a `grid_w x grid_h` map in congestion-level units
    /// (comparable to the router's levels, `0..=7`).
    fn predict(
        &mut self,
        design: &Design,
        placement: &Placement,
        grid_w: usize,
        grid_h: usize,
    ) -> GridMap;

    /// Human-readable predictor name (for reports).
    fn name(&self) -> &str {
        "predictor"
    }
}

/// The RUDY-based analytical predictor used by the contest winners: maps
/// normalized RUDY demand linearly onto the congestion-level scale. RUDY
/// tracks *demand*, not realized congestion, so it systematically smears
/// hotspots — the effect the paper's learned model corrects.
#[derive(Debug, Clone)]
pub struct RudyPredictor {
    /// Level assigned to the peak RUDY cell.
    pub peak_level: f32,
    /// Blend weight of the pin-density term.
    pub pin_weight: f32,
}

impl Default for RudyPredictor {
    fn default() -> Self {
        RudyPredictor {
            peak_level: 7.0,
            pin_weight: 0.25,
        }
    }
}

impl CongestionPredictor for RudyPredictor {
    fn predict(
        &mut self,
        design: &Design,
        placement: &Placement,
        grid_w: usize,
        grid_h: usize,
    ) -> GridMap {
        let features = FeatureStack::extract(design, placement, grid_w, grid_h);
        let mut out = GridMap::new(grid_w, grid_h);
        for i in 0..grid_w * grid_h {
            let demand = (1.0 - self.pin_weight) * features.rudy.data()[i]
                + self.pin_weight * features.pin_rudy.data()[i];
            out.data_mut()[i] = demand * self.peak_level;
        }
        out
    }

    fn name(&self) -> &str {
        "rudy"
    }
}

/// Full flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Display name (team analogue).
    pub name: String,
    /// Stage-1 (pre-inflation) placer settings.
    pub gp_stage1: GpConfig,
    /// Stage-2 (post-inflation) placer settings.
    pub gp_stage2: GpConfig,
    /// Inflation parameters.
    pub inflation: InflationConfig,
    /// Congestion grid used for prediction and inflation.
    pub grid_w: usize,
    /// Congestion grid height.
    pub grid_h: usize,
    /// Number of predict-inflate-refine rounds.
    pub inflation_rounds: usize,
    /// Detailed-placement refinement sweeps after legalization.
    pub refine_passes: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::model_driven()
    }
}

impl FlowConfig {
    fn base(name: &str) -> Self {
        FlowConfig {
            name: name.to_string(),
            gp_stage1: GpConfig::default(),
            gp_stage2: GpConfig {
                iterations: 25,
                ..GpConfig::default()
            },
            inflation: InflationConfig::default(),
            grid_w: 64,
            grid_h: 64,
            inflation_rounds: 1,
            refine_passes: 1,
        }
    }

    /// The paper's model-driven flow: accurate level-scale prediction allows
    /// targeted inflation and two refinement rounds.
    pub fn model_driven() -> Self {
        let mut cfg = FlowConfig::base("Ours");
        cfg.inflation_rounds = 2;
        cfg.gp_stage2.density_step = 1.4;
        cfg
    }

    /// UTDA-like baseline \[11\]: plain RUDY inflation, fewer spreading
    /// iterations (fast, congestion-prone).
    pub fn utda_like() -> Self {
        let mut cfg = FlowConfig::base("UTDA");
        cfg.gp_stage1.iterations = 35;
        cfg.gp_stage1.density_step = 0.9;
        cfg.gp_stage2.iterations = 15;
        cfg.gp_stage2.density_step = 0.9;
        cfg.inflation = InflationConfig {
            epsilon: 3.0,
            ..InflationConfig::default()
        };
        cfg
    }

    /// SEU-like baseline: tuned RUDY inflation with stronger spreading.
    pub fn seu_like() -> Self {
        let mut cfg = FlowConfig::base("SEU");
        cfg.gp_stage1.density_step = 1.1;
        cfg.gp_stage2.iterations = 20;
        cfg.inflation = InflationConfig {
            epsilon: 4.5,
            ..InflationConfig::default()
        };
        cfg
    }

    /// MPKU-Improve-like baseline \[16\]: multi-electrostatics flavour —
    /// longer spreading with tighter overflow targets and moderate RUDY
    /// inflation.
    pub fn mpku_like() -> Self {
        let mut cfg = FlowConfig::base("MPKU-Improve");
        cfg.gp_stage1.iterations = 80;
        cfg.gp_stage1.target_overflow_macro = 0.20;
        cfg.gp_stage1.target_overflow_cell = 0.12;
        cfg.gp_stage2.iterations = 30;
        cfg.inflation = InflationConfig {
            epsilon: 5.0,
            ..InflationConfig::default()
        };
        cfg
    }
}

/// A progress event emitted by an observed placement flow.
///
/// Events carry only values derived deterministically from the placement
/// state — no wall-clock timestamps — so two runs with the same design,
/// seed and predictor produce bitwise-identical event sequences.
#[derive(Debug, Clone)]
pub enum FlowEvent {
    /// A GP stage is starting. `stage` is 1 for the pre-inflation stage and
    /// 2 for each post-inflation stage.
    StageStart {
        /// Stage number (1 or 2).
        stage: usize,
        /// Iteration budget for the stage.
        iterations: usize,
    },
    /// One global-placement iteration finished.
    GpIteration {
        /// Stage number (1 or 2).
        stage: usize,
        /// Zero-based iteration index within the stage.
        iteration: usize,
        /// HPWL of the current (unlegalized) placement.
        hpwl: f64,
        /// Per-type overflow after the iteration.
        overflow: Overflow,
    },
    /// The congestion predictor ran on a placement snapshot.
    Predicted {
        /// Zero-based inflation round.
        round: usize,
        /// Mean predicted congestion level over the grid.
        mean_level: f32,
        /// Peak predicted congestion level.
        max_level: f32,
        /// Tiles at or above level 4 (the "hot" half of the 0..=7 scale).
        hot_tiles: usize,
    },
    /// Instance areas were inflated from the prediction.
    Inflated {
        /// Zero-based inflation round.
        round: usize,
        /// Inflation statistics for the round.
        stats: InflationStats,
    },
    /// Macro and cell legalization (plus refinement) completed.
    Legalized {
        /// HPWL of the final legalized placement.
        hpwl: f64,
    },
}

/// An observed flow was aborted by its observer (e.g. job cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowAborted;

impl std::fmt::Display for FlowAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow aborted by observer")
    }
}

impl std::error::Error for FlowAborted {}

/// Outcome of a placement flow.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The legalized placement.
    pub placement: Placement,
    /// Macro-placement wall-clock time in minutes (the contest's
    /// `T_macro`).
    pub t_macro_min: f64,
    /// Overflow after the final stage.
    pub final_overflow: Overflow,
    /// Inflation statistics per round.
    pub inflation: Vec<InflationStats>,
    /// Stage-1 iterations used.
    pub stage1_iterations: usize,
}

/// Runs a complete macro-placement flow.
#[derive(Debug, Clone)]
pub struct PlacementFlow {
    config: FlowConfig,
}

impl PlacementFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        PlacementFlow { config }
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the flow: stage-1 GP, predict + inflate rounds, stage-2 GP,
    /// legalization.
    ///
    /// # Panics
    ///
    /// Panics if macro legalization fails (generated designs always fit).
    pub fn run(
        &self,
        design: &Design,
        predictor: &mut dyn CongestionPredictor,
        seed: u64,
    ) -> PlacementResult {
        self.run_inner(design, predictor, seed, None)
            .expect("unobserved runs never abort")
    }

    /// Like [`run`](Self::run), but emits a [`FlowEvent`] after every GP
    /// iteration, prediction, inflation round and legalization. The
    /// observer only reads derived values, so an observed run is bitwise
    /// identical to an unobserved one. If `observe` returns `false` the
    /// flow stops at the next event boundary and returns
    /// `Err(FlowAborted)`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowAborted`] when the observer requests an abort.
    ///
    /// # Panics
    ///
    /// Panics if macro legalization fails (generated designs always fit).
    pub fn run_observed(
        &self,
        design: &Design,
        predictor: &mut dyn CongestionPredictor,
        seed: u64,
        observe: &mut dyn FnMut(&FlowEvent) -> bool,
    ) -> Result<PlacementResult, FlowAborted> {
        self.run_inner(design, predictor, seed, Some(observe))
    }

    /// Shared flow body. When `observer` is `None`, events (and the HPWL
    /// sample each one carries) are never computed, so `run` costs exactly
    /// what it did before observers existed.
    fn run_inner<'o>(
        &self,
        design: &Design,
        predictor: &mut dyn CongestionPredictor,
        seed: u64,
        mut observer: Option<&mut (dyn FnMut(&FlowEvent) -> bool + 'o)>,
    ) -> Result<PlacementResult, FlowAborted> {
        let start = Instant::now();
        let cfg = &self.config;
        let mut gp = GlobalPlacer::new(design, seed);

        let mut stage1 = cfg.gp_stage1.clone();
        stage1.seed = seed;
        if let Some(obs) = observer.as_deref_mut() {
            if !obs(&FlowEvent::StageStart {
                stage: 1,
                iterations: stage1.iterations,
            }) {
                return Err(FlowAborted);
            }
        }
        let (stage1_iterations, mut overflow) =
            run_stage_maybe_observed(&mut gp, &stage1, design, 1, observer.as_deref_mut())?;

        let mut inflation = Vec::new();
        for round in 0..cfg.inflation_rounds {
            let snapshot = gp.placement();
            let congestion = predictor.predict(design, &snapshot, cfg.grid_w, cfg.grid_h);
            if let Some(obs) = observer.as_deref_mut() {
                let cells = congestion.data();
                let mean_level = if cells.is_empty() {
                    0.0
                } else {
                    cells.iter().sum::<f32>() / cells.len() as f32
                };
                let hot_tiles = cells.iter().filter(|&&v| v >= 4.0).count();
                if !obs(&FlowEvent::Predicted {
                    round,
                    mean_level,
                    max_level: congestion.max(),
                    hot_tiles,
                }) {
                    return Err(FlowAborted);
                }
            }
            let stats = {
                let areas_ptr = gp.areas().to_vec();
                let mut areas = areas_ptr;
                let stats =
                    inflate_areas(design, &snapshot, &congestion, &mut areas, &cfg.inflation);
                gp.areas_mut().copy_from_slice(&areas);
                stats
            };
            if let Some(obs) = observer.as_deref_mut() {
                if !obs(&FlowEvent::Inflated { round, stats }) {
                    return Err(FlowAborted);
                }
            }
            inflation.push(stats);
            let mut stage2 = cfg.gp_stage2.clone();
            stage2.seed = seed.wrapping_add(1);
            if let Some(obs) = observer.as_deref_mut() {
                if !obs(&FlowEvent::StageStart {
                    stage: 2,
                    iterations: stage2.iterations,
                }) {
                    return Err(FlowAborted);
                }
            }
            let (_, of) =
                run_stage_maybe_observed(&mut gp, &stage2, design, 2, observer.as_deref_mut())?;
            overflow = of;
        }

        let mut placement = gp.placement();
        legalize_macros(design, &mut placement).expect("macro legalization");
        legalize_cells(design, &mut placement);
        if cfg.refine_passes > 0 {
            crate::detail::refine_cells(design, &mut placement, cfg.refine_passes, seed ^ 0xDE);
        }
        if let Some(obs) = observer {
            if !obs(&FlowEvent::Legalized {
                hpwl: placement.hpwl(&design.netlist),
            }) {
                return Err(FlowAborted);
            }
        }

        Ok(PlacementResult {
            placement,
            t_macro_min: start.elapsed().as_secs_f64() / 60.0,
            final_overflow: overflow,
            inflation,
            stage1_iterations,
        })
    }
}

/// Runs one GP stage, forwarding each iteration to the flow observer (when
/// present) as a [`FlowEvent::GpIteration`]. The per-iteration HPWL sample
/// is only computed when there is an observer to consume it.
fn run_stage_maybe_observed<'o>(
    gp: &mut GlobalPlacer,
    cfg: &GpConfig,
    design: &Design,
    stage: usize,
    observer: Option<&mut (dyn FnMut(&FlowEvent) -> bool + 'o)>,
) -> Result<(usize, Overflow), FlowAborted> {
    match observer {
        None => Ok(gp.run_stage(cfg)),
        Some(observe) => gp
            .run_stage_observed(cfg, &mut |gp, iteration, overflow| {
                observe(&FlowEvent::GpIteration {
                    stage,
                    iteration,
                    hpwl: gp.placement().hpwl(&design.netlist),
                    overflow: *overflow,
                })
            })
            .ok_or(FlowAborted),
    }
}

/// Convenience: the result type alias used by downstream code.
pub type FlowError = LegalizeError;

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn small_design() -> Design {
        DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1)
    }

    fn quick(cfg: FlowConfig) -> FlowConfig {
        let mut cfg = cfg;
        cfg.gp_stage1.iterations = 12;
        cfg.gp_stage2.iterations = 6;
        cfg.grid_w = 32;
        cfg.grid_h = 32;
        cfg
    }

    #[test]
    fn flow_produces_legal_macros() {
        let d = small_design();
        let flow = PlacementFlow::new(quick(FlowConfig::utda_like()));
        let mut pred = RudyPredictor::default();
        let res = flow.run(&d, &mut pred, 1);
        for m in d.netlist.macros() {
            let (x, y) = res.placement.pos(m.0 as usize);
            assert_eq!(x.fract(), 0.0);
            assert_eq!(y.fract(), 0.0);
            assert_eq!(
                d.arch.column_kind(x as usize),
                d.netlist.instance(m).kind.site_kind()
            );
        }
        assert!(res.t_macro_min < 10.0, "must beat the contest limit");
    }

    #[test]
    fn flow_is_deterministic() {
        let d = small_design();
        let flow = PlacementFlow::new(quick(FlowConfig::seu_like()));
        let a = flow
            .run(&d, &mut RudyPredictor::default(), 7)
            .placement
            .hpwl(&d.netlist);
        let b = flow
            .run(&d, &mut RudyPredictor::default(), 7)
            .placement
            .hpwl(&d.netlist);
        assert_eq!(a, b);
    }

    #[test]
    fn rudy_predictor_scales_to_levels() {
        let d = small_design();
        let p = d.random_placement(2);
        let mut pred = RudyPredictor::default();
        let map = pred.predict(&d, &p, 32, 32);
        assert!(map.max() <= 7.0 + 1e-5);
        assert!(map.max() > 0.0);
    }

    #[test]
    fn inflation_happens_under_hot_predictions() {
        let d = small_design();
        // A predictor that claims uniform level-6 congestion.
        struct Hot;
        impl CongestionPredictor for Hot {
            fn predict(&mut self, _d: &Design, _p: &Placement, w: usize, h: usize) -> GridMap {
                GridMap::from_vec(w, h, vec![6.0; w * h])
            }
        }
        let flow = PlacementFlow::new(quick(FlowConfig::model_driven()));
        let res = flow.run(&d, &mut Hot, 3);
        assert!(res.inflation[0].inflated_instances > 0);
        assert!(res.inflation[0].added_area > 0.0);
    }

    #[test]
    fn observed_run_matches_unobserved_bitwise() {
        let d = small_design();
        let flow = PlacementFlow::new(quick(FlowConfig::model_driven()));
        let plain = flow.run(&d, &mut RudyPredictor::default(), 9);
        let mut events = Vec::new();
        let observed = flow
            .run_observed(&d, &mut RudyPredictor::default(), 9, &mut |e| {
                events.push(e.clone());
                true
            })
            .unwrap();
        assert_eq!(plain.placement, observed.placement);
        assert_eq!(plain.final_overflow, observed.final_overflow);
        assert_eq!(plain.stage1_iterations, observed.stage1_iterations);
        // Event shape: stage starts, one GpIteration per iteration, one
        // Predicted + Inflated per round, one Legalized at the end.
        let rounds = flow.config().inflation_rounds;
        let preds = events
            .iter()
            .filter(|e| matches!(e, FlowEvent::Predicted { .. }))
            .count();
        assert_eq!(preds, rounds);
        assert!(matches!(events.last(), Some(FlowEvent::Legalized { .. })));
        let gp_iters = events
            .iter()
            .filter(|e| matches!(e, FlowEvent::GpIteration { .. }))
            .count();
        assert!(gp_iters > 0);
    }

    #[test]
    fn observer_abort_stops_flow() {
        let d = small_design();
        let flow = PlacementFlow::new(quick(FlowConfig::seu_like()));
        let mut seen = 0usize;
        let res = flow.run_observed(&d, &mut RudyPredictor::default(), 4, &mut |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(res.unwrap_err(), FlowAborted);
        assert_eq!(seen, 3);
    }

    #[test]
    fn presets_have_distinct_tuning() {
        let a = FlowConfig::utda_like();
        let b = FlowConfig::mpku_like();
        assert_ne!(a.gp_stage1.iterations, b.gp_stage1.iterations);
        assert_ne!(a.inflation.epsilon, b.inflation.epsilon);
        assert_eq!(FlowConfig::model_driven().inflation_rounds, 2);
    }
}
