//! Macro legalization (Tetris-style) and CLB cell snapping.
//!
//! After global placement, macros must occupy discrete sites of matching
//! kind: cascades need consecutive sites of one column in order, region
//! members must stay inside their rectangles. Cascades are legalized first
//! (largest first — they are the hardest to fit), then single macros
//! greedily by nearest free site.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use mfaplace_fpga::arch::SiteKind;
use mfaplace_fpga::design::Design;
use mfaplace_fpga::netlist::{InstId, InstKind};
use mfaplace_fpga::placement::Placement;

/// Error returned when a macro cannot be legalized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalizeError {
    /// The instance that could not be placed.
    pub inst: InstId,
    /// The site kind that ran out of space.
    pub site_kind: SiteKind,
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no legal {} site for instance {}",
            self.site_kind, self.inst.0
        )
    }
}

impl Error for LegalizeError {}

/// Legalizes all macros in place: cascades to consecutive column sites,
/// singles to the nearest free site of their kind, region members inside
/// their rectangles.
///
/// # Errors
///
/// Returns [`LegalizeError`] if the fabric runs out of sites of some kind
/// (never happens for generated designs, which cap utilization).
pub fn legalize_macros(design: &Design, placement: &mut Placement) -> Result<(), LegalizeError> {
    let arch = &design.arch;
    let mut occupied: HashSet<(usize, usize)> = HashSet::new();

    // ---- cascades, longest first ------------------------------------
    let mut cascades: Vec<usize> = (0..design.cascades.len()).collect();
    cascades.sort_by_key(|&c| std::cmp::Reverse(design.cascades[c].len()));
    for ci in cascades {
        let cascade = &design.cascades[ci];
        let len = cascade.len();
        let head = cascade.members[0];
        let (hx, hy) = placement.pos(head.0 as usize);
        let cols = arch.columns_of(cascade.site_kind);
        let mut best: Option<(usize, usize, f32)> = None;
        for &col in &cols {
            for start in 0..=(arch.rows().saturating_sub(len)) {
                if (start..start + len).any(|r| occupied.contains(&(col, r))) {
                    continue;
                }
                let d = (col as f32 - hx).abs() + (start as f32 - hy).abs();
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((col, start, d));
                }
            }
        }
        let Some((col, start, _)) = best else {
            return Err(LegalizeError {
                inst: head,
                site_kind: cascade.site_kind,
            });
        };
        for (k, &m) in cascade.members.iter().enumerate() {
            occupied.insert((col, start + k));
            placement.set_pos(m.0 as usize, col as f32, (start + k) as f32);
        }
    }

    // ---- single macros, biggest displacement risk first --------------
    let in_cascade: HashSet<InstId> = design
        .cascades
        .iter()
        .flat_map(|c| c.members.iter().copied())
        .collect();
    let mut singles: Vec<InstId> = design
        .netlist
        .macros()
        .into_iter()
        .filter(|m| !in_cascade.contains(m))
        .collect();
    // Deterministic order: by id.
    singles.sort();
    for m in singles {
        let kind = design.netlist.instance(m).kind;
        let site_kind = kind.site_kind();
        let (mx, my) = placement.pos(m.0 as usize);
        let region = design.region_of(m).map(|r| design.regions[r].rect);
        let mut best: Option<(usize, usize, f32)> = None;
        for &col in &arch.columns_of(site_kind) {
            for row in 0..arch.rows() {
                if occupied.contains(&(col, row)) {
                    continue;
                }
                if let Some(rect) = region {
                    if !rect.contains(col as f32, row as f32) {
                        continue;
                    }
                }
                let d = (col as f32 - mx).abs() + (row as f32 - my).abs();
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((col, row, d));
                }
            }
        }
        // Fall back to ignoring the region if it contains no free site of
        // the right kind (the generator avoids this, but stay robust).
        if best.is_none() && region.is_some() {
            for &col in &arch.columns_of(site_kind) {
                for row in 0..arch.rows() {
                    if occupied.contains(&(col, row)) {
                        continue;
                    }
                    let d = (col as f32 - mx).abs() + (row as f32 - my).abs();
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((col, row, d));
                    }
                }
            }
        }
        let Some((col, row, _)) = best else {
            return Err(LegalizeError { inst: m, site_kind });
        };
        occupied.insert((col, row));
        placement.set_pos(m.0 as usize, col as f32, row as f32);
    }
    Ok(())
}

/// Snaps LUT/FF cells onto CLB columns: each cell moves to the nearest CLB
/// column and an integral row. This is a light-weight stand-in for detailed
/// cell legalization — cell-level bin capacities are already enforced by
/// the global placer's spreading, and the congestion analysis operates on
/// the tile grid, so sub-site packing does not change the reproduced
/// metrics.
pub fn legalize_cells(design: &Design, placement: &mut Placement) {
    let clb_cols = design.arch.columns_of(SiteKind::Clb);
    for (id, inst) in design.netlist.instances() {
        if inst.kind != InstKind::Lut && inst.kind != InstKind::Ff {
            continue;
        }
        if !inst.movable {
            continue;
        }
        let (x, y) = placement.pos(id.0 as usize);
        // nearest CLB column (columns are sorted ascending)
        let col = match clb_cols.binary_search_by(|&c| (c as f32).partial_cmp(&x).expect("finite"))
        {
            Ok(i) => clb_cols[i],
            Err(i) => {
                if i == 0 {
                    clb_cols[0]
                } else if i >= clb_cols.len() {
                    clb_cols[clb_cols.len() - 1]
                } else if (clb_cols[i] as f32 - x).abs() < (x - clb_cols[i - 1] as f32).abs() {
                    clb_cols[i]
                } else {
                    clb_cols[i - 1]
                }
            }
        };
        let row = (y.round() as usize).min(design.arch.rows() - 1);
        placement.set_pos(id.0 as usize, col as f32, row as f32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    fn legalized() -> (Design, Placement) {
        let d = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let mut p = d.random_placement(2);
        legalize_macros(&d, &mut p).expect("legalization");
        legalize_cells(&d, &mut p);
        (d, p)
    }

    #[test]
    fn macros_on_matching_columns() {
        let (d, p) = legalized();
        for m in d.netlist.macros() {
            let (x, y) = p.pos(m.0 as usize);
            let col = x as usize;
            assert_eq!(x.fract(), 0.0, "macro x not integral");
            assert_eq!(y.fract(), 0.0, "macro y not integral");
            assert_eq!(
                d.arch.column_kind(col),
                d.netlist.instance(m).kind.site_kind(),
                "macro on wrong column kind"
            );
        }
    }

    #[test]
    fn no_two_macros_share_a_site() {
        let (d, p) = legalized();
        let mut seen = HashSet::new();
        for m in d.netlist.macros() {
            let (x, y) = p.pos(m.0 as usize);
            assert!(
                seen.insert((x as usize, y as usize)),
                "site ({x}, {y}) double-booked"
            );
        }
    }

    #[test]
    fn cascades_occupy_consecutive_ordered_sites() {
        let (d, p) = legalized();
        for c in &d.cascades {
            let (x0, y0) = p.pos(c.members[0].0 as usize);
            for (k, &m) in c.members.iter().enumerate() {
                let (x, y) = p.pos(m.0 as usize);
                assert_eq!(x, x0, "cascade not in one column");
                assert_eq!(y, y0 + k as f32, "cascade order broken");
            }
        }
    }

    #[test]
    fn cells_land_on_clb_columns() {
        let (d, p) = legalized();
        for (id, inst) in d.netlist.instances() {
            if !inst.movable || inst.kind.is_macro() {
                continue;
            }
            let (x, _) = p.pos(id.0 as usize);
            assert_eq!(
                d.arch.column_kind(x as usize),
                SiteKind::Clb,
                "cell on non-CLB column"
            );
        }
    }

    #[test]
    fn region_macros_prefer_their_region() {
        let d = DesignPreset::design_190()
            .with_scale(512, 64, 32)
            .generate(4);
        let mut p = d.random_placement(5);
        legalize_macros(&d, &mut p).expect("legalization");
        for (ri, r) in d.regions.iter().enumerate() {
            for &m in &r.members {
                if !d.netlist.instance(m).kind.is_macro() {
                    continue;
                }
                if d.region_of(m) != Some(ri) {
                    continue;
                }
                let (x, y) = p.pos(m.0 as usize);
                // sites exist in every region of the generated designs
                assert!(
                    r.rect.contains(x, y) || {
                        // allowed fallback only when the region lacks sites
                        let kind = d.netlist.instance(m).kind.site_kind();
                        !d.arch
                            .columns_of(kind)
                            .iter()
                            .any(|&c| r.rect.contains(c as f32, r.rect.center().1))
                    },
                    "macro escaped its region"
                );
            }
        }
    }
}
