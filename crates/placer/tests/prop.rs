//! Property-based tests of inflation and legalization invariants.

use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_placer::inflate::{inflate_areas, InflationConfig};
use mfaplace_placer::legal::{legalize_cells, legalize_macros};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn inflation_never_shrinks_areas(level in 0.0f32..8.0, seed in 0u64..30) {
        let d = DesignPreset::design_136().with_scale(512, 64, 32).generate(seed);
        let p = d.random_placement(seed);
        let congestion = GridMap::from_vec(8, 8, vec![level; 64]);
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        let before = areas.clone();
        inflate_areas(&d, &p, &congestion, &mut areas, &InflationConfig::default());
        for (a, b) in areas.iter().zip(&before) {
            prop_assert!(a >= b, "area shrank: {a} < {b}");
        }
    }

    #[test]
    fn inflation_multiplier_bounded_by_epsilon(level in 3.5f32..8.0, eps in 1.0f32..8.0, seed in 0u64..20) {
        let d = DesignPreset::design_136().with_scale(512, 64, 32).generate(seed);
        let p = d.random_placement(seed);
        let congestion = GridMap::from_vec(8, 8, vec![level; 64]);
        let cfg = InflationConfig { epsilon: eps, ..InflationConfig::default() };
        let mut areas: Vec<f32> = d
            .netlist
            .instances()
            .map(|(_, i)| i.kind.base_area())
            .collect();
        let before = areas.clone();
        inflate_areas(&d, &p, &congestion, &mut areas, &cfg);
        for (a, b) in areas.iter().zip(&before) {
            prop_assert!(a / b <= eps + 1e-4, "multiplier {} beyond eps {eps}", a / b);
        }
    }

    #[test]
    fn legalization_sites_unique_and_typed(seed in 0u64..20, preset_idx in 0usize..10) {
        let preset = DesignPreset::contest_suite().swap_remove(preset_idx);
        let d = preset.with_scale(512, 64, 32).generate(seed);
        let mut p = d.random_placement(seed ^ 0xAB);
        legalize_macros(&d, &mut p).expect("legalize");
        legalize_cells(&d, &mut p);
        let mut seen = HashSet::new();
        for m in d.netlist.macros() {
            let (x, y) = p.pos(m.0 as usize);
            prop_assert_eq!(x.fract(), 0.0);
            prop_assert_eq!(y.fract(), 0.0);
            prop_assert!(seen.insert((x as usize, y as usize)), "site reuse");
            prop_assert_eq!(
                d.arch.column_kind(x as usize),
                d.netlist.instance(m).kind.site_kind()
            );
        }
    }

    #[test]
    fn legalized_cascades_keep_order(seed in 0u64..20) {
        let d = DesignPreset::design_180().with_scale(512, 64, 32).generate(seed);
        let mut p = d.random_placement(seed);
        legalize_macros(&d, &mut p).expect("legalize");
        for c in &d.cascades {
            let (x0, y0) = p.pos(c.members[0].0 as usize);
            for (k, &m) in c.members.iter().enumerate() {
                let (x, y) = p.pos(m.0 as usize);
                prop_assert_eq!(x, x0);
                prop_assert_eq!(y, y0 + k as f32);
            }
        }
    }
}
