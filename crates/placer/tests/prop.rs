//! Randomized tests of inflation and legalization invariants (fixed seeds,
//! in-tree harness).

use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::gridmap::GridMap;
use mfaplace_placer::inflate::{inflate_areas, InflationConfig};
use mfaplace_placer::legal::{legalize_cells, legalize_macros};
use mfaplace_rt::check::run_cases;
use mfaplace_rt::rng::Rng;
use std::collections::HashSet;

#[test]
fn inflation_never_shrinks_areas() {
    run_cases(
        "inflation_never_shrinks_areas",
        12,
        0x9A_01,
        |_case, rng| {
            let level = rng.gen_range(0.0f32..8.0);
            let seed = rng.gen_range(0u64..30);
            let d = DesignPreset::design_136()
                .with_scale(512, 64, 32)
                .generate(seed);
            let p = d.random_placement(seed);
            let congestion = GridMap::from_vec(8, 8, vec![level; 64]);
            let mut areas: Vec<f32> = d
                .netlist
                .instances()
                .map(|(_, i)| i.kind.base_area())
                .collect();
            let before = areas.clone();
            inflate_areas(&d, &p, &congestion, &mut areas, &InflationConfig::default());
            for (a, b) in areas.iter().zip(&before) {
                assert!(a >= b, "area shrank: {a} < {b}");
            }
        },
    );
}

#[test]
fn inflation_multiplier_bounded_by_epsilon() {
    run_cases(
        "inflation_multiplier_bounded_by_epsilon",
        12,
        0x9A_02,
        |_case, rng| {
            let level = rng.gen_range(3.5f32..8.0);
            let eps = rng.gen_range(1.0f32..8.0);
            let seed = rng.gen_range(0u64..20);
            let d = DesignPreset::design_136()
                .with_scale(512, 64, 32)
                .generate(seed);
            let p = d.random_placement(seed);
            let congestion = GridMap::from_vec(8, 8, vec![level; 64]);
            let cfg = InflationConfig {
                epsilon: eps,
                ..InflationConfig::default()
            };
            let mut areas: Vec<f32> = d
                .netlist
                .instances()
                .map(|(_, i)| i.kind.base_area())
                .collect();
            let before = areas.clone();
            inflate_areas(&d, &p, &congestion, &mut areas, &cfg);
            for (a, b) in areas.iter().zip(&before) {
                assert!(a / b <= eps + 1e-4, "multiplier {} beyond eps {eps}", a / b);
            }
        },
    );
}

#[test]
fn legalization_sites_unique_and_typed() {
    run_cases(
        "legalization_sites_unique_and_typed",
        12,
        0x9A_03,
        |_case, rng| {
            let seed = rng.gen_range(0u64..20);
            let preset_idx = rng.gen_range(0usize..10);
            let preset = DesignPreset::contest_suite().swap_remove(preset_idx);
            let d = preset.with_scale(512, 64, 32).generate(seed);
            let mut p = d.random_placement(seed ^ 0xAB);
            legalize_macros(&d, &mut p).expect("legalize");
            legalize_cells(&d, &mut p);
            let mut seen = HashSet::new();
            for m in d.netlist.macros() {
                let (x, y) = p.pos(m.0 as usize);
                assert_eq!(x.fract(), 0.0);
                assert_eq!(y.fract(), 0.0);
                assert!(seen.insert((x as usize, y as usize)), "site reuse");
                assert_eq!(
                    d.arch.column_kind(x as usize),
                    d.netlist.instance(m).kind.site_kind()
                );
            }
        },
    );
}

#[test]
fn legalized_cascades_keep_order() {
    run_cases(
        "legalized_cascades_keep_order",
        12,
        0x9A_04,
        |_case, rng| {
            let seed = rng.gen_range(0u64..20);
            let d = DesignPreset::design_180()
                .with_scale(512, 64, 32)
                .generate(seed);
            let mut p = d.random_placement(seed);
            legalize_macros(&d, &mut p).expect("legalize");
            for c in &d.cascades {
                let (x0, y0) = p.pos(c.members[0].0 as usize);
                for (k, &m) in c.members.iter().enumerate() {
                    let (x, y) = p.pos(m.0 as usize);
                    assert_eq!(x, x0);
                    assert_eq!(y, y0 + k as f32);
                }
            }
        },
    );
}
