//! CI smoke test: boot a real server on an ephemeral port, drive it over
//! raw TCP (no client helpers on the hot path), and verify prediction,
//! metrics and graceful shutdown. Exits non-zero on any failure.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use mfaplace_core::loader::{init_checkpoint, LoadOptions};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::{protocol, serve, Metrics, ModelSlot, ServeConfig};
use mfaplace_tensor::Tensor;

fn raw_request(addr: &str, head: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("receive");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    let status: u16 = std::str::from_utf8(&raw[..header_end])
        .expect("utf8 head")
        .split(' ')
        .nth(1)
        .expect("status token")
        .parse()
        .expect("numeric status");
    (status, raw[header_end + 4..].to_vec())
}

fn main() {
    const GRID: usize = 16;
    let ckpt = std::env::temp_dir()
        .join("mfaplace_serve_smoke.mfaw")
        .to_string_lossy()
        .into_owned();
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    init_checkpoint(&spec, 42, &ckpt).expect("init checkpoint");

    let metrics = Arc::new(Metrics::new());
    let slot = ModelSlot::load(&ckpt, LoadOptions::default(), metrics.clone()).expect("load");
    let server = serve(
        slot,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    println!("smoke: serving {} on {addr}", spec.arch.model_name());

    // POST /predict with a real feature stack.
    let features = Tensor::from_fn(vec![6, GRID, GRID], |i| (i as f32 * 0.01).cos());
    let body = protocol::encode_features(&features);
    let head = format!(
        "POST /predict HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let (status, resp_body) = raw_request(&addr, &head, &body);
    assert_eq!(status, 200, "POST /predict must return 200");
    let levels = protocol::decode_levels(&resp_body).expect("decode levels");
    assert_eq!(levels.shape(), &[GRID, GRID]);
    assert!(
        levels.data().iter().all(|v| v.is_finite()),
        "levels must be finite"
    );
    println!("smoke: POST /predict -> 200, {}x{} level map", GRID, GRID);

    // GET /metrics reflects the request.
    let head = format!(
        "GET /metrics HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
    );
    let (status, resp_body) = raw_request(&addr, &head, b"");
    assert_eq!(status, 200, "GET /metrics must return 200");
    let text = String::from_utf8(resp_body).expect("utf8 metrics");
    for family in [
        "mfaplace_requests_total{endpoint=\"/predict\",status=\"200\"} 1",
        "mfaplace_batch_size_count 1",
        "mfaplace_model_version 1",
    ] {
        assert!(text.contains(family), "metrics missing {family:?}:\n{text}");
    }
    println!("smoke: GET /metrics -> 200 with expected families");

    // Graceful shutdown over the API.
    let head = format!(
        "POST /admin/shutdown HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
    );
    let (status, _) = raw_request(&addr, &head, b"");
    assert_eq!(status, 200, "POST /admin/shutdown must return 200");
    server.join();
    assert!(
        TcpStream::connect(&addr).is_err(),
        "port must be closed after shutdown"
    );
    std::fs::remove_file(&ckpt).ok();
    println!("smoke: graceful shutdown OK");
}
