//! CI smoke test for the model fleet: boot a real two-slot server from
//! one checkpoint file, route to each slot by header and by path, manage
//! slots at runtime through `POST /admin/slots`, and verify the shared
//! plan cache and per-slot metrics. Exits non-zero on any failure.

use std::sync::Arc;

use mfaplace_core::loader::{init_checkpoint, LoadOptions};
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::{
    client, serve_fleet, BatchConfig, Metrics, ModelFleet, ServeConfig, SlotLimits,
};
use mfaplace_tensor::Tensor;

fn main() {
    const GRID: usize = 16;
    let dir = std::env::temp_dir().join("mfaplace_fleet_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("shared.mfaw").to_string_lossy().into_owned();
    let other = dir.join("other.mfaw").to_string_lossy().into_owned();
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    init_checkpoint(&spec, 42, &ckpt).expect("init shared checkpoint");
    init_checkpoint(&spec, 43, &other).expect("init other checkpoint");

    // Two slots serving one byte-identical file share one plan set.
    let metrics = Arc::new(Metrics::new());
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), BatchConfig::default()));
    for name in ["prod", "canary"] {
        fleet
            .add_slot(name, &ckpt, LoadOptions::default(), SlotLimits::default())
            .expect("add slot");
    }
    let server = serve_fleet(
        fleet,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    println!("fleet-smoke: serving slots prod+canary on {addr}");

    let x = Tensor::from_fn(vec![6, GRID, GRID], |i| (i as f32 * 0.01).cos());

    // Header routing: both slots answer, and identically (same weights).
    let via_prod = client::predict_features_slot(&addr, Some("prod"), &x).expect("prod");
    let via_canary = client::predict_features_slot(&addr, Some("canary"), &x).expect("canary");
    assert_eq!(
        via_prod.data(),
        via_canary.data(),
        "same file, same answers"
    );
    // Unnamed requests land on the default slot (first added).
    let via_default = client::predict_features(&addr, &x).expect("default");
    assert_eq!(via_default.data(), via_prod.data());
    println!("fleet-smoke: header + default routing OK");

    // Path routing and the fleet listing.
    let body = mfaplace_serve::protocol::encode_features(&x);
    let r = client::request(&addr, "POST", "/models/canary/predict", &[], &body).expect("path");
    assert_eq!(r.status, 200, "POST /models/canary/predict: {}", r.text());
    let listing = client::request(&addr, "GET", "/models", &[], b"")
        .expect("list")
        .text();
    assert!(
        listing.contains("prod") && listing.contains("canary"),
        "{listing}"
    );
    println!("fleet-smoke: path routing + GET /models OK");

    // Unknown slots get the distinct 404.
    let err = client::predict_features_slot(&addr, Some("ghost"), &x).unwrap_err();
    assert!(err.contains("no such model slot"), "{err}");

    // Runtime slot management: add, reload, remove.
    let cmd = format!("add extra {other} queue=16");
    let r = client::request(&addr, "POST", "/admin/slots", &[], cmd.as_bytes()).expect("add");
    assert_eq!(r.status, 200, "add: {}", r.text());
    let via_extra = client::predict_features_slot(&addr, Some("extra"), &x).expect("extra");
    assert_ne!(via_extra.data(), via_prod.data(), "different weights");
    let cmd = format!("reload extra {ckpt}");
    let r = client::request(&addr, "POST", "/admin/slots", &[], cmd.as_bytes()).expect("reload");
    assert_eq!(r.status, 200, "reload: {}", r.text());
    let r = client::request(&addr, "POST", "/admin/slots", &[], b"remove extra").expect("remove");
    assert_eq!(r.status, 200, "remove: {}", r.text());
    println!("fleet-smoke: POST /admin/slots add/reload/remove OK");

    // The scrape shows per-slot series and the shared plan cache: the two
    // original slots compiled the [1,6,G,G] shape once between them.
    let scrape = client::request(&addr, "GET", "/metrics", &[], b"")
        .expect("metrics")
        .text();
    for family in [
        "mfaplace_slot_requests_total{slot=\"prod\",status=\"200\"}",
        "mfaplace_slot_requests_total{slot=\"canary\",status=\"200\"}",
        "mfaplace_plan_cache_hits_total",
    ] {
        assert!(
            scrape.contains(family),
            "metrics missing {family:?}:\n{scrape}"
        );
    }
    println!("fleet-smoke: per-slot + plan-cache metrics OK");

    server.join();
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&other).ok();
    println!("fleet-smoke: graceful shutdown OK");
}
