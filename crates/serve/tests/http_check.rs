//! Randomized robustness tests for the HTTP parser and the binary wire
//! codecs, driven by `mfaplace_rt::check`: whatever bytes arrive, the
//! parser must return a typed error or a valid request — never panic,
//! never allocate unboundedly.

use mfaplace_rt::check::{run_cases, vec_u8};
use mfaplace_rt::rng::Rng;
use mfaplace_serve::http::{HttpError, Request};
use mfaplace_serve::protocol;

const MAX_BODY: usize = 1 << 20;

fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
    Request::read_from(&mut &bytes[..], MAX_BODY)
}

#[test]
fn random_bytes_never_panic_the_parser() {
    run_cases("http_random_bytes", 64, 0x4774, |_case, rng| {
        let len = rng.gen_range(0..512usize);
        let bytes = vec_u8(rng, len, 0, 255);
        let _ = parse(&bytes);
    });
}

#[test]
fn random_ascii_soup_never_panics() {
    run_cases("http_ascii_soup", 64, 0x4775, |_case, rng| {
        let len = rng.gen_range(0..2048usize);
        // Printable ASCII plus CR/LF so header structure appears by chance.
        let bytes: Vec<u8> = (0..len)
            .map(|_| match rng.gen_range(0..10u32) {
                0 => b'\r',
                1 => b'\n',
                2 => b' ',
                3 => b':',
                _ => rng.gen_range(33..127u32) as u8,
            })
            .collect();
        let _ = parse(&bytes);
    });
}

#[test]
fn truncating_a_valid_request_gives_typed_errors() {
    let full = b"POST /predict HTTP/1.1\r\ncontent-type: application/octet-stream\r\ncontent-length: 16\r\n\r\n0123456789abcdef";
    assert!(parse(full).is_ok());
    run_cases("http_truncation", 64, 0x4776, |_case, rng| {
        let cut = rng.gen_range(0..full.len());
        match parse(&full[..cut]) {
            Ok(req) => {
                // Only possible when the cut removed body bytes but the
                // header survived — impossible here because content-length
                // then exceeds what remains.
                panic!("truncated request unexpectedly parsed: {req:?}");
            }
            Err(HttpError::BadRequest(_)) => {}
            Err(other) => panic!("want BadRequest, got {other:?}"),
        }
    });
}

#[test]
fn corrupted_headers_reject_without_panic() {
    let full = b"GET /metrics HTTP/1.1\r\nhost: localhost\r\n\r\n".to_vec();
    run_cases("http_corruption", 128, 0x4777, |_case, rng| {
        let mut bytes = full.clone();
        let at = rng.gen_range(0..bytes.len());
        bytes[at] = rng.gen_range(0..=255u32) as u8;
        // Either still parses (benign corruption) or rejects cleanly.
        let _ = parse(&bytes);
    });
}

#[test]
fn oversized_declared_bodies_rejected_as_too_large() {
    run_cases("http_oversize", 16, 0x4778, |_case, rng| {
        let n = MAX_BODY as u64 + rng.gen_range(1..1_000_000u64);
        let req = format!("POST /predict HTTP/1.1\r\ncontent-length: {n}\r\n\r\n");
        match parse(req.as_bytes()) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("want TooLarge, got {other:?}"),
        }
    });
}

#[test]
fn feature_codec_never_panics_on_random_bytes() {
    run_cases("protocol_random", 64, 0x4779, |_case, rng| {
        let len = rng.gen_range(0..256usize);
        let bytes = vec_u8(rng, len, 0, 255);
        let _ = protocol::decode_features(&bytes);
        let _ = protocol::decode_levels(&bytes);
    });
}

#[test]
fn feature_codec_rejects_any_truncation() {
    let t = mfaplace_tensor::Tensor::from_fn(vec![6, 8, 8], |i| i as f32);
    let bytes = protocol::encode_features(&t);
    run_cases("protocol_truncation", 64, 0x477A, |_case, rng| {
        let cut = rng.gen_range(0..bytes.len());
        assert!(
            protocol::decode_features(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must be rejected"
        );
    });
}
