//! Fleet end-to-end tests: multiple named model slots behind one real
//! server. The central assertions are that routing (header or path) hits
//! exactly the named slot with bitwise-identical results, that slots are
//! isolated (reloading one never disturbs traffic on another), and that
//! slots serving byte-identical checkpoints share one compiled plan set
//! in the fleet-wide cache.

use std::sync::Arc;

use mfaplace_core::loader::{init_checkpoint, load_predictor, LoadOptions};
use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::io;
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::batcher::BatchConfig;
use mfaplace_serve::{
    client, protocol, serve_fleet, Metrics, ModelFleet, ServeConfig, ServerHandle, SlotLimits,
};
use mfaplace_tensor::Tensor;

const GRID: usize = 16;

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("mfaplace_fleet_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn checkpoint(name: &str, seed: u64) -> String {
    let path = temp_path(name);
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    init_checkpoint(&spec, seed, &path).unwrap();
    path
}

/// Starts a fleet server with one slot per `(name, checkpoint)` pair; the
/// first pair becomes the default routing target.
fn start_fleet(slots: &[(&str, &str)]) -> ServerHandle {
    let metrics = Arc::new(Metrics::new());
    let fleet = Arc::new(ModelFleet::new(metrics.clone(), BatchConfig::default()));
    for (name, ckpt) in slots {
        fleet
            .add_slot(name, ckpt, LoadOptions::default(), SlotLimits::default())
            .unwrap();
    }
    serve_fleet(
        fleet,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn input(seed: f32) -> Tensor {
    Tensor::from_fn(vec![6, GRID, GRID], |i| ((i as f32) * 0.017 + seed).sin())
}

/// Local single-item ground truth for the checkpoint at `ckpt`.
fn local_reference(ckpt: &str, x: &Tensor) -> Tensor {
    let (_, mut predictor) = load_predictor(ckpt, LoadOptions::default()).unwrap();
    predictor
        .predict_batch_tensors(std::slice::from_ref(x))
        .pop()
        .unwrap()
}

#[test]
fn header_and_path_routing_hit_the_named_slot_bitwise() {
    let ckpt_a = checkpoint("route_a.mfaw", 21);
    let ckpt_b = checkpoint("route_b.mfaw", 22);
    let server = start_fleet(&[("alpha", &ckpt_a), ("beta", &ckpt_b)]);
    let addr = server.addr().to_string();

    let x = input(0.25);
    let want_a = local_reference(&ckpt_a, &x);
    let want_b = local_reference(&ckpt_b, &x);
    assert_ne!(want_a.data(), want_b.data(), "seeds must differ");

    // Header routing.
    let via_header_a = client::predict_features_slot(&addr, Some("alpha"), &x).unwrap();
    let via_header_b = client::predict_features_slot(&addr, Some("beta"), &x).unwrap();
    assert_eq!(via_header_a.data(), want_a.data());
    assert_eq!(via_header_b.data(), want_b.data());

    // Unnamed requests go to the default (first-added) slot.
    let via_default = client::predict_features(&addr, &x).unwrap();
    assert_eq!(via_default.data(), want_a.data());

    // Path routing hits the same slots.
    for (slot, want) in [("alpha", &want_a), ("beta", &want_b)] {
        let r = client::request(
            &addr,
            "POST",
            &format!("/models/{slot}/predict"),
            &[],
            &protocol::encode_features(&x),
        )
        .unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let got = protocol::decode_levels(&r.body).unwrap();
        assert_eq!(got.data(), want.data(), "path routing to {slot}");
    }

    // Design-text requests route per slot too.
    let design = DesignPreset::design_116()
        .with_scale(256, 32, 16)
        .generate(3);
    let placement = design.random_placement(4);
    let dt = io::write_design(&design);
    let pt = io::write_placement(&placement);
    let d_a = client::predict_design_slot(&addr, Some("alpha"), &dt, &pt).unwrap();
    let d_b = client::predict_design_slot(&addr, Some("beta"), &dt, &pt).unwrap();
    assert_ne!(d_a.data(), d_b.data());

    // GET /models lists both slots and marks the default.
    let listing = client::request(&addr, "GET", "/models", &[], b"")
        .unwrap()
        .text();
    assert!(
        listing.contains("alpha ") && listing.contains("beta "),
        "{listing}"
    );
    assert!(
        listing
            .lines()
            .any(|l| l.starts_with("alpha") && l.ends_with("default")),
        "{listing}"
    );

    server.join();
}

#[test]
fn unknown_slot_gets_a_distinct_404() {
    let ckpt = checkpoint("unknown_a.mfaw", 23);
    let server = start_fleet(&[("only", &ckpt)]);
    let addr = server.addr().to_string();

    // Header routing to a missing slot: the client surfaces the server's
    // 404 body verbatim (it names the slot and lists the loaded ones)
    // rather than wrapping it in a generic "server returned …" message.
    let err = client::predict_features_slot(&addr, Some("ghost"), &input(0.0)).unwrap_err();
    assert!(err.starts_with("no such model slot \"ghost\""), "{err}");
    assert!(
        err.contains("only"),
        "404 body must list loaded slots: {err}"
    );

    // Path routing to a missing slot.
    let r = client::request(
        &addr,
        "POST",
        "/models/ghost/predict",
        &[],
        &protocol::encode_features(&input(0.0)),
    )
    .unwrap();
    assert_eq!(r.status, 404);
    assert!(r.text().contains("no such model slot"), "{}", r.text());

    // Reload of a missing slot is a 404, not a 409.
    let r = client::request(
        &addr,
        "POST",
        "/admin/slots",
        &[],
        b"reload ghost nope.mfaw",
    )
    .unwrap();
    assert_eq!(r.status, 404, "{}", r.text());

    server.join();
}

#[test]
fn admin_slots_add_remove_reload_lifecycle() {
    let ckpt_a = checkpoint("admin_a.mfaw", 24);
    let ckpt_b = checkpoint("admin_b.mfaw", 25);
    let ckpt_b2 = checkpoint("admin_b2.mfaw", 26);
    let server = start_fleet(&[("main", &ckpt_a)]);
    let addr = server.addr().to_string();

    let x = input(0.5);

    // Add a second slot at runtime; it becomes routable immediately.
    let cmd = format!("add extra {ckpt_b} queue=8 deadline_ms=5000");
    let r = client::request(&addr, "POST", "/admin/slots", &[], cmd.as_bytes()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let got = client::predict_features_slot(&addr, Some("extra"), &x).unwrap();
    assert_eq!(got.data(), local_reference(&ckpt_b, &x).data());

    // Duplicate adds conflict.
    let r = client::request(&addr, "POST", "/admin/slots", &[], cmd.as_bytes()).unwrap();
    assert_eq!(r.status, 409, "{}", r.text());

    // Reload swaps only that slot; the slot listing bumps its version.
    let cmd = format!("reload extra {ckpt_b2}");
    let r = client::request(&addr, "POST", "/admin/slots", &[], cmd.as_bytes()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("version 2"), "{}", r.text());
    let got = client::predict_features_slot(&addr, Some("extra"), &x).unwrap();
    assert_eq!(got.data(), local_reference(&ckpt_b2, &x).data());
    let listing = client::request(&addr, "GET", "/admin/slots", &[], b"")
        .unwrap()
        .text();
    assert!(
        listing
            .lines()
            .any(|l| l.starts_with("extra") && l.contains("version=2")),
        "{listing}"
    );

    // The default slot was untouched throughout.
    let got = client::predict_features(&addr, &x).unwrap();
    assert_eq!(got.data(), local_reference(&ckpt_a, &x).data());

    // Remove the extra slot; its routing key 404s afterwards.
    let r = client::request(&addr, "POST", "/admin/slots", &[], b"remove extra").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let err = client::predict_features_slot(&addr, Some("extra"), &x).unwrap_err();
    assert!(err.contains("no such model slot"), "{err}");

    // The default slot is protected from removal.
    let r = client::request(&addr, "POST", "/admin/slots", &[], b"remove main").unwrap();
    assert_eq!(r.status, 409, "{}", r.text());

    // Garbage commands get the usage text.
    let r = client::request(&addr, "POST", "/admin/slots", &[], b"frobnicate").unwrap();
    assert_eq!(r.status, 400);

    server.join();
}

#[test]
fn reloading_one_slot_never_interrupts_another() {
    let ckpt_a = checkpoint("isolate_a.mfaw", 27);
    let ckpt_b = checkpoint("isolate_b.mfaw", 28);
    let ckpt_b2 = checkpoint("isolate_b2.mfaw", 29);
    let server = start_fleet(&[("steady", &ckpt_a), ("churn", &ckpt_b)]);
    let addr = server.addr().to_string();

    let x = input(0.75);
    let want = local_reference(&ckpt_a, &x);

    std::thread::scope(|s| {
        // Hammer the steady slot while the churn slot reloads repeatedly.
        let predictor = {
            let addr = addr.clone();
            let want = want.clone();
            s.spawn(move || {
                for i in 0..40 {
                    let got = client::predict_features_slot(&addr, Some("steady"), &x)
                        .unwrap_or_else(|e| panic!("predict {i} on steady slot failed: {e}"));
                    assert_eq!(got.data(), want.data(), "prediction {i} changed");
                }
            })
        };
        let reloader = {
            let addr = addr.clone();
            s.spawn(move || {
                for i in 0..10 {
                    let path = if i % 2 == 0 { &ckpt_b2 } else { &ckpt_b };
                    let cmd = format!("reload churn {path}");
                    let r = client::request(&addr, "POST", "/admin/slots", &[], cmd.as_bytes())
                        .unwrap();
                    assert_eq!(r.status, 200, "{}", r.text());
                }
            })
        };
        predictor.join().unwrap();
        reloader.join().unwrap();
    });

    server.join();
}

#[test]
fn slots_serving_one_file_share_one_compiled_plan_set() {
    let ckpt = checkpoint("shared_plan.mfaw", 30);
    let server = start_fleet(&[("a", &ckpt), ("b", &ckpt)]);
    let addr = server.addr().to_string();

    let x = input(1.5);
    let got_a = client::predict_features_slot(&addr, Some("a"), &x).unwrap();
    let got_b = client::predict_features_slot(&addr, Some("b"), &x).unwrap();
    assert_eq!(got_a.data(), got_b.data(), "same file, same answers");

    let metrics = client::request(&addr, "GET", "/metrics", &[], b"")
        .unwrap()
        .text();
    let gauge = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("missing gauge {name} in scrape:\n{metrics}"))
    };
    // Both slots ran the same [1,6,G,G] shape: one capture, one cache hit.
    assert_eq!(gauge("mfaplace_plan_cache_entries "), 1, "{metrics}");
    assert!(gauge("mfaplace_plan_cache_bytes ") > 0, "{metrics}");
    assert!(gauge("mfaplace_plan_cache_hits_total ") >= 1, "{metrics}");
    assert_eq!(
        gauge("mfaplace_plan_cache_evictions_total "),
        0,
        "{metrics}"
    );

    // Per-slot request series exist alongside the aggregate family.
    assert!(
        metrics.contains("mfaplace_slot_requests_total{slot=\"a\",status=\"200\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mfaplace_slot_requests_total{slot=\"b\",status=\"200\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mfaplace_requests_total{endpoint=\"/predict\",status=\"200\"} 2"),
        "{metrics}"
    );

    server.join();
}
