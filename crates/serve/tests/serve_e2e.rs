//! End-to-end tests: a real server on an ephemeral port, real sockets,
//! concurrent clients. The central assertion is that responses produced
//! by coalesced batches are **bitwise identical** to single-item local
//! inference on the same checkpoint.

use std::sync::Arc;
use std::time::Duration;

use mfaplace_core::loader::{init_checkpoint, load_predictor, LoadOptions};
use mfaplace_core::predictor::Engine;
use mfaplace_fpga::design::DesignPreset;
use mfaplace_fpga::io;
use mfaplace_models::{Arch, ArchSpec};
use mfaplace_serve::batcher::BatchConfig;
use mfaplace_serve::{client, serve, Metrics, ModelSlot, ServeConfig, ServerHandle};
use mfaplace_tensor::Tensor;

const GRID: usize = 16;

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("mfaplace_serve_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn tiny_spec() -> ArchSpec {
    let mut spec = ArchSpec::new(Arch::UNet, GRID);
    spec.base_channels = 2;
    spec
}

fn checkpoint(name: &str, seed: u64) -> String {
    let path = temp_path(name);
    init_checkpoint(&tiny_spec(), seed, &path).unwrap();
    path
}

fn start_server(ckpt: &str, batch: BatchConfig) -> ServerHandle {
    let metrics = Arc::new(Metrics::new());
    let slot = ModelSlot::load(ckpt, LoadOptions::default(), metrics.clone()).unwrap();
    serve(
        slot,
        metrics,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn input(seed: f32) -> Tensor {
    Tensor::from_fn(vec![6, GRID, GRID], |i| ((i as f32) * 0.013 + seed).sin())
}

#[test]
fn concurrent_batched_responses_are_bitwise_identical_to_local_inference() {
    let ckpt = checkpoint("e2e_main.mfaw", 7);
    let server = start_server(
        &ckpt,
        BatchConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(20),
            queue_bound: 64,
        },
    );
    let addr = server.addr().to_string();

    // Local ground truth: the same checkpoint, predicted one at a time.
    let (_, mut reference) = load_predictor(&ckpt, LoadOptions::default()).unwrap();
    let inputs: Vec<Tensor> = (0..8).map(|i| input(i as f32)).collect();
    let expected: Vec<Tensor> = inputs
        .iter()
        .map(|x| {
            reference
                .predict_batch_tensors(std::slice::from_ref(x))
                .pop()
                .unwrap()
        })
        .collect();

    // Fire all 8 requests concurrently so the micro-batcher coalesces them.
    let got: Vec<Tensor> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|x| {
                let addr = addr.clone();
                s.spawn(move || client::predict_features(&addr, x).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g.shape(), &[GRID, GRID]);
        assert_eq!(
            g.data(),
            e.data(),
            "request {i}: batched response differs from local single-item inference"
        );
    }

    // The scrape must reflect the traffic, including batch coalescing.
    let metrics = client::request(&addr, "GET", "/metrics", &[], b"")
        .unwrap()
        .text();
    assert!(
        metrics.contains("mfaplace_requests_total{endpoint=\"/predict\",status=\"200\"} 8"),
        "{metrics}"
    );
    assert!(metrics.contains("mfaplace_batch_size_sum 8"), "{metrics}");
    assert!(
        metrics.contains("mfaplace_request_latency_seconds{quantile=\"0.99\"}"),
        "{metrics}"
    );
    // The graph buffer pool flushes its counters into the process-wide
    // runtime counter registry on every tape truncation, so after the
    // predict traffic above the scrape must carry them. The reference
    // predictor ran 8 repeated-shape forwards in this process, so recycling
    // has both populated (misses) and reused (hits) the free lists.
    assert!(
        metrics.contains("mfaplace_rt_counter{name=\"graph/pool_misses\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mfaplace_rt_counter{name=\"graph/pool_hits\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mfaplace_rt_counter{name=\"graph/pool_recycled_bytes\"}"),
        "{metrics}"
    );

    server.join();
}

#[test]
fn metrics_expose_engine_plan_gauges_and_per_engine_timers() {
    let ckpt = checkpoint("e2e_engine.mfaw", 13);
    let server = start_server(&ckpt, BatchConfig::default());
    let addr = server.addr().to_string();

    // This test is specifically about the plan engine's gauges, so pin the
    // engine through the admin API instead of inheriting the process
    // default (ci runs the workspace once under MFAPLACE_ENGINE=quant).
    let resp = client::request(&addr, "POST", "/admin/engine", &[], b"plan").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Serve traffic runs on the plan engine, populating the compiled-plan
    // gauges and the plan-side forward timer.
    for i in 0..3 {
        client::predict_features(&addr, &input(i as f32)).unwrap();
    }
    // The runtime timer registry is process-wide, so one local tape-engine
    // forward is enough to make the tape-side timer show up in the scrape.
    let (_, mut tape_ref) = load_predictor(&ckpt, LoadOptions::default()).unwrap();
    tape_ref.set_engine(Engine::Tape);
    tape_ref.predict_batch_tensors(std::slice::from_ref(&input(0.0)));

    let metrics = client::request(&addr, "GET", "/metrics", &[], b"")
        .unwrap()
        .text();
    assert!(
        metrics.contains("mfaplace_engine_info{engine=\"plan\"} 1"),
        "{metrics}"
    );
    let gauge = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("missing gauge {name} in scrape:\n{metrics}"))
    };
    assert!(gauge("mfaplace_infer_plan_ops ") > 0, "{metrics}");
    assert!(gauge("mfaplace_infer_plan_arena_bytes ") > 0, "{metrics}");
    assert!(
        metrics.contains("mfaplace_rt_timer_calls{scope=\"core/forward_plan\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mfaplace_rt_timer_calls{scope=\"core/forward_tape\"}"),
        "{metrics}"
    );

    server.join();
}

#[test]
fn design_request_is_featurized_server_side() {
    let ckpt = checkpoint("e2e_design.mfaw", 8);
    let server = start_server(&ckpt, BatchConfig::default());
    let addr = server.addr().to_string();

    let design = DesignPreset::design_116()
        .with_scale(256, 32, 16)
        .generate(3);
    let placement = design.random_placement(4);
    let design_text = io::write_design(&design);
    let placement_text = io::write_placement(&placement);

    let via_design = client::predict_design(&addr, &design_text, &placement_text).unwrap();

    // Featurizing locally and posting the stack must give the same answer.
    let features =
        mfaplace_fpga::features::FeatureStack::extract(&design, &placement, GRID, GRID).to_tensor();
    let via_features = client::predict_features(&addr, &features).unwrap();
    assert_eq!(via_design.data(), via_features.data());

    server.join();
}

#[test]
fn malformed_requests_get_clean_4xx() {
    let ckpt = checkpoint("e2e_bad.mfaw", 9);
    let server = start_server(&ckpt, BatchConfig::default());
    let addr = server.addr().to_string();

    // Garbage body.
    let r = client::request(&addr, "POST", "/predict", &[], b"not features").unwrap();
    assert_eq!(r.status, 400, "{}", r.text());

    // Valid encoding, wrong grid for the served model.
    let wrong = mfaplace_serve::protocol::encode_features(&Tensor::zeros(vec![6, 32, 32]));
    let r = client::request(&addr, "POST", "/predict", &[], &wrong).unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    assert!(r.text().contains("does not match"), "{}", r.text());

    // Unknown path and wrong method.
    let r = client::request(&addr, "GET", "/nope", &[], b"").unwrap();
    assert_eq!(r.status, 404);
    let r = client::request(&addr, "GET", "/predict", &[], b"").unwrap();
    assert_eq!(r.status, 405);

    // Design request without the separator.
    let r = client::request(&addr, "POST", "/predict/design", &[], b"one part only").unwrap();
    assert_eq!(r.status, 400, "{}", r.text());

    // Health stays green through all of it.
    let r = client::request(&addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(r.status, 200);

    server.join();
}

#[test]
fn hot_reload_swaps_checkpoints_atomically() {
    let ckpt_a = checkpoint("e2e_reload_a.mfaw", 10);
    let ckpt_b = checkpoint("e2e_reload_b.mfaw", 999);
    let server = start_server(&ckpt_a, BatchConfig::default());
    let addr = server.addr().to_string();

    let x = input(0.5);
    let before = client::predict_features(&addr, &x).unwrap();

    // A corrupt checkpoint is rejected with 409 and serving is unaffected.
    let corrupt = temp_path("e2e_corrupt.mfaw");
    std::fs::write(&corrupt, b"MFAW????").unwrap();
    let r = client::request(&addr, "POST", "/admin/reload", &[], corrupt.as_bytes()).unwrap();
    assert_eq!(r.status, 409, "{}", r.text());
    let still = client::predict_features(&addr, &x).unwrap();
    assert_eq!(before.data(), still.data());

    // A good checkpoint swaps in and bumps the version.
    let r = client::request(&addr, "POST", "/admin/reload", &[], ckpt_b.as_bytes()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("version 2"), "{}", r.text());
    let model = client::request(&addr, "GET", "/model", &[], b"")
        .unwrap()
        .text();
    assert!(model.contains("version 2"), "{model}");

    let after = client::predict_features(&addr, &x).unwrap();
    assert_ne!(
        before.data(),
        after.data(),
        "new weights must change predictions"
    );

    // And the reloaded model serves exactly what a local load of B serves.
    let (_, mut reference) = load_predictor(&ckpt_b, LoadOptions::default()).unwrap();
    let expected = reference
        .predict_batch_tensors(std::slice::from_ref(&x))
        .pop()
        .unwrap();
    assert_eq!(after.data(), expected.data());

    server.join();
}

#[test]
fn queue_backpressure_returns_429_over_http() {
    let ckpt = checkpoint("e2e_backpressure.mfaw", 11);
    // A long window and a tiny queue: the worker holds the first batch
    // open while the queue fills behind it.
    let server = start_server(
        &ckpt,
        BatchConfig {
            max_batch: 8,
            batch_window: Duration::from_secs(2),
            queue_bound: 2,
        },
    );
    let addr = server.addr().to_string();

    let (first, second) = std::thread::scope(|s| {
        let a = {
            let addr = addr.clone();
            s.spawn(move || client::predict_features(&addr, &input(1.0)))
        };
        let b = {
            let addr = addr.clone();
            s.spawn(move || client::predict_features(&addr, &input(2.0)))
        };
        // Give both time to enqueue, then overflow the bound.
        std::thread::sleep(Duration::from_millis(300));
        let r = client::request(
            &addr,
            "POST",
            "/predict",
            &[],
            &mfaplace_serve::protocol::encode_features(&input(3.0)),
        )
        .unwrap();
        assert_eq!(r.status, 429, "{}", r.text());
        (a.join().unwrap(), b.join().unwrap())
    });
    // The queued requests still complete once the window closes.
    assert!(first.is_ok() && second.is_ok());

    let metrics = client::request(&addr, "GET", "/metrics", &[], b"")
        .unwrap()
        .text();
    assert!(
        metrics.contains("mfaplace_queue_rejections_total 1"),
        "{metrics}"
    );

    server.join();
}

#[test]
fn admin_shutdown_drains_gracefully() {
    let ckpt = checkpoint("e2e_shutdown.mfaw", 12);
    let server = start_server(&ckpt, BatchConfig::default());
    let addr = server.addr().to_string();

    assert!(client::predict_features(&addr, &input(0.0)).is_ok());
    let r = client::request(&addr, "POST", "/admin/shutdown", &[], b"").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.text().contains("draining"), "{}", r.text());

    // join() returns only after the accept loop, connections and worker
    // have all exited.
    server.join();

    // The port no longer answers.
    let gone = client::request(&addr, "GET", "/healthz", &[], b"");
    assert!(gone.is_err());
}
