//! A tiny blocking HTTP client for the service, used by the CLI
//! `predict` subcommand, the smoke example and the end-to-end tests.
//! Like the server it speaks one-request-per-connection HTTP/1.1 over
//! plain `std::net`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use mfaplace_tensor::Tensor;

use crate::protocol;

/// A raw HTTP exchange result.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as (lossy) text — for error messages and `/metrics`.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:8953`).
///
/// # Errors
///
/// Returns a human-readable error on connection failure or a malformed
/// response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {addr}: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("receive {addr}: {e}"))?;
    parse_response(&raw)
}

/// Performs one request against `addr` and consumes the response body as
/// a line stream: `on_line` is called once per line (without the trailing
/// newline) as lines arrive, until the server closes the connection or
/// `on_line` returns `false`. This is the client side of the server's
/// streaming (no-content-length) responses, e.g. `GET /jobs/<id>/events`.
///
/// Returns the HTTP status code.
///
/// # Errors
///
/// Returns a human-readable error on connection failure or a malformed
/// response head.
pub fn stream_lines(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    on_line: &mut dyn FnMut(&str) -> bool,
) -> Result<u16, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send {addr}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("receive {addr}: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {:?}", status_line.trim_end()))?;
    // Skip the remaining response headers.
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("receive {addr}: {e}"))?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("receive {addr}: {e}"))?;
        if n == 0 {
            break;
        }
        if !on_line(line.trim_end_matches(['\r', '\n'])) {
            break;
        }
    }
    Ok(status)
}

/// Maps a non-200 predict response to the error message shown to the
/// user. The server's unknown-slot 404 body already names the requested
/// slot *and lists the loaded ones*, so it is surfaced verbatim instead
/// of being buried in a generic "server returned …" wrapper.
fn predict_error(status: u16, body: &str) -> String {
    let body = body.trim();
    if status == 404 && body.starts_with("no such model slot") {
        return body.to_owned();
    }
    format!("server returned {status}: {body}")
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| "non-utf8 response headers".to_owned())?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok(ClientResponse {
        status,
        body: raw[header_end + 4..].to_vec(),
    })
}

/// Sends a pre-featurized `[6, H, W]` stack to `POST /predict` and decodes
/// the `[H, W]` level map.
///
/// # Errors
///
/// Returns the transport error, or the server's error body on a non-200
/// status.
pub fn predict_features(addr: &str, features: &Tensor) -> Result<Tensor, String> {
    predict_features_slot(addr, None, features)
}

/// Like [`predict_features`], routed to fleet slot `slot` via the
/// `x-mfaplace-model` header (`None` targets the default slot).
///
/// # Errors
///
/// Returns the transport error, or the server's error body on a non-200
/// status (including the unknown-slot 404).
pub fn predict_features_slot(
    addr: &str,
    slot: Option<&str>,
    features: &Tensor,
) -> Result<Tensor, String> {
    let mut headers = vec![("content-type", "application/octet-stream")];
    if let Some(name) = slot {
        headers.push(("x-mfaplace-model", name));
    }
    let resp = request(
        addr,
        "POST",
        "/predict",
        &headers,
        &protocol::encode_features(features),
    )?;
    if resp.status != 200 {
        return Err(predict_error(resp.status, &resp.text()));
    }
    protocol::decode_levels(&resp.body)
}

/// Sends textual design + placement to `POST /predict/design` and decodes
/// the `[H, W]` level map.
///
/// # Errors
///
/// Returns the transport error, or the server's error body on a non-200
/// status.
pub fn predict_design(
    addr: &str,
    design_text: &str,
    placement_text: &str,
) -> Result<Tensor, String> {
    predict_design_slot(addr, None, design_text, placement_text)
}

/// Like [`predict_design`], routed to fleet slot `slot` via the
/// `x-mfaplace-model` header (`None` targets the default slot).
///
/// # Errors
///
/// Returns the transport error, or the server's error body on a non-200
/// status (including the unknown-slot 404).
pub fn predict_design_slot(
    addr: &str,
    slot: Option<&str>,
    design_text: &str,
    placement_text: &str,
) -> Result<Tensor, String> {
    let body = protocol::encode_design_request(design_text, placement_text);
    let mut headers = vec![("content-type", "text/plain")];
    if let Some(name) = slot {
        headers.push(("x-mfaplace-model", name));
    }
    let resp = request(addr, "POST", "/predict/design", &headers, body.as_bytes())?;
    if resp.status != 200 {
        return Err(predict_error(resp.status, &resp.text()));
    }
    protocol::decode_levels(&resp.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-length: 5\r\n\r\nfull\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.text(), "full\n");
    }

    #[test]
    fn rejects_garbage_response() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn unknown_slot_404_surfaces_server_body_verbatim() {
        // The server's unknown-slot body names the slot and lists what is
        // loaded; the client must pass that through unchanged so the CLI
        // user sees the available slot names.
        let body = "no such model slot \"staging\"; loaded slots: default, canary\n";
        let msg = predict_error(404, body);
        assert_eq!(
            msg,
            "no such model slot \"staging\"; loaded slots: default, canary"
        );
    }

    #[test]
    fn other_errors_keep_the_status_wrapper() {
        assert_eq!(
            predict_error(429, "queue full, retry later\n"),
            "server returned 429: queue full, retry later"
        );
        // A 404 that is not the unknown-slot shape stays wrapped too.
        assert_eq!(
            predict_error(404, "no such endpoint\n"),
            "server returned 404: no such endpoint"
        );
    }
}
