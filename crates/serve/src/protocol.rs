//! Wire formats of the prediction service.
//!
//! Two request flavors, both answered with the same binary level map:
//!
//! - **Pre-featurized** (`POST /predict`): the client sends the six-channel
//!   feature stack as little-endian binary — `u32 c, u32 h, u32 w` followed
//!   by `c*h*w` `f32` values in channel-major order (exactly
//!   `FeatureStack::to_tensor` layout).
//! - **Server-side featurization** (`POST /predict/design`): the client
//!   sends the textual design and placement (the `.nl`/`.pl` formats of
//!   `mfaplace_fpga::io`) concatenated with a `---PLACEMENT---` separator
//!   line; the server extracts features itself.
//!
//! Responses carry `u32 h, u32 w` followed by `h*w` `f32` expected
//! congestion levels (`0..=7` scale), row-major.

use mfaplace_fpga::design::Design;
use mfaplace_fpga::features::{FeatureStack, NUM_FEATURES};
use mfaplace_fpga::io;
use mfaplace_fpga::placement::Placement;
use mfaplace_tensor::Tensor;

/// Separator line between the design and placement parts of a
/// `POST /predict/design` body.
pub const PART_SEPARATOR: &str = "---PLACEMENT---";

/// Number of feature channels every request must carry (the six channels
/// of [`FeatureStack`]).
pub const NUM_WIRE_FEATURES: usize = NUM_FEATURES;

/// Largest accepted grid side, matching the paper's full-scale 256 grid
/// with headroom.
pub const MAX_GRID: usize = 1024;

/// Encodes a `[C, H, W]` feature stack into the request wire format.
pub fn encode_features(t: &Tensor) -> Vec<u8> {
    assert_eq!(t.rank(), 3, "features must be [C, H, W]");
    let mut out = Vec::with_capacity(12 + t.numel() * 4);
    for &d in t.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a feature-stack request body into a `[6, H, W]` tensor.
///
/// # Errors
///
/// Returns a description of the problem when the header is short, the
/// channel count is not six, the grid is implausible, or the payload
/// length disagrees with the header.
pub fn decode_features(bytes: &[u8]) -> Result<Tensor, String> {
    let (c, h, w, data) = decode_array(bytes)?;
    if c != NUM_FEATURES {
        return Err(format!("expected {NUM_FEATURES} feature channels, got {c}"));
    }
    Tensor::from_vec(vec![c, h, w], data).map_err(|e| e.to_string())
}

/// Encodes an `[H, W]` level map into the response wire format.
pub fn encode_levels(t: &Tensor) -> Vec<u8> {
    assert_eq!(t.rank(), 2, "levels must be [H, W]");
    let mut out = Vec::with_capacity(8 + t.numel() * 4);
    for &d in t.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a level-map response body into an `[H, W]` tensor.
///
/// # Errors
///
/// Returns a description of the problem on any length/shape mismatch.
pub fn decode_levels(bytes: &[u8]) -> Result<Tensor, String> {
    if bytes.len() < 8 {
        return Err("level map shorter than its 8-byte header".into());
    }
    let h = read_u32(bytes, 0) as usize;
    let w = read_u32(bytes, 4) as usize;
    if h == 0 || w == 0 || h > MAX_GRID || w > MAX_GRID {
        return Err(format!("implausible level-map shape {h}x{w}"));
    }
    let expected = 8 + h * w * 4;
    if bytes.len() != expected {
        return Err(format!(
            "level map of {h}x{w} needs {expected} bytes, got {}",
            bytes.len()
        ));
    }
    let data = decode_f32s(&bytes[8..]);
    Tensor::from_vec(vec![h, w], data).map_err(|e| e.to_string())
}

fn decode_array(bytes: &[u8]) -> Result<(usize, usize, usize, Vec<f32>), String> {
    if bytes.len() < 12 {
        return Err("feature stack shorter than its 12-byte header".into());
    }
    let c = read_u32(bytes, 0) as usize;
    let h = read_u32(bytes, 4) as usize;
    let w = read_u32(bytes, 8) as usize;
    if c == 0 || c > 64 || h == 0 || w == 0 || h > MAX_GRID || w > MAX_GRID {
        return Err(format!("implausible feature shape {c}x{h}x{w}"));
    }
    let expected = 12 + c * h * w * 4;
    if bytes.len() != expected {
        return Err(format!(
            "feature stack of {c}x{h}x{w} needs {expected} bytes, got {}",
            bytes.len()
        ));
    }
    Ok((c, h, w, decode_f32s(&bytes[12..])))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes")))
        .collect()
}

/// Builds a `POST /predict/design` body from the textual design and
/// placement.
pub fn encode_design_request(design_text: &str, placement_text: &str) -> String {
    format!("{design_text}\n{PART_SEPARATOR}\n{placement_text}")
}

/// Parses a `POST /predict/design` body and featurizes it on a
/// `grid x grid` grid.
///
/// # Errors
///
/// Returns a description of the problem when the separator is missing or
/// either part fails to parse.
pub fn featurize_design_request(body: &str, grid: usize) -> Result<Tensor, String> {
    let (design_text, placement_text) = split_design_request(body)?;
    let design: Design = io::read_design(design_text).map_err(|e| format!("design: {e}"))?;
    let placement: Placement =
        io::read_placement(placement_text).map_err(|e| format!("placement: {e}"))?;
    if placement.len() != design.netlist.num_instances() {
        return Err(format!(
            "placement has {} positions for {} instances",
            placement.len(),
            design.netlist.num_instances()
        ));
    }
    Ok(FeatureStack::extract(&design, &placement, grid, grid).to_tensor())
}

fn split_design_request(body: &str) -> Result<(&str, &str), String> {
    let mut offset = 0;
    loop {
        let rest = &body[offset..];
        let line_end = rest.find('\n').map_or(body.len(), |i| offset + i);
        let line = &body[offset..line_end];
        if line.trim() == PART_SEPARATOR {
            let placement = &body[line_end.min(body.len())..];
            return Ok((&body[..offset], placement.trim_start_matches(['\r', '\n'])));
        }
        if line_end >= body.len() {
            return Err(format!(
                "body is missing the {PART_SEPARATOR:?} separator line"
            ));
        }
        offset = line_end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfaplace_fpga::design::DesignPreset;

    #[test]
    fn features_round_trip() {
        let t = Tensor::from_fn(vec![6, 4, 4], |i| i as f32 * 0.5);
        let bytes = encode_features(&t);
        let back = decode_features(&bytes).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn levels_round_trip() {
        let t = Tensor::from_fn(vec![4, 3], |i| i as f32);
        let back = decode_levels(&encode_levels(&t)).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn short_and_mismatched_payloads_rejected() {
        assert!(decode_features(&[]).is_err());
        assert!(decode_features(&[0; 11]).is_err());
        let mut bytes = encode_features(&Tensor::zeros(vec![6, 4, 4]));
        bytes.pop();
        assert!(decode_features(&bytes).is_err());
        // Wrong channel count.
        let bad = encode_features(&Tensor::zeros(vec![5, 4, 4]));
        assert!(decode_features(&bad).unwrap_err().contains("channels"));
        assert!(decode_levels(&[1, 2, 3]).is_err());
    }

    #[test]
    fn design_request_round_trips_through_featurizer() {
        let design = DesignPreset::design_116()
            .with_scale(512, 64, 32)
            .generate(1);
        let placement = design.random_placement(2);
        let body =
            encode_design_request(&io::write_design(&design), &io::write_placement(&placement));
        let features = featurize_design_request(&body, 32).unwrap();
        let expected = FeatureStack::extract(&design, &placement, 32, 32).to_tensor();
        assert_eq!(features.data(), expected.data());
    }

    #[test]
    fn missing_separator_rejected() {
        let err = featurize_design_request("just one part", 32).unwrap_err();
        assert!(err.contains("separator"), "{err}");
    }
}
